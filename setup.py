"""Thin shim so editable installs work without the `wheel` package.

All metadata lives in pyproject.toml; this exists because the offline
environment lacks `wheel`, which PEP 517 editable installs require.
"""

from setuptools import setup

setup()
