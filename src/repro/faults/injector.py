"""Compiling a :class:`~repro.faults.plan.FaultPlan` onto a simulator.

The :class:`FaultInjector` is the runtime half of the fault subsystem.
At construction it validates the plan against the world it is given
(crash faults need a node provider, AS scopes need an ``asn_of``
resolver) and schedules one activation event per fault — plus a
deactivation event when the fault has a window — on the simulator's
ordinary event queue.  From then on everything is event-driven:

* the transport consults the injector once per message / connection
  attempt / probe through the three hook methods
  (:meth:`message_fate`, :meth:`blocks_connect`, :meth:`blocks_probe`);
* ``reset`` faults run their own exponential-interval close process;
* ``crash`` faults stop matching nodes and schedule their restarts.

Determinism and checkpoint safety are structural, not incidental:

* every random decision draws from a named stream
  (``sim.random.stream("faults", <fault-name>)``), so fault randomness
  is independent of — and does not perturb — every other stream, and
  the same ``(seed, plan)`` pair replays bit-identically;
* all scheduled callbacks are bound methods with plain arguments, so a
  mid-fault :meth:`~repro.simnet.simulator.Simulator.snapshot` pickles
  the injector, its active-fault set, and its pending activation events
  along with the rest of the world, and a restore resumes the exact
  fault timeline.

When the plan is empty the injector installs no transport hook at all,
so fault support costs the hot path nothing unless faults are in play
(and one ``is None`` check per message when they are).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import FaultInjectionError
from ..simnet.addresses import NetAddr
from .plan import (
    KIND_CRASH,
    KIND_DELAY,
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_PARTITION,
    KIND_RESET,
    FaultPlan,
    FaultSpec,
)


@dataclass
class FaultStats:
    """Monotone counters of everything the injector did to the run."""

    messages_dropped: int = 0
    messages_duplicated: int = 0
    messages_delayed: int = 0
    partition_drops: int = 0
    connects_blocked: int = 0
    probes_blocked: int = 0
    connections_reset: int = 0
    crashes: int = 0
    restarts: int = 0
    #: Restarts skipped because the crashed node's address was recycled
    #: by churn while it was down.
    restarts_skipped: int = 0

    def as_dict(self) -> Dict[str, int]:
        import dataclasses

        return dataclasses.asdict(self)


class _ActiveFault:
    """Runtime state of one fault while its window is open."""

    def __init__(
        self,
        spec: FaultSpec,
        index: int,
        name: str,
        rng: random.Random,
        asn_of: Optional[Callable[[NetAddr], Optional[int]]],
    ) -> None:
        self.spec = spec
        self.index = index
        self.name = name
        self.rng = rng
        self._asn_of = asn_of
        self._addrs = frozenset(NetAddr.parse(text) for text in spec.scope.addrs)
        self._prefixes = frozenset(spec.scope.prefixes)
        self._asns = frozenset(spec.scope.asns)
        self._match_all = spec.scope.empty
        #: Per-address match results; scope membership is pure, so the
        #: cache is just a speedup for the per-message hot path.
        self._match_cache: Dict[NetAddr, bool] = {}

    def matches_addr(self, addr: NetAddr) -> bool:
        cached = self._match_cache.get(addr)
        if cached is not None:
            return cached
        if self._match_all:
            matched = True
        else:
            matched = addr in self._addrs or addr.group16 in self._prefixes
            if not matched and self._asns and self._asn_of is not None:
                matched = self._asn_of(addr) in self._asns
        self._match_cache[addr] = matched
        return matched

    def matches_link(self, src: NetAddr, dst: NetAddr) -> bool:
        return self.matches_addr(src) or self.matches_addr(dst)

    def crosses(self, src: NetAddr, dst: NetAddr) -> bool:
        """Whether the (src, dst) link crosses this partition's cut."""
        return self.matches_addr(src) is not self.matches_addr(dst)

    def draw_extra_delay(self) -> float:
        spec = self.spec
        if spec.jitter == 0.0:
            return spec.delay
        return spec.delay * (1.0 + self.rng.uniform(-spec.jitter, spec.jitter))


class FaultInjector:
    """Executes a fault plan against one simulator.

    Construct via :meth:`repro.simnet.simulator.Simulator.install_faults`
    (which also registers the injector as a component) or directly::

        injector = FaultInjector(sim, plan, asn_of=universe.asn_of,
                                 node_provider=scenario.running_nodes)

    ``asn_of`` resolves addresses to autonomous systems for AS-scoped
    faults; ``node_provider`` returns the current node population for
    crash faults (both optional — omitting one simply rejects plans that
    need it).
    """

    def __init__(
        self,
        sim: Any,
        plan: FaultPlan,
        asn_of: Optional[Callable[[NetAddr], Optional[int]]] = None,
        node_provider: Optional[Callable[[], Sequence[Any]]] = None,
    ) -> None:
        plan.validate()
        self.sim = sim
        self.plan = plan
        self.stats = FaultStats()
        self._asn_of = asn_of
        self._node_provider = node_provider
        self._active: List[_ActiveFault] = []
        #: Whether any active fault is a partition (fast-path gate for
        #: the connect/probe hooks).
        self._partitions: List[_ActiveFault] = []
        #: (sim time, event, fault name) — the fault timeline, for tests
        #: and reports.
        self.events: List[Tuple[float, str, str]] = []
        needs_nodes = [
            spec.kind for spec in plan.faults if spec.kind == KIND_CRASH
        ]
        if needs_nodes and node_provider is None:
            raise FaultInjectionError(
                "plan contains crash fault(s) but this scenario provides no "
                "node population to crash (node_provider is None)"
            )
        needs_asns = [
            spec.name or spec.kind
            for spec in plan.faults
            if spec.scope.asns and asn_of is None
        ]
        if needs_asns:
            raise FaultInjectionError(
                f"fault(s) {needs_asns} use AS-scoped matching but no asn_of "
                f"resolver was provided"
            )
        self._compile()
        if plan.faults:
            sim.network.install_fault_hook(self)

    # ------------------------------------------------------------------
    # Compilation: plan -> scheduled activation/deactivation events
    # ------------------------------------------------------------------
    def _compile(self) -> None:
        now = self.sim.clock.now
        for index, spec in enumerate(self.plan.faults):
            start = max(spec.start, now)
            self.sim.schedule_at(start, self._activate, index)
            if spec.kind != KIND_CRASH and spec.duration is not None:
                self.sim.schedule_at(
                    start + spec.duration, self._deactivate, index
                )

    def _fault_name(self, index: int, spec: FaultSpec) -> str:
        return spec.name if spec.name else f"{index}:{spec.kind}"

    def _activate(self, index: int) -> None:
        spec = self.plan.faults[index]
        name = self._fault_name(index, spec)
        fault = _ActiveFault(
            spec,
            index,
            name,
            self.sim.random.stream("faults", name),
            self._asn_of,
        )
        self.events.append((self.sim.clock.now, "activate", name))
        if spec.kind == KIND_CRASH:
            # Crashes are instantaneous: execute and never join the
            # active set (their "window" is the node downtime).
            self._execute_crash(fault)
            return
        self._active.append(fault)
        if spec.kind == KIND_PARTITION:
            self._partitions.append(fault)
        elif spec.kind == KIND_RESET:
            self._schedule_next_reset(index)

    def _deactivate(self, index: int) -> None:
        for position, fault in enumerate(self._active):
            if fault.index == index:
                self.events.append(
                    (self.sim.clock.now, "deactivate", fault.name)
                )
                del self._active[position]
                if fault in self._partitions:
                    self._partitions.remove(fault)
                return

    def _find_active(self, index: int) -> Optional[_ActiveFault]:
        for fault in self._active:
            if fault.index == index:
                return fault
        return None

    @property
    def active_faults(self) -> List[str]:
        """Names of the faults currently in their windows."""
        return [fault.name for fault in self._active]

    # ------------------------------------------------------------------
    # Transport hooks (called by Network when installed)
    # ------------------------------------------------------------------
    def message_fate(self, src: NetAddr, dst: NetAddr) -> Tuple[int, float]:
        """How many copies of a message to deliver, and with what extra delay.

        ``(0, _)`` means the message is blackholed; ``(2, extra)`` that a
        duplication fault struck.  Faults are consulted in activation
        order, so the decision sequence — and therefore every RNG draw —
        is deterministic given the event history.
        """
        copies = 1
        extra = 0.0
        stats = self.stats
        for fault in self._active:
            kind = fault.spec.kind
            if kind == KIND_PARTITION:
                if fault.crosses(src, dst):
                    stats.partition_drops += 1
                    return 0, 0.0
            elif not fault.matches_link(src, dst):
                continue
            elif kind == KIND_DROP:
                if fault.rng.random() < fault.spec.probability:
                    stats.messages_dropped += 1
                    return 0, 0.0
            elif kind == KIND_DUPLICATE:
                if fault.rng.random() < fault.spec.probability:
                    copies += 1
                    stats.messages_duplicated += 1
            elif kind == KIND_DELAY:
                extra += fault.draw_extra_delay()
                stats.messages_delayed += 1
        return copies, extra

    def blocks_connect(self, src: NetAddr, dst: NetAddr) -> bool:
        """Whether a new connection from src to dst is partitioned away."""
        for fault in self._partitions:
            if fault.crosses(src, dst):
                self.stats.connects_blocked += 1
                return True
        return False

    def blocks_probe(self, src: NetAddr, dst: NetAddr) -> bool:
        """Whether a probe from src to dst is partitioned away."""
        for fault in self._partitions:
            if fault.crosses(src, dst):
                self.stats.probes_blocked += 1
                return True
        return False

    # ------------------------------------------------------------------
    # Reset faults: an exponential-interval abrupt-close process
    # ------------------------------------------------------------------
    def _schedule_next_reset(self, index: int) -> None:
        fault = self._find_active(index)
        if fault is None:
            return
        delay = fault.rng.expovariate(fault.spec.rate)
        self.sim.schedule(delay, self._reset_once, index)

    def _reset_once(self, index: int) -> None:
        fault = self._find_active(index)
        if fault is None:
            return  # window closed while the event was in flight
        candidates: List[Any] = []
        # Dict iteration is insertion-ordered, hence deterministic given
        # the event history.  A connection whose both endpoints match the
        # scope appears twice (once per endpoint socket) and is twice as
        # likely to be chosen — acceptable for a stress process.
        for addr, sockets in self.sim.network._sockets_by_addr.items():
            if fault.matches_addr(addr):
                candidates.extend(sock for sock in sockets if sock.open)
        if candidates:
            victim = fault.rng.choice(candidates)
            victim.close()
            self.stats.connections_reset += 1
            self.events.append(
                (
                    self.sim.clock.now,
                    "reset",
                    f"{fault.name} {victim.local_addr}->{victim.remote_addr}",
                )
            )
        self._schedule_next_reset(index)

    # ------------------------------------------------------------------
    # Crash faults: stop matching nodes, restart after downtime
    # ------------------------------------------------------------------
    def _execute_crash(self, fault: _ActiveFault) -> None:
        spec = fault.spec
        nodes = list(self._node_provider()) if self._node_provider else []
        for node in nodes:
            if not getattr(node, "running", False):
                continue
            if not fault.matches_addr(node.addr):
                continue
            node.stop()
            if spec.state_loss and hasattr(node, "lose_state"):
                node.lose_state()
            self.stats.crashes += 1
            self.events.append(
                (self.sim.clock.now, "crash", f"{fault.name} {node.addr}")
            )
            if spec.downtime is not None:
                self.sim.schedule(spec.downtime, self._restart_node, node)

    def _restart_node(self, node: Any) -> None:
        if getattr(node, "running", False):
            return  # something else (churn) already brought it back
        # A churn replacement may have recycled the crashed node's
        # address while it was down; restarting would collide on the
        # listener, so the node stays dead (and is counted).
        listen = getattr(getattr(node, "config", None), "listen", False)
        if listen and self.sim.network.is_listening(node.addr):
            self.stats.restarts_skipped += 1
            return
        node.start()
        self.stats.restarts += 1
        self.events.append((self.sim.clock.now, "restart", str(node.addr)))

