"""Declarative fault plans.

A :class:`FaultPlan` is a seed-independent description of *what goes
wrong and when*: an ordered tuple of :class:`FaultSpec` records, each
naming a fault kind, an activation window on the simulation clock, a
:class:`FaultScope` selecting the affected slice of the address space,
and kind-specific magnitudes (drop probability, latency spike, reset
rate, crash downtime).

Plans are plain frozen dataclasses so they

* serialize through ``dataclasses.asdict`` into run-store keys — a
  campaign under a fault plan is a *different experiment* than the same
  campaign without it, and the content-addressed cache must see that;
* round-trip to JSON (:meth:`FaultPlan.to_json` / :meth:`from_json`)
  for the ``--faults plan.json`` CLI surface;
* scale coherently: :meth:`FaultPlan.scaled` multiplies every intensity
  axis (probabilities, rates, delays, partition durations, crash
  downtimes) by one factor, which is what the ``sync_under_faults``
  degradation sweep varies.

A plan says nothing about randomness: the same plan compiled onto two
simulators with different seeds produces different (but per-seed
deterministic) fault realisations, exactly like churn timelines.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import FaultInjectionError

#: Bump on incompatible plan-file schema changes.
PLAN_FORMAT = 1

#: The fault kinds the injector implements.
KIND_DROP = "drop"
KIND_DUPLICATE = "duplicate"
KIND_DELAY = "delay"
KIND_RESET = "reset"
KIND_PARTITION = "partition"
KIND_CRASH = "crash"
FAULT_KINDS = (
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_DELAY,
    KIND_RESET,
    KIND_PARTITION,
    KIND_CRASH,
)


@dataclass(frozen=True)
class FaultScope:
    """Which addresses a fault applies to.

    A scope is the union of three selectors: autonomous systems (matched
    through the scenario's :class:`~repro.netmodel.asmap.ASUniverse`),
    /16 netgroups (``addr.group16``), and literal ``"a.b.c.d:port"``
    addresses.  An empty scope matches *everything* — legal for link
    faults ("5% loss network-wide") but rejected for partitions, where
    the scope defines one side of the cut.
    """

    asns: Tuple[int, ...] = ()
    prefixes: Tuple[int, ...] = ()
    addrs: Tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.asns or self.prefixes or self.addrs)

    def validate(self) -> None:
        for asn in self.asns:
            if not isinstance(asn, int) or asn < 0:
                raise FaultInjectionError(f"scope asn must be a non-negative int, got {asn!r}")
        for prefix in self.prefixes:
            if not isinstance(prefix, int) or not 0 <= prefix <= 0xFFFF:
                raise FaultInjectionError(
                    f"scope prefix must be a /16 group in 0..65535, got {prefix!r}"
                )
        from ..simnet.addresses import NetAddr

        for text in self.addrs:
            try:
                NetAddr.parse(text)
            except (ValueError, TypeError) as exc:
                raise FaultInjectionError(
                    f"scope address {text!r} is not parseable: {exc}"
                ) from exc


@dataclass(frozen=True)
class FaultSpec:
    """One fault: a kind, a window, a scope, and magnitudes.

    Field use by kind (unused fields must stay at their defaults):

    ``drop`` / ``duplicate``
        ``probability`` — per-message drop/duplication chance on links
        touching the scope.
    ``delay``
        ``delay`` — mean extra one-way latency (seconds) injected per
        message; ``jitter`` — fractional spread (uniform in ±jitter).
    ``reset``
        ``rate`` — abrupt connection closes per second, drawn over the
        open sockets touching the scope.
    ``partition``
        the scope is one side of the cut; messages crossing it are
        blackholed and new connections/probes across it time out.
    ``crash``
        nodes whose address matches the scope stop at ``start`` (losing
        chain and mempool when ``state_loss``), restarting after
        ``downtime`` seconds (``None`` = never).
    """

    kind: str
    start: float = 0.0
    #: Window length in seconds; ``None`` = until the end of the run.
    #: Ignored by ``crash`` (whose window is ``downtime``).
    duration: Optional[float] = None
    scope: FaultScope = field(default_factory=FaultScope)
    probability: float = 0.0
    delay: float = 0.0
    jitter: float = 0.0
    rate: float = 0.0
    downtime: Optional[float] = None
    state_loss: bool = True
    #: Label used for the fault's RNG stream and in stats/event logs;
    #: defaults to ``"<index>:<kind>"`` at compile time.
    name: str = ""

    def validate(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultInjectionError(
                f"unknown fault kind {self.kind!r} (want one of {FAULT_KINDS})"
            )
        if self.start < 0:
            raise FaultInjectionError(f"fault start must be >= 0, got {self.start}")
        if self.duration is not None and self.duration <= 0:
            raise FaultInjectionError(
                f"fault duration must be positive (or null), got {self.duration}"
            )
        self.scope.validate()
        if self.kind in (KIND_DROP, KIND_DUPLICATE):
            if not 0.0 < self.probability <= 1.0:
                raise FaultInjectionError(
                    f"{self.kind} fault needs probability in (0, 1], got {self.probability}"
                )
        elif self.kind == KIND_DELAY:
            if self.delay <= 0:
                raise FaultInjectionError(
                    f"delay fault needs a positive delay, got {self.delay}"
                )
            if not 0.0 <= self.jitter < 1.0:
                raise FaultInjectionError(
                    f"delay jitter must be in [0, 1), got {self.jitter}"
                )
        elif self.kind == KIND_RESET:
            if self.rate <= 0:
                raise FaultInjectionError(
                    f"reset fault needs a positive rate, got {self.rate}"
                )
        elif self.kind == KIND_PARTITION:
            if self.scope.empty:
                raise FaultInjectionError(
                    "partition fault needs a non-empty scope (one side of the cut)"
                )
        elif self.kind == KIND_CRASH:
            if self.scope.empty:
                raise FaultInjectionError(
                    "crash fault needs a non-empty scope (which nodes crash)"
                )
            if self.downtime is not None and self.downtime < 0:
                raise FaultInjectionError(
                    f"crash downtime must be >= 0 (or null), got {self.downtime}"
                )


@dataclass(frozen=True)
class FaultPlan:
    """An ordered collection of faults, applied together to one run."""

    faults: Tuple[FaultSpec, ...] = ()
    format: int = PLAN_FORMAT

    def validate(self) -> None:
        if self.format != PLAN_FORMAT:
            raise FaultInjectionError(
                f"unsupported fault plan format {self.format!r} "
                f"(this build reads format {PLAN_FORMAT})"
            )
        for spec in self.faults:
            spec.validate()

    def __len__(self) -> int:
        return len(self.faults)

    # ------------------------------------------------------------------
    # Intensity scaling (the degradation-sweep axis)
    # ------------------------------------------------------------------
    def scaled(self, intensity: float) -> "FaultPlan":
        """The same plan with every magnitude multiplied by ``intensity``.

        Probabilities clip at 1.0; rates, delays, partition durations,
        and crash downtimes scale linearly.  ``intensity == 0`` yields
        the empty plan (a clean baseline), ``intensity == 1`` the plan
        itself.
        """
        if intensity < 0:
            raise FaultInjectionError(
                f"fault intensity must be >= 0, got {intensity}"
            )
        if intensity == 0:
            return FaultPlan(faults=())
        scaled = []
        for spec in self.faults:
            if spec.kind in (KIND_DROP, KIND_DUPLICATE):
                spec = replace(
                    spec, probability=min(1.0, spec.probability * intensity)
                )
            elif spec.kind == KIND_DELAY:
                spec = replace(spec, delay=spec.delay * intensity)
            elif spec.kind == KIND_RESET:
                spec = replace(spec, rate=spec.rate * intensity)
            elif spec.kind == KIND_PARTITION:
                if spec.duration is not None:
                    spec = replace(spec, duration=spec.duration * intensity)
            elif spec.kind == KIND_CRASH:
                if spec.downtime is not None:
                    spec = replace(spec, downtime=spec.downtime * intensity)
            scaled.append(spec)
        return FaultPlan(faults=tuple(scaled))

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        import dataclasses

        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FaultPlan":
        if not isinstance(data, dict):
            raise FaultInjectionError(
                f"fault plan must be a JSON object, got {type(data).__name__}"
            )
        known = {"faults", "format"}
        unknown = [key for key in data if key not in known]
        if unknown:
            raise FaultInjectionError(
                f"unknown fault plan key(s) {unknown} (want {sorted(known)})"
            )
        specs = []
        for index, raw in enumerate(data.get("faults", ())):
            if not isinstance(raw, dict):
                raise FaultInjectionError(f"fault #{index} must be an object")
            raw = dict(raw)
            scope_raw = raw.pop("scope", None) or {}
            scope_known = {"asns", "prefixes", "addrs"}
            scope_unknown = [key for key in scope_raw if key not in scope_known]
            if scope_unknown:
                raise FaultInjectionError(
                    f"fault #{index} scope has unknown key(s) {scope_unknown}"
                )
            scope = FaultScope(
                asns=tuple(scope_raw.get("asns", ())),
                prefixes=tuple(scope_raw.get("prefixes", ())),
                addrs=tuple(scope_raw.get("addrs", ())),
            )
            spec_fields = {f.name for f in FaultSpec.__dataclass_fields__.values()}
            bad = [key for key in raw if key not in spec_fields]
            if bad:
                raise FaultInjectionError(
                    f"fault #{index} has unknown key(s) {bad}"
                )
            try:
                specs.append(FaultSpec(scope=scope, **raw))
            except TypeError as exc:
                raise FaultInjectionError(f"fault #{index}: {exc}") from exc
        plan = cls(faults=tuple(specs), format=data.get("format", PLAN_FORMAT))
        plan.validate()
        return plan

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise FaultInjectionError(f"corrupt fault plan JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "FaultPlan":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise FaultInjectionError(
                f"cannot read fault plan {path}: {exc}"
            ) from exc
        return cls.from_json(text)

    def to_file(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path
