"""Deterministic, seeded fault injection for the simulator.

``repro.faults`` turns a declarative :class:`FaultPlan` (message drop /
duplication, latency spikes, connection resets, AS- or prefix-scoped
partitions, node crash/restart) into scheduled events and transport
hooks on one simulator, with every random decision drawn from named RNG
streams so fault runs stay bit-identical per seed and snapshot/restore
safe.  See ``docs/architecture.md`` for the design.
"""

from .injector import FaultInjector, FaultStats
from .plan import (
    FAULT_KINDS,
    KIND_CRASH,
    KIND_DELAY,
    KIND_DROP,
    KIND_DUPLICATE,
    KIND_PARTITION,
    KIND_RESET,
    PLAN_FORMAT,
    FaultPlan,
    FaultScope,
    FaultSpec,
)

__all__ = [
    "FAULT_KINDS",
    "KIND_CRASH",
    "KIND_DELAY",
    "KIND_DROP",
    "KIND_DUPLICATE",
    "KIND_PARTITION",
    "KIND_RESET",
    "PLAN_FORMAT",
    "FaultInjector",
    "FaultPlan",
    "FaultScope",
    "FaultSpec",
    "FaultStats",
]
