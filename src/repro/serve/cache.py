"""Bounded LRU byte cache for the service's read path.

Everything the read endpoints serve is derived from immutable,
content-addressed blobs, so a cache entry can never go stale: the key
embeds the blob digest, and a digest never changes meaning.  That makes
caching trivial — no invalidation, just a byte-budgeted LRU — and makes
the warm read path skip disk I/O, SHA-256 verification, *and* the
unpickle/summarize work for result views.

The cache can be disabled at runtime (admin endpoint) so the load
benchmark can measure the cold path honestly at any request count.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Optional, Tuple

#: Keys are (kind, digest-ish) pairs, e.g. ("blob", sha) / ("summary", sha).
CacheKey = Tuple[str, str]


class ReadCache:
    """Byte-budgeted LRU over derived read products."""

    def __init__(self, max_bytes: int = 32 * 1024 * 1024) -> None:
        self.max_bytes = max_bytes
        self._entries: "OrderedDict[CacheKey, bytes]" = OrderedDict()
        self._bytes = 0
        self.enabled = True
        self.hits = 0
        self.misses = 0

    def get(self, key: CacheKey) -> Optional[bytes]:
        if not self.enabled:
            self.misses += 1
            return None
        data = self._entries.get(key)
        if data is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return data

    def put(self, key: CacheKey, data: bytes) -> None:
        if not self.enabled or len(data) > self.max_bytes:
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self._bytes -= len(old)
        self._entries[key] = data
        self._bytes += len(data)
        while self._bytes > self.max_bytes:
            _, evicted = self._entries.popitem(last=False)
            self._bytes -= len(evicted)

    def clear(self) -> None:
        self._entries.clear()
        self._bytes = 0

    def set_enabled(self, enabled: bool) -> None:
        """Toggle the cache; disabling also drops every entry."""
        self.enabled = enabled
        if not enabled:
            self.clear()

    @property
    def hit_ratio(self) -> Optional[float]:
        total = self.hits + self.misses
        return (self.hits / total) if total else None

    def stats(self) -> Dict[str, object]:
        return {
            "enabled": self.enabled,
            "entries": len(self._entries),
            "bytes": self._bytes,
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "hit_ratio": self.hit_ratio,
        }
