"""Minimal HTTP/1.1 over asyncio streams — the service's only wire layer.

No third-party web framework: the service speaks a small, strictly
bounded subset of HTTP/1.1 parsed by hand off an ``asyncio``
``StreamReader``.  Supported: request line + headers + an optional
``Content-Length`` body, keep-alive connections, fixed-length responses,
and chunked transfer encoding for the progress stream (server-sent
events).  Unsupported on purpose: request trailers, chunked *request*
bodies, pipelined uploads — a campaign service needs none of them, and
every unsupported construct is rejected with an explicit status rather
than misparsed.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: Hard caps keeping one bad client from holding memory hostage.
MAX_REQUEST_LINE = 8192
MAX_HEADER_COUNT = 100
MAX_BODY_BYTES = 4 * 1024 * 1024

REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    204: "No Content",
    400: "Bad Request",
    403: "Forbidden",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A malformed or unsupported request, answered with ``status``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed request."""

    method: str
    #: Decoded path, without the query string (e.g. ``/v1/runs/abc``).
    path: str
    #: Query parameters (first value wins on duplicates).
    query: Dict[str, str]
    #: Header names lower-cased.
    headers: Dict[str, str]
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self) -> Any:
        """The body as JSON, or :class:`HttpError` 400."""
        if not self.body:
            raise HttpError(400, "request body must be JSON")
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None


@dataclass
class Response:
    """One fixed-length response (streaming goes through ChunkedWriter)."""

    status: int = 200
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    @classmethod
    def json(
        cls,
        payload: Any,
        status: int = 200,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode()
        return cls(status=status, body=body, headers=dict(headers or {}))

    @classmethod
    def error(
        cls,
        status: int,
        message: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> "Response":
        return cls.json({"error": message, "status": status}, status, headers)


async def read_request(
    reader: asyncio.StreamReader,
    max_body: int = MAX_BODY_BYTES,
) -> Optional[Request]:
    """Parse one request; ``None`` when the peer closed the connection."""
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request line") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request line too long") from None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").rstrip("\r\n").split(" ")
    if len(parts) != 3:
        raise HttpError(400, f"malformed request line: {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    while True:
        try:
            raw = await reader.readuntil(b"\r\n")
        except (asyncio.IncompleteReadError, asyncio.LimitOverrunError):
            raise HttpError(400, "truncated headers") from None
        if raw in (b"\r\n", b"\n"):
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(400, "too many headers")
        text = raw.decode("latin-1").rstrip("\r\n")
        name, sep, value = text.partition(":")
        if not sep:
            raise HttpError(400, f"malformed header line: {text!r}")
        headers[name.strip().lower()] = value.strip()

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked request bodies are not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError:
            raise HttpError(400, "malformed Content-Length") from None
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body:
            raise HttpError(413, f"body exceeds {max_body} bytes")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "body shorter than Content-Length") from None
    elif method in ("POST", "PUT", "PATCH"):
        # A bodyless POST is legal (admin endpoints); a body without a
        # length is not parseable in this subset.
        pass

    split = urlsplit(target)
    query = {key: value for key, value in parse_qsl(split.query)}
    return Request(
        method=method,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def _head(
    status: int,
    headers: Mapping[str, str],
) -> bytes:
    reason = REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}"]
    for name, value in headers.items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")


async def send_response(
    writer: asyncio.StreamWriter,
    response: Response,
    keep_alive: bool = True,
) -> int:
    """Write a fixed-length response; returns bytes sent on the wire."""
    headers = {
        "Content-Type": response.content_type,
        "Content-Length": str(len(response.body)),
        "Connection": "keep-alive" if keep_alive else "close",
    }
    headers.update(response.headers)
    payload = _head(response.status, headers) + response.body
    writer.write(payload)
    await writer.drain()
    return len(payload)


class ChunkedWriter:
    """Chunked-transfer response for streams of unknown length (SSE)."""

    def __init__(self, writer: asyncio.StreamWriter) -> None:
        self._writer = writer
        self.bytes_sent = 0
        self._closed = False

    async def start(
        self,
        status: int = 200,
        content_type: str = "text/event-stream",
        headers: Optional[Dict[str, str]] = None,
    ) -> None:
        head = {
            "Content-Type": content_type,
            "Transfer-Encoding": "chunked",
            "Cache-Control": "no-cache",
            # Streams own the connection for their whole lifetime; close
            # afterwards rather than re-synchronizing keep-alive state.
            "Connection": "close",
        }
        head.update(headers or {})
        payload = _head(status, head)
        self._writer.write(payload)
        await self._writer.drain()
        self.bytes_sent += len(payload)

    async def write(self, data: bytes) -> None:
        if not data or self._closed:
            return
        chunk = f"{len(data):x}\r\n".encode("latin-1") + data + b"\r\n"
        self._writer.write(chunk)
        await self._writer.drain()
        self.bytes_sent += len(chunk)

    async def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._writer.write(b"0\r\n\r\n")
        await self._writer.drain()
        self.bytes_sent += 5


def sse_event(payload: Any) -> bytes:
    """One server-sent event frame carrying a JSON payload."""
    return b"data: " + json.dumps(payload, sort_keys=True).encode() + b"\n\n"


def split_path(path: str) -> Tuple[str, ...]:
    """``/v1/runs/abc`` -> ``("v1", "runs", "abc")``."""
    return tuple(part for part in path.split("/") if part)
