"""Per-tenant accounting and quotas for the serving layer.

Tenancy is deliberately lightweight: the tenant is whatever the
``X-Repro-Tenant`` request header says (default ``"anon"``) — the
service does authorization bookkeeping, not authentication.  The ledger
tracks, per tenant, how many *fresh* runs were submitted (cache hits are
free: they cost the store nothing) and how many blob bytes those runs
pinned into the store, and enforces optional ceilings on both.

The ledger lives at ``<store root>/tenants.json`` so accounting survives
service restarts alongside the data it accounts for; writes are atomic
(tmp + ``os.replace``) like every other store write.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional

from ..errors import QuotaExceededError, StoreError
from ..store.blobs import reject_read_only
from ..store.wallclock import now as wall_now

LEDGER_NAME = "tenants.json"
DEFAULT_TENANT = "anon"


class TenantLedger:
    """Durable per-tenant usage counters with optional ceilings."""

    def __init__(
        self,
        store_root: Path,
        max_runs: Optional[int] = None,
        max_bytes: Optional[int] = None,
    ) -> None:
        self.path = Path(store_root) / LEDGER_NAME
        self.max_runs = max_runs
        self.max_bytes = max_bytes
        self._usage: Dict[str, Dict[str, Any]] = {}
        self._load()

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def _load(self) -> None:
        try:
            text = self.path.read_text()
        except FileNotFoundError:
            return
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise StoreError(f"corrupt tenant ledger {self.path}: {exc}") from exc
        if not isinstance(data, dict):
            raise StoreError(f"corrupt tenant ledger {self.path}: not an object")
        self._usage = data

    def _save(self) -> None:
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.path.parent, prefix=".tmp-tenants-", suffix=".json"
            )
        except OSError as exc:
            reject_read_only(exc, self.path.parent, "write the tenant ledger")
            raise
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(self._usage, handle, sort_keys=True, indent=2)
                handle.write("\n")
            os.replace(tmp_name, self.path)
        except BaseException as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(exc, OSError):
                reject_read_only(
                    exc, self.path.parent, "write the tenant ledger"
                )
            raise

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def _row(self, tenant: str) -> Dict[str, Any]:
        row = self._usage.get(tenant)
        if row is None:
            row = self._usage[tenant] = {
                "runs_submitted": 0,
                "bytes_stored": 0,
                "updated_at": wall_now(),
            }
        return row

    def charge_runs(self, tenant: str, fresh_runs: int) -> None:
        """Account ``fresh_runs`` new simulations; raise over quota.

        The check is *pre*-charge: a submission that would cross either
        ceiling is refused whole rather than partially admitted.
        """
        if fresh_runs <= 0:
            return
        row = self._row(tenant)
        if (
            self.max_runs is not None
            and row["runs_submitted"] + fresh_runs > self.max_runs
        ):
            raise QuotaExceededError(
                f"tenant {tenant!r} is over its run quota "
                f"({row['runs_submitted']} used + {fresh_runs} requested "
                f"> {self.max_runs} allowed)"
            )
        if (
            self.max_bytes is not None
            and row["bytes_stored"] >= self.max_bytes
        ):
            raise QuotaExceededError(
                f"tenant {tenant!r} is over its storage quota "
                f"({row['bytes_stored']} bytes used, "
                f"{self.max_bytes} allowed)"
            )
        row["runs_submitted"] += fresh_runs
        row["updated_at"] = wall_now()
        self._save()

    def add_bytes(self, tenant: str, n_bytes: int) -> None:
        """Account blob bytes a tenant's completed runs pinned."""
        if n_bytes <= 0:
            return
        row = self._row(tenant)
        row["bytes_stored"] += n_bytes
        row["updated_at"] = wall_now()
        self._save()

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def usage(self, tenant: str) -> Dict[str, Any]:
        row = self._usage.get(tenant)
        return dict(row) if row is not None else {
            "runs_submitted": 0, "bytes_stored": 0, "updated_at": None,
        }

    def snapshot(self) -> Dict[str, Any]:
        return {
            "limits": {"max_runs": self.max_runs, "max_bytes": self.max_bytes},
            "tenants": {
                tenant: dict(row)
                for tenant, row in sorted(self._usage.items())
            },
        }
