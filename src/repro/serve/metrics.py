"""Request metrics: per-route latency quantiles + service counters.

The same philosophy as :mod:`repro.perf`: cheap, always-on aggregate
counters (no per-request storage beyond a bounded latency ring), read
out as one structured snapshot by ``GET /v1/metrics``.  Latency is
recorded in milliseconds against the *route template* ("GET
/v1/runs/{run_id}"), not the concrete path, so quantiles aggregate
usefully across runs.

This module measures host wall time by design (request latency); it is
covered by the repro-lint clock allowlist for ``repro.serve``.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

#: Latency samples kept per route (ring buffer; quantiles are over the
#: most recent window, which is what an operator actually wants).
LATENCY_WINDOW = 2048


def percentile(samples: List[float], q: float) -> Optional[float]:
    """The ``q``-quantile (0..1) by nearest-rank over a copy; None if empty."""
    if not samples:
        return None
    ordered = sorted(samples)
    rank = min(len(ordered) - 1, max(0, int(q * len(ordered))))
    return ordered[rank]


class RouteStats:
    """Counters + bounded latency ring for one route template."""

    __slots__ = ("count", "errors", "bytes_out", "latencies_ms")

    def __init__(self) -> None:
        self.count = 0
        self.errors = 0
        self.bytes_out = 0
        self.latencies_ms: Deque[float] = deque(maxlen=LATENCY_WINDOW)

    def observe(self, status: int, ms: float, bytes_out: int) -> None:
        self.count += 1
        if status >= 500:
            self.errors += 1
        self.bytes_out += bytes_out
        self.latencies_ms.append(ms)

    def snapshot(self) -> Dict[str, object]:
        samples = list(self.latencies_ms)
        return {
            "count": self.count,
            "errors": self.errors,
            "bytes_out": self.bytes_out,
            "p50_ms": percentile(samples, 0.50),
            "p99_ms": percentile(samples, 0.99),
        }


class ServiceMetrics:
    """Aggregate view over every route plus service-level counters."""

    def __init__(self) -> None:
        self.routes: Dict[str, RouteStats] = {}
        #: Submissions answered entirely from the store (no simulation).
        self.submit_cache_hits = 0
        #: Submissions that enqueued at least one fresh run.
        self.submit_misses = 0
        #: Submissions refused with 429 (backpressure) or 403 (quota).
        self.rejected_busy = 0
        self.rejected_quota = 0
        #: Requests that hit an unexpected handler exception (500s).
        self.internal_errors = 0

    def observe(self, route: str, status: int, ms: float, bytes_out: int) -> None:
        stats = self.routes.get(route)
        if stats is None:
            stats = self.routes[route] = RouteStats()
        stats.observe(status, ms, bytes_out)

    @property
    def submit_hit_ratio(self) -> Optional[float]:
        total = self.submit_cache_hits + self.submit_misses
        return (self.submit_cache_hits / total) if total else None

    def snapshot(
        self,
        queue_depth: int,
        running: int,
        cache_stats: Dict[str, object],
    ) -> Dict[str, object]:
        return {
            "routes": {
                route: stats.snapshot()
                for route, stats in sorted(self.routes.items())
            },
            "submissions": {
                "cache_hits": self.submit_cache_hits,
                "misses": self.submit_misses,
                "hit_ratio": self.submit_hit_ratio,
                "rejected_busy": self.rejected_busy,
                "rejected_quota": self.rejected_quota,
            },
            "queue": {"depth": queue_depth, "running": running},
            "read_cache": cache_stats,
            "internal_errors": self.internal_errors,
        }
