"""The campaign service: asyncio HTTP over the run store.

``CampaignService`` wires the pieces together — the content-addressed
:class:`~repro.store.runstore.RunStore` underneath, the
:class:`~repro.serve.jobs.JobManager` for supervised execution with
slots/backpressure, the :class:`~repro.serve.cache.ReadCache` making the
warm read path a pure memory hit, per-tenant quotas, and structured
request metrics/logging — behind a small fixed route table:

====== ===================================== ===============================
Method Path                                  Purpose
====== ===================================== ===============================
POST   /v1/campaigns                         submit config JSON -> run keys
GET    /v1/jobs                              list jobs
GET    /v1/jobs/{id}                         one job's status
GET    /v1/jobs/{id}/events                  progress stream (SSE)
GET    /v1/runs                              store index
GET    /v1/runs/{run_id}                     run manifest
GET    /v1/runs/{run_id}/result              result summary JSON
GET    /v1/runs/{run_id}/export/campaign_series.csv  figure CSV
GET    /v1/blobs/{digest}                    raw blob bytes
POST   /v1/admin/gc[?dry_run=1]              garbage collection
POST   /v1/admin/cache                       read-cache control
GET    /v1/admin/quota                       tenant ledger
GET    /v1/metrics                           counters + latency quantiles
GET    /v1/healthz                           liveness/drain state
====== ===================================== ===============================

Error taxonomy -> status mapping: bad submissions (unknown fields,
invalid scenarios) are 400; quota violations 403; capacity 429 with
``Retry-After``; a read-only store root 503 (retryable operational
state, per :class:`~repro.errors.ReadOnlyStoreError`); anything
unexpected 500 with a counter bump.

This module reads host time for request latency only; ``repro.serve``
is on the repro-lint clock allowlist for exactly that reason.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import os
import tempfile
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from functools import partial
from pathlib import Path
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from ..core.export import export_campaign_series
from ..core.pipeline import CampaignResult
from ..core.supervisor import SupervisorConfig
from ..errors import (
    ConfigurationError,
    QuotaExceededError,
    ReadOnlyStoreError,
    ReproError,
    ScenarioError,
    ServiceBusyError,
    StoreError,
)
from ..store.campaign import _RESULT_KIND
from ..store.checkpoint import load_checkpoint
from ..store.manifest import RunManifest
from ..store.runstore import RunStore, default_store_root
from .cache import ReadCache
from .http import (
    ChunkedWriter,
    HttpError,
    Request,
    Response,
    read_request,
    send_response,
    split_path,
    sse_event,
)
from .jobs import DISPOSITION_QUEUED, JobManager
from .metrics import ServiceMetrics
from .quota import DEFAULT_TENANT, TenantLedger
from .submission import parse_submission

logger = logging.getLogger("repro.serve")

#: Request header naming the tenant for quota accounting.
TENANT_HEADER = "x-repro-tenant"


@dataclass
class ServiceConfig:
    """Everything the service needs to run."""

    store_root: str = field(default_factory=default_store_root)
    host: str = "127.0.0.1"
    #: 0 binds an ephemeral port (tests/benchmarks read it back).
    port: int = 8742
    #: Concurrent jobs simulating (one worker thread per slot).
    slots: int = 1
    #: Admitted-but-waiting jobs beyond the slots before 429.
    queue_limit: int = 8
    #: Supervisor worker processes per job (per-seed fan-out).
    workers: int = 1
    #: Per-seed watchdog timeout / retries for the supervised runner.
    seed_timeout: Optional[float] = None
    retries: Optional[int] = None
    #: Read-cache budget in bytes.
    cache_bytes: int = 32 * 1024 * 1024
    #: Per-tenant quota ceilings (None = unlimited).
    quota_runs: Optional[int] = None
    quota_bytes: Optional[int] = None
    #: Seconds advertised in 429 Retry-After.
    retry_after: float = 2.0
    #: Emit one structured log line per request.
    log_requests: bool = True
    #: Threads for store/ledger file I/O dispatched off the event loop.
    io_threads: int = 4

    def supervisor_config(self) -> Optional[SupervisorConfig]:
        if self.seed_timeout is None and self.retries is None:
            return None
        config = SupervisorConfig()
        if self.seed_timeout is not None:
            config.timeout = self.seed_timeout
        if self.retries is not None:
            config.retries = self.retries
        return config


#: Handlers: async (service, request, path parts) -> Response.
Handler = Callable[[Request, Tuple[str, ...]], Awaitable[Response]]


class CampaignService:
    """The asyncio HTTP service over one run store."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config
        self.store = RunStore(config.store_root)
        self.metrics = ServiceMetrics()
        self.cache = ReadCache(config.cache_bytes)
        self.ledger = TenantLedger(
            Path(config.store_root),
            max_runs=config.quota_runs,
            max_bytes=config.quota_bytes,
        )
        self.jobs = JobManager(
            self.store,
            self.ledger,
            self.metrics,
            slots=config.slots,
            queue_limit=config.queue_limit,
            workers=config.workers,
            supervisor=config.supervisor_config(),
            retry_after=config.retry_after,
        )
        self.server: Optional[asyncio.AbstractServer] = None
        self.port: Optional[int] = None
        self.draining = False
        # Insertion-ordered (dict) so shutdown cancels deterministically.
        self._conn_tasks: Dict["asyncio.Task[None]", None] = {}
        # Store/ledger reads are file I/O; handlers must never run them
        # on the event loop (ASYNC001) — they go through _io_call.
        self._io = ThreadPoolExecutor(
            max_workers=config.io_threads, thread_name_prefix="repro-serve-io"
        )

    async def _io_call(self, fn: Callable[..., Any], *args: Any) -> Any:
        """Run blocking store/ledger work on the I/O thread pool."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(self._io, fn, *args)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        self.server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        self.port = self.server.sockets[0].getsockname()[1]
        logger.info(
            "serving store %s on http://%s:%d",
            self.store.root, self.config.host, self.port,
        )

    async def shutdown(self, drain: bool = True) -> None:
        """Stop admissions, optionally drain in-flight jobs, close."""
        self.draining = True
        self.jobs.draining = True
        if self.server is not None:
            self.server.close()
            await self.server.wait_closed()
        if drain:
            await self.jobs.drain()
        pending = list(self._conn_tasks)
        self._conn_tasks.clear()
        for task in pending:
            task.cancel()
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._io.shutdown(wait=True)

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.get_running_loop().create_task(
            self._serve_connection(reader, writer)
        )
        self._conn_tasks[task] = None
        task.add_done_callback(
            lambda done: self._conn_tasks.pop(done, None)
        )

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as exc:
                    await send_response(
                        writer,
                        Response.error(exc.status, str(exc)),
                        keep_alive=False,
                    )
                    return
                if request is None:
                    return
                close = await self._dispatch(request, writer)
                if close or not request.keep_alive:
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _dispatch(
        self, request: Request, writer: asyncio.StreamWriter
    ) -> bool:
        """Route + run one request; returns True if the conn must close."""
        started = time.perf_counter()
        parts = split_path(request.path)
        route_label = f"{request.method} {request.path}"
        status = 500
        bytes_out = 0
        close = False
        try:
            route_label, handler, streaming = self._route(request, parts)
            if streaming:
                # The events stream writes the response itself.
                stream = ChunkedWriter(writer)
                status = await self._stream_job_events(request, parts, stream)
                bytes_out = stream.bytes_sent
                close = True
            else:
                response = await handler(request, parts)
                status = response.status
                bytes_out = await send_response(
                    writer, response, keep_alive=request.keep_alive
                )
        except HttpError as exc:
            status = exc.status
            response = Response.error(exc.status, str(exc))
            bytes_out = await send_response(
                writer, response, keep_alive=request.keep_alive
            )
        except ReproError as exc:
            status, headers = self._map_error(exc)
            response = Response.error(status, str(exc), headers)
            bytes_out = await send_response(
                writer, response, keep_alive=request.keep_alive
            )
        except (ConnectionResetError, BrokenPipeError):
            raise
        except Exception as exc:  # noqa: BLE001 - 500, never a dead conn
            self.metrics.internal_errors += 1
            logger.exception("unhandled error on %s", route_label)
            status = 500
            response = Response.error(
                500, f"internal error: {type(exc).__name__}"
            )
            bytes_out = await send_response(
                writer, response, keep_alive=request.keep_alive
            )
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        self.metrics.observe(route_label, status, elapsed_ms, bytes_out)
        if self.config.log_requests:
            logger.info(
                "%s",
                json.dumps(
                    {
                        "method": request.method,
                        "path": request.path,
                        "status": status,
                        "ms": round(elapsed_ms, 3),
                        "bytes": bytes_out,
                        "tenant": request.headers.get(
                            TENANT_HEADER, DEFAULT_TENANT
                        ),
                    },
                    sort_keys=True,
                ),
            )
        return close

    @staticmethod
    def _map_error(exc: ReproError) -> Tuple[int, Dict[str, str]]:
        if isinstance(exc, ServiceBusyError):
            return 429, {
                "Retry-After": str(max(1, math.ceil(exc.retry_after)))
            }
        if isinstance(exc, QuotaExceededError):
            return 403, {}
        if isinstance(exc, ReadOnlyStoreError):
            return 503, {}
        if isinstance(exc, (ConfigurationError, ScenarioError)):
            return 400, {}
        if isinstance(exc, StoreError):
            return 404, {}
        return 500, {}

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def _route(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Tuple[str, Handler, bool]:
        """Resolve (route template, handler, is-streaming)."""
        method = request.method
        if len(parts) >= 1 and parts[0] == "v1":
            tail = parts[1:]
            if tail == ("healthz",) and method == "GET":
                return "GET /v1/healthz", self._h_healthz, False
            if tail == ("metrics",) and method == "GET":
                return "GET /v1/metrics", self._h_metrics, False
            if tail == ("campaigns",) and method == "POST":
                return "POST /v1/campaigns", self._h_submit, False
            if tail == ("jobs",) and method == "GET":
                return "GET /v1/jobs", self._h_jobs, False
            if len(tail) == 2 and tail[0] == "jobs" and method == "GET":
                return "GET /v1/jobs/{id}", self._h_job, False
            if (
                len(tail) == 3
                and tail[0] == "jobs"
                and tail[2] == "events"
                and method == "GET"
            ):
                return "GET /v1/jobs/{id}/events", self._h_job, True
            if tail == ("runs",) and method == "GET":
                return "GET /v1/runs", self._h_runs, False
            if len(tail) == 2 and tail[0] == "runs" and method == "GET":
                return "GET /v1/runs/{run_id}", self._h_run, False
            if (
                len(tail) == 3
                and tail[0] == "runs"
                and tail[2] == "result"
                and method == "GET"
            ):
                return "GET /v1/runs/{run_id}/result", self._h_result, False
            if (
                len(tail) == 4
                and tail[0] == "runs"
                and tail[2] == "export"
                and tail[3] == "campaign_series.csv"
                and method == "GET"
            ):
                return (
                    "GET /v1/runs/{run_id}/export/campaign_series.csv",
                    self._h_export_csv,
                    False,
                )
            if len(tail) == 2 and tail[0] == "blobs" and method == "GET":
                return "GET /v1/blobs/{digest}", self._h_blob, False
            if tail == ("admin", "gc") and method == "POST":
                return "POST /v1/admin/gc", self._h_gc, False
            if tail == ("admin", "cache") and method == "POST":
                return "POST /v1/admin/cache", self._h_cache, False
            if tail == ("admin", "quota") and method == "GET":
                return "GET /v1/admin/quota", self._h_quota, False
        raise HttpError(404, f"no route for {method} {request.path}")

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------
    async def _h_healthz(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        return Response.json(
            {
                "status": "draining" if self.draining else "ok",
                "store": str(self.store.root),
                "jobs_in_flight": self.jobs.active_count,
            }
        )

    async def _h_metrics(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        return Response.json(
            self.metrics.snapshot(
                queue_depth=self.jobs.active_count,
                running=self.jobs.running_count,
                cache_stats=self.cache.stats(),
            )
        )

    async def _h_submit(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        if self.draining:
            raise ReadOnlyStoreError(
                "service is draining; retry against a live instance"
            )
        tenant = request.headers.get(TENANT_HEADER, DEFAULT_TENANT)
        spec = parse_submission(request.json())
        job, disposition = await self.jobs.submit(spec, tenant)
        payload = job.describe()
        payload["disposition"] = disposition
        status = 202 if disposition == DISPOSITION_QUEUED else 200
        return Response.json(payload, status=status)

    async def _h_jobs(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        return Response.json({"jobs": self.jobs.list_jobs()})

    async def _h_job(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        job = self.jobs.get(parts[2])
        if job is None:
            raise HttpError(404, f"no such job {parts[2]!r}")
        return Response.json(job.describe())

    async def _stream_job_events(
        self,
        request: Request,
        parts: Tuple[str, ...],
        stream: ChunkedWriter,
    ) -> int:
        job = self.jobs.get(parts[2])
        if job is None:
            await send_response(
                stream._writer,
                Response.error(404, f"no such job {parts[2]!r}"),
                keep_alive=False,
            )
            return 404
        try:
            seen = int(request.query.get("after", "0"))
        except ValueError:
            raise HttpError(400, "after must be an integer") from None
        await stream.start()
        while True:
            while seen < len(job.events):
                await stream.write(sse_event(job.events[seen]))
                seen += 1
            if job.terminal:
                break
            await job.wait_events(seen)
        await stream.close()
        return 200

    async def _h_runs(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        return Response.json({"runs": await self._io_call(self.store.index)})

    async def _manifest(self, run_id: str) -> RunManifest:
        return await self._io_call(self.store.load_manifest, run_id)

    async def _h_run(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        manifest = await self._manifest(parts[2])
        return Response.json(manifest.to_dict())

    async def _blob_bytes(self, digest: str) -> bytes:
        """A blob through the read cache (verified once, then memory)."""
        key = ("blob", digest)
        data = self.cache.get(key)
        if data is None:
            data = await self._io_call(self.store.get_blob, digest)
            self.cache.put(key, data)
        return data

    async def _load_result(self, manifest: RunManifest) -> CampaignResult:
        if manifest.result_digest is None:
            raise HttpError(
                404,
                f"run {manifest.run_id!r} has no result yet "
                f"(status {manifest.status!r})",
            )
        # Deserializing the blob is pure CPU on in-memory bytes; only
        # the blob read itself needs the executor.
        blob = await self._blob_bytes(manifest.result_digest)
        result = load_checkpoint(blob, expect_kind=_RESULT_KIND)
        if not isinstance(result, CampaignResult):
            raise StoreError(
                f"run {manifest.run_id!r} result blob has wrong type"
            )
        return result

    async def _h_result(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        manifest = await self._manifest(parts[2])
        if manifest.result_digest is not None:
            key = ("summary", manifest.result_digest)
            cached = self.cache.get(key)
            if cached is not None:
                return Response(status=200, body=cached)
        result = await self._load_result(manifest)
        fig4 = result.fig4_series()
        fig5 = result.fig5_series()
        payload = {
            "run_id": manifest.run_id,
            "key": manifest.key,
            "seed": manifest.seed,
            "engine": manifest.engine,
            "status": manifest.status,
            "snapshots": manifest.completed_snapshots,
            "truncated": manifest.truncated,
            "fig4": fig4,
            "fig5": fig5,
            "mean_addr_reachable_share": result.mean_addr_reachable_share(),
            "cumulative_unreachable": len(result.cumulative_unreachable),
            "result_digest": manifest.result_digest,
            "export_csv": (
                f"/v1/runs/{manifest.run_id}/export/campaign_series.csv"
            ),
        }
        body = (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode()
        self.cache.put(("summary", manifest.result_digest), body)
        return Response(status=200, body=body)

    async def _h_export_csv(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        manifest = await self._manifest(parts[2])
        if manifest.result_digest is not None:
            key = ("csv", manifest.result_digest)
            cached = self.cache.get(key)
            if cached is not None:
                return Response(
                    status=200, body=cached, content_type="text/csv"
                )
        result = await self._load_result(manifest)
        body = await self._io_call(_render_csv, result)
        self.cache.put(("csv", manifest.result_digest), body)
        return Response(status=200, body=body, content_type="text/csv")

    async def _h_blob(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        return Response(
            status=200,
            body=await self._blob_bytes(parts[2]),
            content_type="application/octet-stream",
        )

    async def _h_gc(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        dry_run = request.query.get("dry_run", "0") not in ("0", "", "false")
        report = await self._io_call(partial(self.store.gc, dry_run=dry_run))
        return Response.json(
            {
                "dry_run": report["dry_run"],
                "removed_count": len(report["removed"]),
                "removed_bytes": report["removed_bytes"],
                "kept": report["kept"],
                "removed_sample": report["removed"][:16],
            }
        )

    async def _h_cache(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        body = request.json()
        if not isinstance(body, dict):
            raise HttpError(400, "cache control body must be an object")
        unknown = sorted(set(body) - {"enabled", "clear"})
        if unknown:
            raise HttpError(400, f"unknown cache control field(s) {unknown}")
        if "enabled" in body:
            if not isinstance(body["enabled"], bool):
                raise HttpError(400, "enabled must be a boolean")
            self.cache.set_enabled(body["enabled"])
        if body.get("clear"):
            self.cache.clear()
        return Response.json(self.cache.stats())

    async def _h_quota(
        self, request: Request, parts: Tuple[str, ...]
    ) -> Response:
        return Response.json(self.ledger.snapshot())


def _render_csv(result: CampaignResult) -> bytes:
    """Materialize the campaign-series CSV (tempfile I/O; runs on the
    service's I/O pool, never on the event loop)."""
    with tempfile.TemporaryDirectory() as tmp:
        path = export_campaign_series(
            result, os.path.join(tmp, "campaign_series.csv")
        )
        return Path(path).read_bytes()


async def run_service(
    config: ServiceConfig,
    ready: Optional[Callable[[CampaignService], Any]] = None,
) -> None:
    """Run the service until SIGINT/SIGTERM, then drain and exit.

    ``ready`` (if given) is called with the started service — the CLI
    uses it to print the bound address, tests to capture the port.
    """
    import signal

    # Constructing the service opens the store and ledger (mkdir, file
    # reads) — blocking work that must not run on the loop thread.
    loop = asyncio.get_running_loop()
    service = await loop.run_in_executor(None, CampaignService, config)
    await service.start()
    if ready is not None:
        ready(service)
    stop = asyncio.Event()
    installed = []
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
            installed.append(signum)
        except (NotImplementedError, RuntimeError):
            pass
    try:
        await stop.wait()
        logger.info("shutdown requested; draining %d in-flight job(s)",
                    service.jobs.active_count)
    finally:
        await service.shutdown(drain=True)
        for signum in installed:
            loop.remove_signal_handler(signum)
