"""Campaign submissions: config JSON -> validated config dataclasses.

The wire format mirrors the run-store manifest ``config`` block: a
``scenario`` object (``LongitudinalConfig`` fields), an optional
``campaign`` object (``CampaignConfig`` fields), optional ``seeds`` (a
list; defaults to the scenario's own seed) and optional ``snapshots``
override.  Unknown fields are rejected loudly — a typoed knob silently
falling back to its default would submit the *wrong experiment* and then
cache it under the wrong-experiment's key forever.

Because the dataclasses themselves define the schema, anything a config
file can express (nested churn/seed-view/fault-plan/attack-plan blocks
included) is submittable — an ``attack`` block is parsed through
:meth:`~repro.adversary.plan.AttackPlan.from_dict` with the same strict
unknown-key rejection — and the resulting run keys are identical to the
CLI's —
a campaign submitted over HTTP is a cache hit for the same campaign run
locally, and vice versa.
"""

from __future__ import annotations

import dataclasses
import typing
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Type, TypeVar

from ..core.pipeline import CampaignConfig
from ..errors import ConfigurationError
from ..netmodel.scenario import LongitudinalConfig
from ..store.campaign import campaign_key, campaign_run_id

T = TypeVar("T")

#: Most seeds one submission may fan out (keeps one request from
#: monopolizing the worker slots for hours).
MAX_SEEDS = 64

_TOP_LEVEL_KEYS = frozenset({"scenario", "campaign", "seeds", "snapshots"})


def dataclass_from_dict(cls: Type[T], data: Any, context: str = "") -> T:
    """Build dataclass ``cls`` from a JSON object, strictly.

    Unknown keys raise :class:`~repro.errors.ConfigurationError`; nested
    dataclass fields recurse; classes with their own ``from_dict``
    (e.g. :class:`~repro.faults.plan.FaultPlan`) use it.
    """
    where = context or cls.__name__
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"{where} must be a JSON object, got {type(data).__name__}"
        )
    names = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(key for key in data if key not in names)
    if unknown:
        raise ConfigurationError(
            f"unknown field(s) {unknown} for {where} "
            f"(allowed: {sorted(names)})"
        )
    hints = typing.get_type_hints(cls)
    kwargs: Dict[str, Any] = {}
    for f in dataclasses.fields(cls):
        if f.name not in data:
            continue
        value = data[f.name]
        ftype = hints.get(f.name)
        if typing.get_origin(ftype) is typing.Union:
            non_none = [
                arg for arg in typing.get_args(ftype)
                if arg is not type(None)
            ]
            if len(non_none) == 1:
                ftype = non_none[0]
        if (
            value is not None
            and isinstance(ftype, type)
            and dataclasses.is_dataclass(ftype)
            and isinstance(value, dict)
        ):
            from_dict = getattr(ftype, "from_dict", None)
            if from_dict is not None:
                try:
                    value = from_dict(value)
                except (TypeError, ValueError) as exc:
                    raise ConfigurationError(
                        f"invalid {where}.{f.name}: {exc}"
                    ) from exc
            else:
                value = dataclass_from_dict(
                    ftype, value, context=f"{where}.{f.name}"
                )
        kwargs[f.name] = value
    try:
        return cls(**kwargs)
    except (TypeError, ValueError) as exc:
        raise ConfigurationError(f"invalid {where}: {exc}") from exc


@dataclass
class SeedPlan:
    """One seed's identity within a submission: its run key and id."""

    seed: int
    key: str
    run_id: str


@dataclass
class SubmissionSpec:
    """A parsed, validated campaign submission."""

    scenario: LongitudinalConfig
    campaign: CampaignConfig
    seeds: List[int]
    snapshots: Optional[int] = None
    plans: List[SeedPlan] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.plans:
            self.plans = [
                SeedPlan(seed=seed, key=key, run_id=campaign_run_id(key))
                for seed, key in (
                    (
                        seed,
                        campaign_key(
                            replace(self.scenario, seed=seed),
                            self.campaign,
                            self.snapshots,
                        ),
                    )
                    for seed in self.seeds
                )
            ]

    def seed_config(self, seed: int) -> LongitudinalConfig:
        return replace(self.scenario, seed=seed)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seeds": list(self.seeds),
            "snapshots": self.snapshots,
            "runs": [
                {"seed": plan.seed, "run_id": plan.run_id, "key": plan.key}
                for plan in self.plans
            ],
        }


def parse_submission(data: Any) -> SubmissionSpec:
    """The wire JSON of ``POST /v1/campaigns`` as a :class:`SubmissionSpec`."""
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"submission must be a JSON object, got {type(data).__name__}"
        )
    unknown = sorted(key for key in data if key not in _TOP_LEVEL_KEYS)
    if unknown:
        raise ConfigurationError(
            f"unknown submission field(s) {unknown} "
            f"(allowed: {sorted(_TOP_LEVEL_KEYS)})"
        )
    scenario = dataclass_from_dict(
        LongitudinalConfig, data.get("scenario", {}), context="scenario"
    )
    campaign = dataclass_from_dict(
        CampaignConfig, data.get("campaign", {}), context="campaign"
    )
    # Fail on a bad scenario now, at submit time, not inside a worker.
    scenario.validate()

    seeds_raw = data.get("seeds")
    if seeds_raw is None:
        seeds = [scenario.seed]
    else:
        if (
            not isinstance(seeds_raw, list)
            or not seeds_raw
            or not all(isinstance(s, int) and not isinstance(s, bool)
                       for s in seeds_raw)
        ):
            raise ConfigurationError(
                "seeds must be a non-empty list of integers"
            )
        if len(set(seeds_raw)) != len(seeds_raw):
            raise ConfigurationError("seeds must be distinct")
        if len(seeds_raw) > MAX_SEEDS:
            raise ConfigurationError(
                f"at most {MAX_SEEDS} seeds per submission, "
                f"got {len(seeds_raw)}"
            )
        seeds = list(seeds_raw)

    snapshots = data.get("snapshots")
    if snapshots is not None:
        if not isinstance(snapshots, int) or isinstance(snapshots, bool):
            raise ConfigurationError("snapshots must be an integer")
        if snapshots < 1:
            raise ConfigurationError("snapshots must be >= 1")

    return SubmissionSpec(
        scenario=scenario, campaign=campaign, seeds=seeds, snapshots=snapshots
    )
