"""Job manager: bounded worker slots over the supervised campaign runner.

A *job* is one submission — one or more seeds of one campaign config —
executed through :func:`repro.store.campaign.run_stored_campaign` under
the :mod:`repro.core.supervisor`, so every seed is individually durable,
resumable, crash-supervised, and deduplicated by run key.  The manager
adds what serving needs on top:

* **slots + backpressure** — at most ``slots`` jobs simulate at once
  (one thread per slot; the simulation itself runs in supervised worker
  processes, or inline for single-seed jobs).  Beyond
  ``slots + queue_limit`` waiting jobs the manager refuses with
  :class:`~repro.errors.ServiceBusyError`, which the HTTP layer turns
  into ``429`` + ``Retry-After`` — load shedding at the door instead of
  unbounded queueing.
* **dedup** — a submission whose every run key is already complete in
  the store never takes a slot (pure cache hit), and a submission
  identical to one currently in flight *joins* that job instead of
  re-simulating.
* **progress events** — supervisor lifecycle events
  (:class:`~repro.core.supervisor.SupervisorEvent`) are forwarded onto
  the owning event loop and appended to the job's ordered event log,
  which the streaming endpoint replays and tails.
* **drain** — shutdown stops admissions and waits for in-flight jobs;
  because every seed checkpoints through the store, anything a hard kill
  would lose is bounded by one snapshot, and a drained shutdown loses
  nothing.
"""

from __future__ import annotations

import asyncio
import hashlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, List, Optional, Tuple

from ..core.parallel import run_multi_seed_supervised
from ..core.supervisor import SupervisorConfig, SupervisorEvent
from ..errors import ServiceBusyError, StoreError
from ..store.campaign import run_stored_campaign
from ..store.manifest import STATUS_COMPLETE
from ..store.runstore import RunStore
from ..store.wallclock import now as wall_now
from .metrics import ServiceMetrics
from .quota import TenantLedger
from .submission import SubmissionSpec

JOB_QUEUED = "queued"
JOB_RUNNING = "running"
JOB_COMPLETE = "complete"
JOB_FAILED = "failed"

#: Terminal jobs kept for listing/event replay before eviction.
JOB_HISTORY_LIMIT = 256

#: Dispositions a submission can come back with.
DISPOSITION_CACHED = "cached"
DISPOSITION_JOINED = "joined"
DISPOSITION_QUEUED = "queued"


def _seed_task(
    store_root: str,
    scenario: Any,
    campaign_config: Any,
    snapshots: Optional[int],
    seed: int,
) -> Dict[str, Any]:
    """Per-seed worker body (module-level so it pickles to processes)."""
    from dataclasses import replace

    stored = run_stored_campaign(
        store_root,
        replace(scenario, seed=seed),
        campaign_config=campaign_config,
        snapshots=snapshots,
    )
    manifest = stored.manifest
    return {
        "run_id": manifest.run_id,
        "cached": stored.cached,
        "resumed_from": stored.resumed_from,
        "truncated": manifest.truncated,
        "snapshots": manifest.completed_snapshots,
    }


def _forward_event(
    loop: asyncio.AbstractEventLoop, job: "Job", event: SupervisorEvent
) -> None:
    """Supervisor thread -> event loop bridge for progress events."""
    loop.call_soon_threadsafe(job.supervisor_event, event)


@dataclass
class SeedRun:
    """One seed's serving-side status within a job."""

    seed: int
    run_id: str
    key: str
    #: True when the run was already complete in the store at submit.
    cached_at_submit: bool
    status: str = "pending"
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "run_id": self.run_id,
            "key": self.key,
            "cached_at_submit": self.cached_at_submit,
            "status": self.status,
            "detail": self.detail,
        }


class Job:
    """One submission's lifecycle: status, per-seed runs, event log."""

    def __init__(
        self,
        job_id: str,
        tenant: str,
        spec: SubmissionSpec,
        runs: List[SeedRun],
        loop: asyncio.AbstractEventLoop,
    ) -> None:
        self.id = job_id
        self.tenant = tenant
        self.spec = spec
        self.runs = runs
        self.status = JOB_QUEUED
        self.created_at = wall_now()
        self.events: List[Dict[str, Any]] = []
        self._by_seed = {run.seed: run for run in runs}
        self._changed = asyncio.Event()
        self._loop = loop

    # ------------------------------------------------------------------
    # Event log (loop thread only)
    # ------------------------------------------------------------------
    def post(self, kind: str, **fields: Any) -> None:  # repro-lint: loop-owned
        event = {"seq": len(self.events), "kind": kind, "t": wall_now()}
        event.update(fields)
        self.events.append(event)
        waker, self._changed = self._changed, asyncio.Event()
        waker.set()

    # repro-lint: loop-owned
    def supervisor_event(self, event: SupervisorEvent) -> None:
        """Forwarded per-seed lifecycle transition from the supervisor."""
        if self.status == JOB_QUEUED:
            self.status = JOB_RUNNING
            self.post("job-started")
        run = self._by_seed.get(event.label)
        if run is not None and run.status not in ("complete", "failed"):
            run.status = {
                "scheduled": "pending",
                "started": "running",
                "retrying": "retrying",
                "completed": "complete",
                "failed": "failed",
            }.get(event.kind, run.status)
            if event.detail:
                run.detail = event.detail
        self.post(
            event.kind,
            seed=event.label,
            attempt=event.attempt,
            detail=event.detail,
        )

    async def wait_events(self, seen: int) -> None:
        """Return once ``events[seen]`` exists or the job is terminal."""
        while len(self.events) <= seen and not self.terminal:
            await self._changed.wait()

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def terminal(self) -> bool:
        return self.status in (JOB_COMPLETE, JOB_FAILED)

    def describe(self) -> Dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "status": self.status,
            "created_at": self.created_at,
            "seeds": list(self.spec.seeds),
            "runs": [run.to_dict() for run in self.runs],
            "events": len(self.events),
            "events_url": f"/v1/jobs/{self.id}/events",
        }


class JobManager:
    """Admission control + execution for campaign jobs."""

    def __init__(
        self,
        store: RunStore,
        ledger: TenantLedger,
        metrics: ServiceMetrics,
        slots: int = 1,
        queue_limit: int = 8,
        workers: int = 1,
        supervisor: Optional[SupervisorConfig] = None,
        retry_after: float = 2.0,
    ) -> None:
        self.store = store
        self.ledger = ledger
        self.metrics = metrics
        self.slots = max(1, slots)
        self.queue_limit = max(0, queue_limit)
        self.workers = max(1, workers)
        self.supervisor = supervisor
        self.retry_after = retry_after
        self.draining = False
        self.jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._inflight: Dict[str, Job] = {}
        self._tasks: Dict[str, "asyncio.Task[None]"] = {}
        self._executor = ThreadPoolExecutor(
            max_workers=self.slots, thread_name_prefix="repro-serve-job"
        )
        # One thread, deliberately: admission reads (store lookups) and
        # ledger read-modify-writes are serialized here, so two racing
        # submissions cannot interleave a quota charge.
        self._admission = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve-admit"
        )
        self._run_counter = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active_count(self) -> int:
        """Jobs admitted but not yet terminal (queued + running)."""
        return len(self._inflight)

    @property
    def running_count(self) -> int:
        return sum(
            1 for job in self._inflight.values() if job.status == JOB_RUNNING
        )

    def get(self, job_id: str) -> Optional[Job]:
        return self.jobs.get(job_id)

    def list_jobs(self) -> List[Dict[str, Any]]:
        return [self.jobs[job_id].describe() for job_id in self._order]

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def _job_key(self, spec: SubmissionSpec) -> str:
        hasher = hashlib.sha256()
        for plan in spec.plans:
            hasher.update(plan.key.encode())
        return hasher.hexdigest()

    def _seed_runs(self, spec: SubmissionSpec) -> Tuple[List[SeedRun], int]:
        """Per-seed run records + how many need fresh simulation."""
        runs: List[SeedRun] = []
        fresh = 0
        for plan in spec.plans:
            cached = False
            if self.store.has_run(plan.run_id):
                manifest = self.store.load_manifest(plan.run_id)
                cached = manifest.status == STATUS_COMPLETE
            if not cached:
                fresh += 1
            runs.append(
                SeedRun(
                    seed=plan.seed,
                    run_id=plan.run_id,
                    key=plan.key,
                    cached_at_submit=cached,
                    status="complete" if cached else "pending",
                    detail="store cache hit" if cached else "",
                )
            )
        return runs, fresh

    def _remember(self, job: Job) -> None:
        self.jobs[job.id] = job
        self._order.append(job.id)
        while len(self._order) > JOB_HISTORY_LIMIT:
            victim_id = None
            for job_id in self._order:
                candidate = self.jobs[job_id]
                if candidate.terminal:
                    victim_id = job_id
                    break
            if victim_id is None:
                break  # everything old is still in flight; keep it all
            self._order.remove(victim_id)
            del self.jobs[victim_id]

    async def submit(
        self, spec: SubmissionSpec, tenant: str
    ) -> Tuple[Job, str]:
        """Admit a submission; returns ``(job, disposition)``.

        Raises :class:`~repro.errors.ServiceBusyError` over capacity and
        :class:`~repro.errors.QuotaExceededError` over quota.  The store
        lookups and the ledger charge are file I/O, dispatched onto the
        single-threaded admission executor so the event loop never
        blocks and concurrent submissions serialize their quota charges.
        """
        loop = asyncio.get_running_loop()
        key = self._job_key(spec)

        inflight = self._inflight.get(key)
        if inflight is not None:
            self.metrics.submit_cache_hits += 1
            return inflight, DISPOSITION_JOINED

        runs, fresh = await loop.run_in_executor(
            self._admission, self._seed_runs, spec
        )
        # An identical submission may have been admitted while we were
        # reading the store; join it rather than double-running.
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.metrics.submit_cache_hits += 1
            return inflight, DISPOSITION_JOINED
        if fresh == 0:
            # Every run key is already complete in the store: answer
            # without taking a slot or charging quota.
            self.metrics.submit_cache_hits += 1
            self._run_counter += 1
            job = Job(f"job-{key[:12]}-{self._run_counter}", tenant, spec,
                      runs, loop)
            job.status = JOB_COMPLETE
            for run in runs:
                job.post("completed", seed=run.seed, attempt=0,
                         detail="store cache hit")
            job.post("job-complete", cached=True)
            self._remember(job)
            return job, DISPOSITION_CACHED

        if self.draining:
            raise ServiceBusyError(
                "service is draining and not accepting new campaigns",
                retry_after=self.retry_after,
            )
        if self.active_count >= self.slots + self.queue_limit:
            self.metrics.rejected_busy += 1
            raise ServiceBusyError(
                f"{self.active_count} job(s) in flight >= "
                f"{self.slots} slot(s) + {self.queue_limit} queued",
                retry_after=self.retry_after,
            )
        # Pre-charge quota for the fresh runs only; raises over quota.
        try:
            await loop.run_in_executor(
                self._admission, self.ledger.charge_runs, tenant, fresh
            )
        except Exception:
            self.metrics.rejected_quota += 1
            raise

        self.metrics.submit_misses += 1
        self._run_counter += 1
        job = Job(f"job-{key[:12]}-{self._run_counter}", tenant, spec, runs,
                  loop)
        job.post("job-queued", fresh=fresh, cached=len(runs) - fresh)
        self._remember(job)
        self._inflight[key] = job
        task = loop.create_task(self._run_job(key, job))
        self._tasks[job.id] = task
        return job, DISPOSITION_QUEUED

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _execute(self, job: Job, loop: asyncio.AbstractEventLoop):
        """Worker-thread body: the supervised multi-seed fan-out."""
        spec = job.spec
        task = partial(
            _seed_task,
            str(self.store.root),
            spec.scenario,
            spec.campaign,
            spec.snapshots,
        )
        return run_multi_seed_supervised(
            task,
            spec.seeds,
            workers=min(self.workers, len(spec.seeds)),
            supervisor=self.supervisor,
            labels=spec.seeds,
            on_event=partial(_forward_event, loop, job),
        )

    async def _run_job(self, key: str, job: Job) -> None:
        loop = asyncio.get_running_loop()
        try:
            run = await loop.run_in_executor(
                self._executor, self._execute, job, loop
            )
        except Exception as exc:  # noqa: BLE001 - job turns failed, not lost
            job.status = JOB_FAILED
            job.post("job-failed", detail=f"{type(exc).__name__}: {exc}")
            self._inflight.pop(key, None)
            return
        for run_record, result in zip(job.runs, run.results):
            if result is not None:
                run_record.status = "complete"
                if result.get("truncated"):
                    run_record.detail = "truncated"
        for index, failure in zip(run.failed_indexes, run.failures):
            job.runs[index].status = "failed"
            job.runs[index].detail = failure.cause
        skipped = await loop.run_in_executor(
            self._admission, self._account_bytes, job
        )
        if skipped is not None:
            job.post("accounting-skipped", detail=skipped)
        if run.ok:
            job.status = JOB_COMPLETE
            job.post("job-complete", cached=False,
                     retried=list(run.retried_labels))
        else:
            job.status = JOB_FAILED
            job.post("job-failed",
                     detail=f"{len(run.failures)} seed(s) failed permanently",
                     failed=list(run.failed_labels))
        self._inflight.pop(key, None)

    def _account_bytes(self, job: Job) -> Optional[str]:
        """Charge the tenant for blob bytes its fresh runs pinned.

        Runs on the admission executor (manifest/blob-size reads are
        file I/O).  Returns a skip reason instead of posting to the job
        event log directly — the log is loop-owned, so the caller posts
        back on the loop.
        """
        total = 0
        for run in job.runs:
            if run.cached_at_submit or run.status != "complete":
                continue
            try:
                manifest = self.store.load_manifest(run.run_id)
                seen = set()
                for digest in manifest.referenced_digests():
                    if digest not in seen and self.store.blobs.has(digest):
                        seen.add(digest)
                        total += self.store.blobs.size_bytes(digest)
            except StoreError:
                continue
        try:
            self.ledger.add_bytes(job.tenant, total)
        except StoreError as exc:
            return str(exc)
        return None

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    async def drain(self) -> None:
        """Stop admitting; wait for every in-flight job to finish."""
        self.draining = True
        tasks = [task for task in self._tasks.values() if not task.done()]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)
        self._executor.shutdown(wait=True)
        self._admission.shutdown(wait=True)
