"""A minimal asyncio HTTP client for the campaign service.

Exists so tests, the serve benchmark, and the CI smoke script can talk
to the service without any third-party HTTP dependency.  It speaks
exactly the subset the service emits: HTTP/1.1, ``Content-Length``
bodies for regular responses, and ``Transfer-Encoding: chunked`` for the
SSE event stream.

``Client`` holds one keep-alive connection — which is also what the
benchmark wants, so connection setup cost does not pollute per-request
latency samples.
"""

from __future__ import annotations

import asyncio
import json
from typing import Any, AsyncIterator, Dict, Optional, Tuple

_MAX_LINE = 65536


class ClientResponse:
    """Status, headers, body of one non-streaming response."""

    def __init__(
        self, status: int, headers: Dict[str, str], body: bytes
    ) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> Any:
        return json.loads(self.body.decode("utf-8"))


async def _read_head(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str]]:
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    parts = status_line.decode("latin-1").strip().split(" ", 2)
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers


class Client:
    """One keep-alive connection to a running campaign service."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None

    async def _connect(self) -> None:
        self._reader, self._writer = await asyncio.open_connection(
            self.host, self.port, limit=_MAX_LINE
        )

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
        self._reader = None
        self._writer = None

    async def __aenter__(self) -> "Client":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    def _encode_request(
        self,
        method: str,
        path: str,
        body: Optional[bytes],
        headers: Optional[Dict[str, str]],
    ) -> bytes:
        lines = [
            f"{method} {path} HTTP/1.1",
            f"Host: {self.host}:{self.port}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        if body is not None:
            lines.append(f"Content-Length: {len(body)}")
            lines.append("Content-Type: application/json")
        payload = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        if body is not None:
            payload += body
        return payload

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[Any] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ClientResponse:
        """One request/response over the persistent connection.

        ``body`` (if not None and not ``bytes``) is JSON-encoded.
        Reconnects once if the server closed an idle keep-alive conn.
        """
        raw: Optional[bytes]
        if body is None:
            raw = None
        elif isinstance(body, bytes):
            raw = body
        else:
            raw = json.dumps(body).encode("utf-8")
        payload = self._encode_request(method, path, raw, headers)
        for attempt in (0, 1):
            if self._reader is None or self._writer is None:
                await self._connect()
            assert self._reader is not None and self._writer is not None
            try:
                self._writer.write(payload)
                await self._writer.drain()
                status, resp_headers = await _read_head(self._reader)
            except (ConnectionError, BrokenPipeError):
                await self.close()
                if attempt:
                    raise
                continue
            length = int(resp_headers.get("content-length", "0"))
            data = (
                await self._reader.readexactly(length) if length else b""
            )
            if resp_headers.get("connection", "").lower() == "close":
                await self.close()
            return ClientResponse(status, resp_headers, data)
        raise ConnectionError("unreachable")  # pragma: no cover

    async def stream_events(
        self,
        path: str,
        headers: Optional[Dict[str, str]] = None,
    ) -> AsyncIterator[Dict[str, Any]]:
        """Yield decoded SSE events from a chunked event-stream response.

        Uses a dedicated connection (the stream ends with a server-side
        close, per the service's chunked responses).
        """
        reader, writer = await asyncio.open_connection(
            self.host, self.port, limit=_MAX_LINE
        )
        try:
            writer.write(self._encode_request("GET", path, None, headers))
            await writer.drain()
            status, resp_headers = await _read_head(reader)
            if status != 200:
                length = int(resp_headers.get("content-length", "0"))
                body = await reader.readexactly(length) if length else b""
                raise ConnectionError(
                    f"event stream returned {status}: {body[:200]!r}"
                )
            buffer = b""
            while True:
                size_line = await reader.readline()
                if not size_line:
                    break
                size = int(size_line.strip() or b"0", 16)
                if size == 0:
                    await reader.readline()  # trailing CRLF
                    break
                chunk = await reader.readexactly(size)
                await reader.readexactly(2)  # CRLF after chunk
                buffer += chunk
                while b"\n\n" in buffer:
                    frame, buffer = buffer.split(b"\n\n", 1)
                    for line in frame.splitlines():
                        if line.startswith(b"data: "):
                            yield json.loads(line[6:].decode("utf-8"))
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass
