"""Campaign-as-a-service: an asyncio serving layer over the run store.

``repro serve`` turns the content-addressed run store into a small
multi-tenant service: clients POST campaign configs, the service
deduplicates them against the store (identical config + seed = the same
run key = a cache hit that never re-simulates), executes fresh runs
through the crash-supervised multi-seed runner while streaming per-seed
progress events over SSE, and serves results, figure CSVs, and raw
blobs back out through a byte-budgeted read cache.

Built entirely on the standard library (``asyncio`` + a hand-rolled
HTTP/1.1 in :mod:`repro.serve.http`) — the repository's no-new-runtime-
dependencies rule applies to the serving layer too.

Layering:

- :mod:`repro.serve.http` — wire protocol (requests, responses, chunked
  streaming, SSE framing)
- :mod:`repro.serve.submission` — config JSON -> validated dataclasses
  -> per-seed run keys
- :mod:`repro.serve.jobs` — slots, queueing, backpressure, supervised
  execution, the per-job event log
- :mod:`repro.serve.cache` / :mod:`repro.serve.quota` /
  :mod:`repro.serve.metrics` — read cache, tenant ledger, telemetry
- :mod:`repro.serve.app` — the route table tying it all together
- :mod:`repro.serve.client` — dependency-free client for tests and the
  load benchmark
"""

from .app import CampaignService, ServiceConfig, run_service
from .cache import ReadCache
from .client import Client, ClientResponse
from .jobs import (
    DISPOSITION_CACHED,
    DISPOSITION_JOINED,
    DISPOSITION_QUEUED,
    Job,
    JobManager,
)
from .metrics import ServiceMetrics
from .quota import DEFAULT_TENANT, TenantLedger
from .submission import SubmissionSpec, parse_submission

__all__ = [
    "CampaignService",
    "ServiceConfig",
    "run_service",
    "ReadCache",
    "Client",
    "ClientResponse",
    "DISPOSITION_CACHED",
    "DISPOSITION_JOINED",
    "DISPOSITION_QUEUED",
    "Job",
    "JobManager",
    "ServiceMetrics",
    "DEFAULT_TENANT",
    "TenantLedger",
    "SubmissionSpec",
    "parse_submission",
]
