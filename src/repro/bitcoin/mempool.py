"""The transaction memory pool.

The mempool matters to synchronization because of BIP152 compact blocks
(paper §IV-C): a node reconstructs a new block from transactions it already
holds, and every transaction *missing* from its mempool costs an extra
GETBLOCKTXN round trip.  Transactions are opaque ``(txid, size)`` pairs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass(frozen=True)
class Transaction:
    """An opaque transaction: identity and serialized size."""

    txid: int
    size: int = 350
    created_at: float = 0.0


class Mempool:
    """A node's pending-transaction pool."""

    def __init__(self, max_size: int = 300_000) -> None:
        self._txs: Dict[int, Transaction] = {}
        self.max_size = max_size

    def __len__(self) -> int:
        return len(self._txs)

    def __contains__(self, txid: int) -> bool:
        return txid in self._txs

    def add(self, tx: Transaction) -> bool:
        """Insert ``tx``.  Returns True if it was new."""
        if tx.txid in self._txs:
            return False
        if len(self._txs) >= self.max_size:
            # Evict the oldest entry (FIFO approximation of feerate
            # eviction; ordering does not matter to the study).
            oldest = next(iter(self._txs))
            del self._txs[oldest]
        self._txs[tx.txid] = tx
        return True

    def get(self, txid: int) -> Optional[Transaction]:
        return self._txs.get(txid)

    def remove_all(self, txids: Iterable[int]) -> int:
        """Remove the given txids (block confirmation).  Returns count removed."""
        removed = 0
        for txid in txids:
            if self._txs.pop(txid, None) is not None:
                removed += 1
        return removed

    def missing_from(self, txids: Iterable[int]) -> List[int]:
        """The subset of ``txids`` not in the pool (compact-block gaps)."""
        return [txid for txid in txids if txid not in self._txs]

    def split_known(self, txids: Iterable[int]) -> Tuple[List[int], List[int]]:
        """Partition ``txids`` into (known, missing)."""
        known: List[int] = []
        missing: List[int] = []
        for txid in txids:
            (known if txid in self._txs else missing).append(txid)
        return known, missing
