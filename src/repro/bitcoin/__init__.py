"""Simulated Bitcoin node substrate.

A faithful-in-behaviour Python rendering of the Bitcoin Core v0.20.1
mechanisms the paper analyzes: the addrman new/tried tables, the
one-attempt-at-a-time connection loop, feeler connections, the
SocketHandler/ThreadMessageHandler round-robin engine, BIP152 compact
blocks, and the §V policy refinements.
"""

from .addrman import AddrInfo, AddrMan
from .blockchain import GENESIS_ID, Block, Blockchain, make_genesis
from .config import NodeConfig, PolicyConfig, unreachable_config
from .mempool import Mempool, Transaction
from .messages import (
    Addr,
    BlockMsg,
    BlockTxn,
    CmpctBlock,
    GetAddr,
    GetBlocks,
    GetBlockTxn,
    GetData,
    Inv,
    InvItem,
    InvType,
    Message,
    Ping,
    Pong,
    SendCmpct,
    TxMsg,
    Verack,
    Version,
)
from .mining import MinedBlock, MiningProcess, TransactionGenerator
from .node import BitcoinNode, ConnectionAttempt
from .peer import Peer
from .relay import RelayRecord, RelayTracker, relay_order

__all__ = [
    "GENESIS_ID",
    "Addr",
    "AddrInfo",
    "AddrMan",
    "BitcoinNode",
    "Block",
    "BlockMsg",
    "BlockTxn",
    "Blockchain",
    "CmpctBlock",
    "ConnectionAttempt",
    "GetAddr",
    "GetBlockTxn",
    "GetBlocks",
    "GetData",
    "Inv",
    "InvItem",
    "InvType",
    "Mempool",
    "Message",
    "MinedBlock",
    "MiningProcess",
    "NodeConfig",
    "Peer",
    "Ping",
    "PolicyConfig",
    "Pong",
    "RelayRecord",
    "RelayTracker",
    "SendCmpct",
    "Transaction",
    "TransactionGenerator",
    "TxMsg",
    "Verack",
    "Version",
    "make_genesis",
    "relay_order",
    "unreachable_config",
]
