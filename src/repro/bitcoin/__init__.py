"""Simulated Bitcoin node substrate.

A faithful-in-behaviour Python rendering of the Bitcoin Core v0.20.1
mechanisms the paper analyzes: the addrman new/tried tables, the
one-attempt-at-a-time connection loop, feeler connections, the
SocketHandler/ThreadMessageHandler round-robin engine, BIP152 compact
blocks, and the §V policy refinements.
"""

from .addrman import AddrInfo, AddrMan
from .behavior import (
    FIDELITY_FULL,
    FIDELITY_LIGHT,
    NodeBehavior,
    describe_tier,
    validate_fidelity,
)
from .blockchain import GENESIS_ID, Block, Blockchain, make_genesis
from .config import NodeConfig, PolicyConfig, unreachable_config
from .connection import ConnectionManager
from .handler import HandlerLoop
from .light import DEFAULT_LIGHT_PROFILE, LightNode, LightNodeProfile
from .mempool import Mempool, Transaction
from .messages import (
    Addr,
    BlockMsg,
    BlockTxn,
    CmpctBlock,
    GetAddr,
    GetBlocks,
    GetBlockTxn,
    GetData,
    Inv,
    InvItem,
    InvType,
    Message,
    Ping,
    Pong,
    SendCmpct,
    TxMsg,
    Verack,
    Version,
)
from .mining import MinedBlock, MiningProcess, TransactionGenerator
from .node import BitcoinNode, ConnectionAttempt
from .peer import Peer
from .policy import (
    AddrPolicy,
    ConnPolicy,
    LightTierPolicy,
    PolicyBundle,
    PolicyVariant,
    RelayPolicy,
    build_policies,
    get_variant,
    register,
    variant_names,
)
from .relay import RelayRecord, RelayTracker, relay_order
from .relay_engine import RelayEngine

__all__ = [
    "DEFAULT_LIGHT_PROFILE",
    "FIDELITY_FULL",
    "FIDELITY_LIGHT",
    "GENESIS_ID",
    "Addr",
    "AddrInfo",
    "AddrMan",
    "AddrPolicy",
    "BitcoinNode",
    "Block",
    "BlockMsg",
    "BlockTxn",
    "Blockchain",
    "CmpctBlock",
    "ConnPolicy",
    "ConnectionAttempt",
    "ConnectionManager",
    "GetAddr",
    "GetBlockTxn",
    "GetBlocks",
    "GetData",
    "HandlerLoop",
    "Inv",
    "InvItem",
    "InvType",
    "LightNode",
    "LightNodeProfile",
    "LightTierPolicy",
    "Mempool",
    "Message",
    "MinedBlock",
    "MiningProcess",
    "NodeBehavior",
    "NodeConfig",
    "Peer",
    "Ping",
    "PolicyBundle",
    "PolicyConfig",
    "PolicyVariant",
    "Pong",
    "RelayEngine",
    "RelayRecord",
    "RelayTracker",
    "SendCmpct",
    "Transaction",
    "TransactionGenerator",
    "TxMsg",
    "Verack",
    "Version",
    "build_policies",
    "describe_tier",
    "get_variant",
    "make_genesis",
    "register",
    "relay_order",
    "unreachable_config",
    "validate_fidelity",
    "variant_names",
]
