"""Block production and transaction generation processes.

Mining is modelled as a single network-wide Poisson process with the
Bitcoin target rate (one block per 600 s): at each firing, a random
*synchronized* node wins the block and extends its own tip.  This matches
how the paper treats mining — an exogenous arrival process whose product
must then propagate — without simulating proof-of-work.

:class:`TransactionGenerator` injects transactions at random nodes so the
compact-block path (mempool reconstruction, GETBLOCKTXN round trips) has
something to chew on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..errors import ScenarioError
from ..simnet.simulator import Simulator
from .blockchain import Block
from .config import BLOCK_INTERVAL
from .mempool import Transaction
from .node import BitcoinNode


@dataclass
class MinedBlock:
    """A block the mining process issued, with its origin."""

    block: Block
    miner: BitcoinNode
    mined_at: float


class MiningProcess:
    """Poisson block production over a dynamic candidate set."""

    def __init__(
        self,
        sim: Simulator,
        candidates: Callable[[], Sequence[BitcoinNode]],
        block_interval: float = BLOCK_INTERVAL,
        txs_per_block: int = 0,
        tx_size: int = 350,
        block_size_mean: float = 1.0 * 1024 * 1024,
        block_size_std: float = 0.25 * 1024 * 1024,
    ) -> None:
        if block_interval <= 0:
            raise ScenarioError("block_interval must be positive")
        self.sim = sim
        self._candidates = candidates
        self.block_interval = block_interval
        self.txs_per_block = txs_per_block
        self.tx_size = tx_size
        #: Serialized block size model.  Only a sample of each block's
        #: transactions is simulated individually; the rest of a realistic
        #: ~1 MB 2020 block is accounted as filler bytes so full-block
        #: transmission times (the §IV-C relay tail) are right.
        self.block_size_mean = block_size_mean
        self.block_size_std = block_size_std
        self._rng = sim.random.stream("mining")
        self._next_block_id = 1
        self._base_height = 0
        self.history: List[MinedBlock] = []
        self._running = False
        self._event = None

    @property
    def best_height(self) -> int:
        """Height of the latest mined block (the global tip)."""
        if self.history:
            return self.history[-1].block.height
        return self._base_height

    def premine(self, count: int) -> List[Block]:
        """Build a historical chain of ``count`` blocks (pre-campaign).

        Models the years of blockchain that exist before the experiment
        starts: standing nodes are born with it, while replacement nodes
        must download it — the days-long initial block download that makes
        churn corrosive to synchronization (§IV-D).  Must be called before
        any block is mined live.
        """
        if self.history:
            raise ScenarioError("premine() must precede live mining")
        blocks: List[Block] = []
        prev_id = 0  # genesis
        for height in range(1, count + 1):
            size = int(
                max(80, self._rng.gauss(self.block_size_mean, self.block_size_std))
            )
            block = Block(
                block_id=self._next_block_id,
                prev_id=prev_id,
                height=height,
                created_at=0.0,
                size=size,
            )
            prev_id = block.block_id
            self._next_block_id += 1
            blocks.append(block)
        self._base_height = count
        return blocks

    @property
    def blocks_mined(self) -> int:
        return len(self.history)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(1.0 / self.block_interval)
        self._event = self.sim.schedule(delay, self._mine)

    def _mine(self) -> None:
        if not self._running:
            return
        miner = self._pick_miner()
        if miner is not None:
            block = self._make_block(miner)
            self.history.append(
                MinedBlock(block=block, miner=miner, mined_at=self.sim.now)
            )
            miner.submit_block(block)
        self._schedule_next()

    def _pick_miner(self) -> Optional[BitcoinNode]:
        """Choose a running node with the current best chain.

        Miners are, by definition, synchronized — an out-of-date miner
        would orphan itself — so candidates behind the tip are skipped.
        """
        candidates = [
            node
            for node in self._candidates()
            if node.running and node.chain.height >= self.best_height
        ]
        if not candidates:
            return None
        return self._rng.choice(candidates)

    def _make_block(self, miner: BitcoinNode) -> Block:
        parent = miner.chain.tip
        # Confirm a slice of the miner's mempool (newest-agnostic sample).
        pool_txids = []
        if self.txs_per_block > 0 and len(miner.mempool) > 0:
            all_ids = [
                txid
                for txid in list(miner.mempool._txs)  # noqa: SLF001 - sim-internal
            ]
            take = min(self.txs_per_block, len(all_ids))
            pool_txids = self._rng.sample(all_ids, take)
        tx_bytes = sum(
            (miner.mempool.get(txid).size if miner.mempool.get(txid) else self.tx_size)
            for txid in pool_txids
        )
        filler = max(
            0.0, self._rng.gauss(self.block_size_mean, self.block_size_std)
        )
        size = int(max(80 + tx_bytes, filler))
        block = Block(
            block_id=self._next_block_id,
            prev_id=parent.block_id,
            height=parent.height + 1,
            created_at=self.sim.now,
            txids=tuple(pool_txids),
            size=size,
        )
        self._next_block_id += 1
        return block


class TransactionGenerator:
    """Poisson transaction arrivals injected at random running nodes."""

    def __init__(
        self,
        sim: Simulator,
        candidates: Callable[[], Sequence[BitcoinNode]],
        tx_rate: float = 0.1,
        tx_size_mean: int = 350,
    ) -> None:
        if tx_rate <= 0:
            raise ScenarioError("tx_rate must be positive")
        self.sim = sim
        self._candidates = candidates
        self.tx_rate = tx_rate
        self.tx_size_mean = tx_size_mean
        self._rng = sim.random.stream("txgen")
        self._next_txid = 1_000_000_000  # disjoint from block ids
        self.generated = 0
        self._running = False
        self._event = None

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(self.tx_rate)
        self._event = self.sim.schedule(delay, self._emit)

    def _emit(self) -> None:
        if not self._running:
            return
        candidates = [node for node in self._candidates() if node.running]
        if candidates:
            origin = self._rng.choice(candidates)
            size = max(120, int(self._rng.gauss(self.tx_size_mean, 80)))
            tx = Transaction(
                txid=self._next_txid, size=size, created_at=self.sim.now
            )
            self._next_txid += 1
            self.generated += 1
            origin.submit_tx(tx)
        self._schedule_next()
