"""Block and transaction relay, extracted from the node.

The :class:`RelayEngine` owns relay *mechanics*: BIP152 compact-block
push to high-bandwidth peers vs. INV/GETDATA announcement, and the
Poisson inv trickle (per-peer timers for outbound connections, one
shared timer for all inbound connections, as Bitcoin Core's
``PoissonNextSendInbound`` does to blunt timing-based topology
inference).  Relay *policy* — peer ordering, queue priority, inv
targets — comes from the node's registered
:class:`~repro.bitcoin.policy.RelayPolicy` variant.

Relay *measurement* (the :class:`~repro.bitcoin.relay.RelayTracker` and
``first_relay_at``) stays on the node — it is experiment surface, read
by the §IV-C/§IV-D drivers, not protocol state.

All RNG draws come from the owning node's stream in the same order the
pre-extraction node made them, and all queue callbacks are bound methods
(snapshot-picklable, lint-clean).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from .mempool import Transaction
from .messages import BlockMsg, CmpctBlock, Inv, InvItem, InvType, Message
from .peer import Peer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .blockchain import Block
    from .node import BitcoinNode


class RelayEngine:
    """Relay policy + trickle timers for one full-tier node."""

    __slots__ = ("node", "inbound_trickle_armed")

    def __init__(self, node: "BitcoinNode") -> None:
        self.node = node
        #: The shared inbound trickle timer is pending.
        self.inbound_trickle_armed = False

    # ------------------------------------------------------------------
    # Relay entry points
    # ------------------------------------------------------------------
    def relay_block(self, block: "Block") -> None:
        node = self.node
        policy = node.policy.relay
        to_front = policy.block_to_front
        tracker = node.relay_tracker
        for peer in policy.block_order(node.established_peers):
            if block.block_id in peer.known_blocks:
                continue
            peer.known_blocks.add(block.block_id)
            if node.config.compact_blocks and peer.wants_cmpct_hb:
                message: Message = CmpctBlock(block=block)
            else:
                message = Inv(items=(InvItem(InvType.BLOCK, block.block_id),))
            peer.enqueue_send(message, to_front=to_front)
            if tracker is not None:
                tracker.enqueued(block.block_id)

    def relay_tx(self, tx: Transaction, exclude: Optional[Peer]) -> None:
        node = self.node
        tracker = node.relay_tracker
        for peer in node.policy.relay.tx_targets(node):
            if peer is exclude or tx.txid in peer.known_txs:
                continue
            peer.pending_tx_invs.add(tx.txid)
            if tracker is not None:
                tracker.enqueued(tx.txid)
            self.schedule_trickle(peer)

    # ------------------------------------------------------------------
    # Poisson inv trickle
    # ------------------------------------------------------------------
    def schedule_trickle(self, peer: Peer) -> None:
        """Arm the Poisson inv-trickle timer covering ``peer``."""
        node = self.node
        if peer.is_inbound:
            if self.inbound_trickle_armed:
                return
            mean = node.config.tx_inv_interval_inbound
            delay = node._rng.expovariate(1.0 / mean) if mean > 0 else 0.0
            self.inbound_trickle_armed = True
            node.sim.schedule(delay, self._flush_inbound_tx_invs)
            return
        if peer.next_tx_inv_at > node.sim.now:
            return  # timer already pending
        mean = node.config.tx_inv_interval_outbound
        delay = node._rng.expovariate(1.0 / mean) if mean > 0 else 0.0
        peer.next_tx_inv_at = node.sim.now + delay
        node.sim.schedule(delay, self._flush_tx_invs, peer)

    def _flush_inbound_tx_invs(self) -> None:
        self.inbound_trickle_armed = False
        node = self.node
        if not node.running:
            return
        for peer in list(node.peers.values()):
            if peer.is_inbound:
                self._flush_peer_invs(peer)

    def _flush_tx_invs(self, peer: Peer) -> None:
        peer.next_tx_inv_at = 0.0
        self._flush_peer_invs(peer)

    def _flush_peer_invs(self, peer: Peer) -> None:
        node = self.node
        if peer.socket not in node.peers or not peer.established:
            return
        if not peer.pending_tx_invs:
            return
        txids = sorted(peer.pending_tx_invs)
        peer.pending_tx_invs.clear()
        peer.known_txs.update(txids)
        peer.enqueue_send(
            Inv(items=tuple(InvItem(InvType.TX, txid) for txid in txids))
        )
        node._wake_handler()

    # ------------------------------------------------------------------
    # Measurement tap (called by the handler loop per completed send)
    # ------------------------------------------------------------------
    def note_relayed(self, message: Message, completed_at: float) -> None:
        """Record relay completions for the §IV-C measurement."""
        node = self.node
        if node.first_relay_at is None and isinstance(
            message, (BlockMsg, CmpctBlock)
        ):
            node.first_relay_at = completed_at
        tracker = node.relay_tracker
        if tracker is None:
            return
        if isinstance(message, (BlockMsg, CmpctBlock)):
            tracker.relayed(message.block_id, completed_at)
        elif isinstance(message, Inv):
            for item in message.items:
                tracker.relayed(item.object_id, completed_at)
