"""ThreadOpenConnections and feelers, extracted from the node.

The :class:`ConnectionManager` owns everything the paper's §IV-B
connection analysis measures: the one-at-a-time outbound attempt loop
paced by addrman draws (with no reachability information), the periodic
feeler probes that promote new-table addresses to tried, and the
per-attempt outcome log behind Fig. 7.

The manager shares its node's RNG stream and scheduler, so extracting it
from :class:`~repro.bitcoin.node.BitcoinNode` changes no draw order and
no event order — same seed, same figures, pinned by test.  Callbacks
placed on the event queue are bound methods or module-level
``functools.partial`` objects, never closures, so simulator snapshots
keep pickling.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import partial
from typing import TYPE_CHECKING, List, Optional

from ..simnet.addresses import NetAddr
from ..simnet.transport import Socket
from .messages import Message, Version

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import BitcoinNode


@dataclass(slots=True)
class ConnectionAttempt:
    """One outbound connection attempt and its outcome (Fig. 7 data)."""

    started_at: float
    finished_at: float
    target: NetAddr
    outcome: str  # "success", "failed", or "feeler-success"/"feeler-failed"

    @property
    def succeeded(self) -> bool:
        return self.outcome.endswith("success")

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class ConnectionManager:
    """Outbound-connection state machine for one full-tier node."""

    __slots__ = (
        "node",
        "attempt_log",
        "active_feelers",
        "_attempt_in_flight",
        "_connect_event",
        "_feeler_task",
    )

    def __init__(self, node: "BitcoinNode") -> None:
        self.node = node
        #: Fig. 7 measurement: every logged attempt and its outcome.
        self.attempt_log: List[ConnectionAttempt] = []
        #: Feeler connections currently in flight (they occupy sockets
        #: but not outbound slots; polling counts them — Fig. 6).
        self.active_feelers = 0
        self._attempt_in_flight = False
        self._connect_event = None
        self._feeler_task = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin connecting out; arm the feeler timer if configured."""
        node = self.node
        self.ensure_connecting()
        if node.config.feelers_enabled:
            self._feeler_task = node.sim.call_every(
                node.config.feeler_interval,
                self.try_feeler,
                start_delay=node._rng.uniform(0, node.config.feeler_interval),
            )

    def stop(self) -> None:
        """Cancel the pending attempt and the feeler timer."""
        if self._feeler_task is not None:
            self._feeler_task.stop()
            self._feeler_task = None
        if self._connect_event is not None:
            self._connect_event.cancel()
            self._connect_event = None
        self.active_feelers = 0

    # ------------------------------------------------------------------
    # ThreadOpenConnections
    # ------------------------------------------------------------------
    def ensure_connecting(self) -> None:
        """Schedule the next outbound attempt if slots are unfilled."""
        node = self.node
        if not node.running or self._attempt_in_flight:
            return
        if node.outbound_count >= node.config.max_outbound:
            return
        if self._connect_event is not None:
            return
        self._connect_event = node.sim.schedule(
            node.config.connect_retry_interval, self._attempt_connection
        )

    def _attempt_connection(self) -> None:
        self._connect_event = None
        node = self.node
        if not node.running or node.outbound_count >= node.config.max_outbound:
            return
        target = node.policy.conn.select_target(node, node.sim.now)
        if target is None or target == node.addr or node._connected_to(target):
            self.ensure_connecting()
            return
        node.addrman.attempt(target, node.sim.now)
        self._attempt_in_flight = True
        started = node.sim.now
        node.sim.network.connect(
            node.addr,
            target,
            handler=node,
            # partial, not a lambda: the callback sits in the event queue
            # and must survive Simulator.snapshot() pickling.
            on_result=partial(self._connection_result, target, started),
            timeout=node.config.connect_timeout,
        )

    def _connection_result(
        self, target: NetAddr, started: float, socket: Optional[Socket]
    ) -> None:
        self._attempt_in_flight = False
        node = self.node
        if node.config.track_connection_attempts:
            self.attempt_log.append(
                ConnectionAttempt(
                    started_at=started,
                    finished_at=node.sim.now,
                    target=target,
                    outcome="success" if socket is not None else "failed",
                )
            )
        if not node.running:
            if socket is not None:
                socket.close()
            return
        if socket is None:
            self.ensure_connecting()
            return
        if node.outbound_count >= node.config.max_outbound:
            socket.close()  # slot got filled while we were handshaking
            self.ensure_connecting()
            return
        peer = node._adopt_socket(socket)
        peer.enqueue_send(
            Version(
                sender=node.addr,
                receiver=peer.remote_addr,
                start_height=node.chain.height,
            )
        )
        node._wake_handler()
        self.ensure_connecting()

    # ------------------------------------------------------------------
    # Feelers (footnote 1 of the paper)
    # ------------------------------------------------------------------
    def try_feeler(self) -> None:
        node = self.node
        if not node.running:
            return
        target = node.addrman.select(node.sim.now, new_only=True)
        if target is None or target == node.addr or node._connected_to(target):
            return
        node.addrman.attempt(target, node.sim.now)
        self.active_feelers += 1
        started = node.sim.now
        node.sim.network.connect(
            node.addr,
            target,
            handler=_FeelerHandler(),
            on_result=partial(self._feeler_result, target, started),
            timeout=node.config.connect_timeout,
        )

    def _feeler_result(
        self, target: NetAddr, started: float, socket: Optional[Socket]
    ) -> None:
        self.active_feelers = max(0, self.active_feelers - 1)
        node = self.node
        success = socket is not None
        if success:
            node.addrman.good(target, node.sim.now)
            socket.close()
        if node.config.track_connection_attempts:
            self.attempt_log.append(
                ConnectionAttempt(
                    started_at=started,
                    finished_at=node.sim.now,
                    target=target,
                    outcome="feeler-success" if success else "feeler-failed",
                )
            )


class _FeelerHandler:
    """Socket handler for feeler connections: connect, verify, drop."""

    def on_message(self, socket: Socket, message: Message) -> None:
        pass  # a feeler never processes protocol traffic

    def on_disconnect(self, socket: Socket) -> None:
        pass
