"""The round-robin message-handler engine (paper Fig. 9 / Alg. 3).

Extracted from the node so the loop — the hottest protocol code in the
simulator — lives in one place with its two pieces of state: the
"one pass already scheduled" latch and the uplink-serialization horizon.

Each pass services connections **round-robin, one message per peer**:
one receive from each ``vProcessMsg`` (dispatching into the node's
protocol handlers), then one send from each ``vSendMessage``.  Sends
serialize on the node's uplink, so a block queued behind pending replies
reaches the last connection late — the §IV-C relaying delay the paper
measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import BitcoinNode

#: Smallest gap between consecutive handler passes when work remains.
_MIN_PASS_GAP = 0.001


class HandlerLoop:
    """SocketHandler + ThreadMessageHandler for one full-tier node."""

    __slots__ = ("node", "scheduled", "uplink_free_at")

    def __init__(self, node: "BitcoinNode") -> None:
        self.node = node
        #: True while a pass sits on the event queue (wake() latch).
        self.scheduled = False
        #: When the node's uplink finishes its last queued transmission.
        self.uplink_free_at = 0.0

    def reset(self, now: float) -> None:
        """Re-arm the uplink horizon on node start."""
        self.uplink_free_at = now

    def wake(self) -> None:
        """Schedule a handler pass unless one is already pending."""
        if self.scheduled or not self.node.running:
            return
        self.scheduled = True
        self.node.sim.schedule(0.0, self.run_pass)

    def run_pass(self) -> None:
        self.scheduled = False
        node = self.node
        if not node.running:
            return
        # This is the hottest protocol loop in the simulator (one pass per
        # message burst on every node), so the per-iteration constants —
        # config values, the dispatch table, and the clock, none of which
        # change mid-pass — are hoisted to locals.
        peers = node.peers
        config = node.config
        proc_time = config.proc_times.get
        default_proc_time = config.default_proc_time
        dispatch = node._DISPATCH.get
        note_relayed = node.relay.note_relayed
        now = node.sim.clock._now
        busy = 0.0
        # --- ThreadMessageHandler: one message per peer per pass ---
        for socket, peer in list(peers.items()):
            if socket not in peers:
                continue  # dropped by an earlier handler in this pass
            if peer.process_queue:
                message = peer.process_queue.popleft()
                busy += proc_time(message.command, default_proc_time)
                handler = dispatch(message.command)
                if handler is not None:
                    handler(node, peer, message)
        # --- SocketHandler: one send per peer per pass, uplink-serialized ---
        send_epoch = now + busy
        uplink_free_at = self.uplink_free_at
        uplink_bandwidth = config.uplink_bandwidth
        for socket, peer in list(peers.items()):
            if not peer.send_queue or not socket.open:
                continue
            message = peer.send_queue.popleft()
            start = send_epoch if send_epoch > uplink_free_at else uplink_free_at
            done = start + message.wire_size / uplink_bandwidth
            uplink_free_at = done
            socket.send(message, extra_delay=done - now)
            note_relayed(message, done)
        self.uplink_free_at = uplink_free_at
        # --- reschedule if work remains ---
        more = any(
            peer.process_queue or peer.send_queue for peer in peers.values()
        )
        if more:
            self.scheduled = True
            node.sim.schedule(max(busy, _MIN_PASS_GAP), self.run_pass)
