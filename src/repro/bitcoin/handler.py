"""The round-robin message-handler engine (paper Fig. 9 / Alg. 3).

Extracted from the node so the loop — the hottest protocol code in the
simulator — lives in one place with its two pieces of state: the
"one pass already scheduled" latch and the uplink-serialization horizon.

Each pass services connections **round-robin, one message per peer**:
one receive from each ``vProcessMsg`` (dispatching into the node's
protocol handlers), then one send from each ``vSendMessage``.  Sends
serialize on the node's uplink, so a block queued behind pending replies
reaches the last connection late — the §IV-C relaying delay the paper
measures.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .node import BitcoinNode

#: Smallest gap between consecutive handler passes when work remains.
_MIN_PASS_GAP = 0.001


class HandlerLoop:
    """SocketHandler + ThreadMessageHandler for one full-tier node."""

    __slots__ = (
        "node",
        "scheduled",
        "uplink_free_at",
        "dirty_process",
        "dirty_send",
        "_clock",
        "_schedule_pass",
    )

    def __init__(self, node: "BitcoinNode") -> None:
        self.node = node
        #: True while a pass sits on the event queue (wake() latch).
        self.scheduled = False
        #: When the node's uplink finishes its last queued transmission.
        self.uplink_free_at = 0.0
        self._clock = node.sim.clock
        # Handler passes are never cancelled, so they can ride the
        # scheduler's no-cancel fast lane (no EventHandle per pass); with
        # the fast path disabled they take the regular queue.  Dispatch
        # order is identical either way — the lane shares the global
        # sequence counter.
        if node.sim.fast_path:
            self._schedule_pass = node.sim.scheduler.lane_schedule
        else:
            self._schedule_pass = self._schedule_pass_fallback
        # Peers with queued work, in enqueue order (dicts keep insertion
        # order, so iteration is deterministic).  A pass visits only
        # these instead of scanning every connection: typical passes
        # service one or two peers out of dozens, and the full scan was
        # the dominant per-event cost at paper scale.  Peers enter via
        # Peer.enqueue_send / Peer.enqueue_process and leave when a pass
        # drains their queue (or their socket is gone).
        self.dirty_process: "dict" = {}
        self.dirty_send: "dict" = {}

    def _schedule_pass_fallback(self, delay: float, fire, _payload) -> None:
        """Fast path disabled: the pass takes the regular event queue."""
        self.node.sim.scheduler.schedule(delay, fire)

    def reset(self, now: float) -> None:
        """Re-arm the uplink horizon on node start."""
        self.uplink_free_at = now
        self.dirty_process.clear()
        self.dirty_send.clear()

    def wake(self) -> None:
        """Schedule a handler pass unless one is already pending."""
        if self.scheduled or not self.node.running:
            return
        self.scheduled = True
        self._schedule_pass(0.0, self.run_pass, None)

    def run_pass(self, _lane_payload=None) -> None:  # repro-lint: hot
        self.scheduled = False
        node = self.node
        if not node.running:
            return
        # This is the hottest protocol loop in the simulator (one pass per
        # message burst on every node), so the per-iteration constants —
        # config values, the dispatch table, and the clock, none of which
        # change mid-pass — are hoisted to locals.
        peers = node.peers
        config = node.config
        now = self._clock._now
        busy = 0.0
        # --- ThreadMessageHandler: one message per peer per pass ---
        # Round-robin over the peers with pending messages, one message
        # each (Alg. 3 fairness); a peer with a still-non-empty queue is
        # re-marked for the next pass.
        dirty_process = self.dirty_process
        if dirty_process:
            proc_time = config.proc_times.get
            default_proc_time = config.default_proc_time
            dispatch = node._DISPATCH.get
            batch = list(dirty_process)
            dirty_process.clear()
            for peer in batch:
                if peer.socket not in peers:
                    continue  # dropped by an earlier handler in this pass
                queue = peer.process_queue
                if not queue:
                    continue
                message = queue.popleft()
                busy += proc_time(message.command, default_proc_time)
                handler = dispatch(message.command)
                if handler is not None:
                    handler(node, peer, message)
                if queue:
                    dirty_process[peer] = None
        # --- SocketHandler: one send per peer per pass, uplink-serialized ---
        # Snapshot taken after phase 1 so sends enqueued by the handlers
        # above go out in this same pass, as with the full scan.
        dirty_send = self.dirty_send
        uplink_free_at = self.uplink_free_at
        if dirty_send:
            send_epoch = now + busy
            uplink_bandwidth = config.uplink_bandwidth
            note_relayed = node.relay.note_relayed
            deliver = node.sim.network._deliver
            batch = list(dirty_send)
            dirty_send.clear()
            for peer in batch:
                queue = peer.send_queue
                socket = peer.socket
                if not queue or not socket.open:
                    continue
                message = queue.popleft()
                # Socket.send inlined: its open-check already ran above,
                # and the wire size feeding the uplink delay doubles as
                # the byte accounting (one property read, not two).
                size = message.wire_size
                start = send_epoch if send_epoch > uplink_free_at else uplink_free_at
                done = start + size / uplink_bandwidth
                uplink_free_at = done
                deliver(socket, message, done - now)
                socket.bytes_sent += size
                socket.messages_sent += 1
                note_relayed(message, done)
                if queue:
                    dirty_send[peer] = None
        self.uplink_free_at = uplink_free_at
        # --- reschedule if work remains ---
        if dirty_process or dirty_send:
            self.scheduled = True
            self._schedule_pass(
                busy if busy > _MIN_PASS_GAP else _MIN_PASS_GAP,
                self.run_pass,
                None,
            )
