"""``unreachable-relay``: Franzoni & Daza's unreachable-node tx relay.

Their observation: the ~90% of the network that never accepts inbound
connections still *hears* every transaction, and letting it re-announce
what it hears adds propagation paths at zero infrastructure cost.  Here
a deterministic ``assist_fraction`` of the light cloud runs an "assist"
profile: the endpoint listens, completes the version handshake, and
relays transactions between its sessions (inv → getdata → tx), while
remaining a light-tier object — no addrman, no chain, no RNG draws.

Modeling deviation, noted once: real unreachable assists re-announce
over their existing *outbound* connections (they cannot accept).  The
light tier has no outbound machinery, so assists accept inbound instead
— full nodes dial the gossiped unreachable addresses anyway (the §IV-B
"no notion of reachability" selection), and an accepted dial puts the
assist exactly where a real assist's outbound link would be: an
established session between one full node and one unreachable host.
The propagation graph gains the same extra edges; only the SYN
direction differs.

Assist selection hashes the address (SplitMix64, no RNG draws), so
membership is a pure function of the address — stable across lazy
cloud materialization, churn re-targeting, and snapshot/restore.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Optional

from ..addrman import _mix64
from ..config import ADDRMAN_HORIZON_DAYS
from ..light import LightNodeProfile
from .base import LightTierPolicy
from .registry import PolicyVariant, register
from .variants import StandardAddrPolicy, StandardConnPolicy, StandardRelayPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ...simnet.addresses import NetAddr

__all__ = ["ASSIST_LIGHT_PROFILE", "UnreachableRelayLightPolicy"]

#: The assist profile, shared by every assist endpoint (frozen, one
#: instance — pickling dedupes it across the whole cloud).
ASSIST_LIGHT_PROFILE = LightNodeProfile(listen=True, relay_txs=True)

#: Salt keeping assist membership independent of the /16-shard and
#: addrman bucket hashes that also mix the raw IP.
_ASSIST_SALT = 0x9E3779B97F4A7C15


class UnreachableRelayLightPolicy(LightTierPolicy):
    """Mark a deterministic address slice of the cloud as relay assists."""

    def __init__(self, knobs: Dict[str, Any]) -> None:
        self.assist_fraction: float = knobs["assist_fraction"]
        #: ``_mix64`` spreads uniformly over 64 bits, so comparing the
        #: mixed address against ``fraction * 2**64`` selects the slice.
        self._threshold: int = int(self.assist_fraction * 2**64)

    def profile_for(self, addr: "NetAddr") -> Optional[LightNodeProfile]:
        if _mix64(addr.ip ^ _ASSIST_SALT) < self._threshold:
            return ASSIST_LIGHT_PROFILE
        return None


register(
    PolicyVariant(
        name="unreachable-relay",
        description=(
            "Franzoni & Daza: a deterministic fraction of unreachable "
            "(light-tier) endpoints assists transaction propagation"
        ),
        defaults={
            "addr_from_tried_only": False,
            "tried_horizon_days": ADDRMAN_HORIZON_DAYS,
            "prioritize_block_relay": False,
            "assist_fraction": 0.25,
        },
        addr_factory=StandardAddrPolicy,
        relay_factory=StandardRelayPolicy,
        conn_factory=StandardConnPolicy,
        light_factory=UnreachableRelayLightPolicy,
    )
)
