"""``repro.bitcoin.policy`` — the pluggable protocol-policy registry.

See :mod:`.base` for the decision interfaces, :mod:`.registry` for
variant registration/resolution, and :mod:`.variants`,
:mod:`.unreachable_relay`, :mod:`.churn_resilient` for the builtin
variants (§V family plus the two PAPERS.md related-work variants).
"""

from .base import AddrPolicy, ConnPolicy, LightTierPolicy, RelayPolicy
from .registry import (
    PolicyBundle,
    PolicyVariant,
    UNIVERSAL_KNOBS,
    build_policies,
    ensure_builtins,
    get_variant,
    register,
    resolve,
    variant_names,
)

__all__ = [
    "AddrPolicy",
    "ConnPolicy",
    "LightTierPolicy",
    "PolicyBundle",
    "PolicyVariant",
    "RelayPolicy",
    "UNIVERSAL_KNOBS",
    "build_policies",
    "ensure_builtins",
    "get_variant",
    "register",
    "resolve",
    "variant_names",
]
