"""The narrow decision interfaces behind the policy registry.

Every place the node stack used to branch on a ``PolicyConfig`` boolean
is now a call through one of these interfaces:

* :class:`AddrPolicy` — how ADDR responses are sourced and capped, and
  how long the tried table retains unseen addresses (the §V addressing
  and tried-table refinements live here);
* :class:`RelayPolicy` — in what order and with what queue priority
  blocks and transactions are relayed (§V block-relay prioritization);
* :class:`ConnPolicy` — how outbound-connection targets are selected
  under churn;
* :class:`LightTierPolicy` — which light-cloud endpoints deviate from
  the default unreachable profile (the hook the ``unreachable-relay``
  variant uses to turn a fraction of the cloud into relay assists).

Determinism contract (pinned by the digest-equivalence tests):

* a policy may only draw randomness through objects handed to it
  (``addrman``'s RNG, the node's stream) — never through module-level
  RNGs or wall clocks;
* the **baseline** implementations must make *exactly* the RNG draws,
  in exactly the order, of the pre-registry boolean-flag code paths, so
  the ``baseline`` variant replays bit-identically against historical
  runs;
* policy objects are stateless after construction (plain floats/bools
  from the resolved knob dict), which keeps them trivially picklable —
  they ride inside node snapshots.

Implementations take one positional argument: the *effective knob
dict* (variant defaults overlaid with the config's params), so the
registry can build any variant uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ...simnet.addresses import NetAddr, TimestampedAddr
    from ..addrman import AddrMan
    from ..light import LightNodeProfile
    from ..node import BitcoinNode
    from ..peer import Peer

__all__ = ["AddrPolicy", "ConnPolicy", "LightTierPolicy", "RelayPolicy"]


class AddrPolicy:
    """ADDR sourcing, response caps, and the tried-table horizon."""

    #: Eviction horizon of the tried table, in days (§V shortens 30→17).
    horizon_days: float

    def getaddr_records(
        self, addrman: "AddrMan", now: float
    ) -> "List[TimestampedAddr]":
        """Sample the addrman for a GETADDR response."""
        raise NotImplementedError

    def crawl_gossip(
        self,
        reachable: "List[NetAddr]",
        unreachable: "List[NetAddr]",
    ) -> "List[NetAddr]":
        """Compose a gossiped table at population scale.

        The longitudinal model materializes crawler-visible tables from
        a reachable and an unreachable sample; this hook decides what
        the population actually gossips.  The baseline concatenates
        both (addresses spread with no notion of reachability — the
        §IV-B weakness); tried-only gossip keeps just the reachable
        part.
        """
        raise NotImplementedError


class RelayPolicy:
    """Block/tx relay ordering and queue priority."""

    #: Jump block announcements ahead of queued replies in vSendMessage
    #: (the §V head-of-line fix).
    block_to_front: bool

    def block_order(self, peers: "Sequence[Peer]") -> "List[Peer]":
        """Order peers for one block-relay pass."""
        raise NotImplementedError

    def tx_targets(self, node: "BitcoinNode") -> "Iterable[Peer]":
        """Peers considered for a transaction inv (before exclusions)."""
        raise NotImplementedError


class ConnPolicy:
    """Outbound-connection target selection."""

    def select_target(self, node: "BitcoinNode", now: float) -> "Optional[NetAddr]":
        """Pick the next outbound candidate (or ``None`` to back off)."""
        raise NotImplementedError


class LightTierPolicy:
    """Per-endpoint profile override for the light cloud.

    ``profile_for`` must be a pure function of the address (no RNG
    draws, no clock reads): the cloud materializes and re-materializes
    endpoints lazily under churn, and the same address must get the
    same profile every time regardless of visit order.
    """

    def profile_for(self, addr: "NetAddr") -> "Optional[LightNodeProfile]":
        """Profile for ``addr``, or ``None`` for the cloud default."""
        raise NotImplementedError
