"""The §V family: ``baseline`` (Core v0.20.1) and ``improved``.

These are the behaviors extracted from the pre-registry boolean flags.
The determinism contract is strict here: :class:`StandardAddrPolicy`,
:class:`StandardRelayPolicy`, and :class:`StandardConnPolicy` at
baseline knob values must make *exactly* the calls (and therefore RNG
draws) the inlined code made, so the ``baseline`` variant replays
bit-identically against the pre-refactor path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Sequence

from ..config import ADDRMAN_HORIZON_DAYS
from ..relay import relay_order
from .base import AddrPolicy, ConnPolicy, RelayPolicy
from .registry import PolicyVariant, register

if TYPE_CHECKING:  # pragma: no cover - import cycle guards
    from ...simnet.addresses import NetAddr, TimestampedAddr
    from ..addrman import AddrMan
    from ..node import BitcoinNode
    from ..peer import Peer

__all__ = [
    "StandardAddrPolicy",
    "StandardConnPolicy",
    "StandardRelayPolicy",
]


class StandardAddrPolicy(AddrPolicy):
    """Core's ADDR sourcing, with the §V tried-only/horizon knobs."""

    def __init__(self, knobs: Dict[str, Any]) -> None:
        self.tried_only: bool = knobs["addr_from_tried_only"]
        self.horizon_days: float = knobs["tried_horizon_days"]

    def getaddr_records(
        self, addrman: "AddrMan", now: float
    ) -> "List[TimestampedAddr]":
        return addrman.get_addr(now, tried_only=self.tried_only)

    def crawl_gossip(
        self,
        reachable: "List[NetAddr]",
        unreachable: "List[NetAddr]",
    ) -> "List[NetAddr]":
        if self.tried_only:
            return reachable
        return reachable + unreachable


class StandardRelayPolicy(RelayPolicy):
    """Arrival-order relay; §V flips outbound-first + front-of-queue."""

    def __init__(self, knobs: Dict[str, Any]) -> None:
        prioritize: bool = knobs["prioritize_block_relay"]
        self.block_to_front: bool = prioritize
        self.outbound_first: bool = prioritize

    def block_order(self, peers: "Sequence[Peer]") -> "List[Peer]":
        return relay_order(peers, outbound_first=self.outbound_first)

    def tx_targets(self, node: "BitcoinNode") -> "Iterable[Peer]":
        return node.established_peers


class StandardConnPolicy(ConnPolicy):
    """Core's fair new/tried coin flip, with the bias as a knob."""

    def __init__(self, knobs: Dict[str, Any]) -> None:
        self.tried_bias: float = knobs.get("tried_bias", 0.5)

    def select_target(
        self, node: "BitcoinNode", now: float
    ) -> "Optional[NetAddr]":
        return node.addrman.select(now, tried_bias=self.tried_bias)


register(
    PolicyVariant(
        name="baseline",
        description=(
            "Bitcoin Core v0.20.1 as the paper measured it: ADDR answered "
            "from new+tried, 30-day tried horizon, arrival-order relay"
        ),
        defaults={
            "addr_from_tried_only": False,
            "tried_horizon_days": ADDRMAN_HORIZON_DAYS,
            "prioritize_block_relay": False,
        },
        addr_factory=StandardAddrPolicy,
        relay_factory=StandardRelayPolicy,
        conn_factory=StandardConnPolicy,
    )
)

register(
    PolicyVariant(
        name="improved",
        description=(
            "All three §V refinements: tried-only ADDR, 17-day tried "
            "horizon, prioritized block relay"
        ),
        defaults={
            "addr_from_tried_only": True,
            "tried_horizon_days": 17.0,
            "prioritize_block_relay": True,
        },
        addr_factory=StandardAddrPolicy,
        relay_factory=StandardRelayPolicy,
        conn_factory=StandardConnPolicy,
    )
)
