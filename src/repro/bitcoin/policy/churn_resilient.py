"""``churn-resilient``: Younis et al.'s block-propagation hardening.

Their diagnosis matches the paper's §IV-B/§IV-C: under heavy peer
churn, block propagation suffers because outbound slots are spent on
dead addresses and block announcements queue behind bulk traffic.
Their hardening, mapped onto our knobs:

* **prioritized block relay** (outbound-first, front-of-queue) — the
  same mechanism as §V's refinement, which is why the variant reuses
  :class:`~.variants.StandardRelayPolicy`;
* **selection biased toward proven peers** — outbound targets prefer
  the tried table (``tried_bias`` = 0.75 instead of Core's fair coin),
  so under churn a node re-anchors to addresses that have actually
  accepted a connection before, keeping the block-relay backbone up.

ADDR serving and the tried horizon stay at baseline: the point of the
variant is to isolate what connection/relay hardening alone recovers,
without the §V addressing changes.
"""

from __future__ import annotations

from ..config import ADDRMAN_HORIZON_DAYS
from .registry import PolicyVariant, register
from .variants import StandardAddrPolicy, StandardConnPolicy, StandardRelayPolicy

register(
    PolicyVariant(
        name="churn-resilient",
        description=(
            "Younis et al.: prioritized block relay plus tried-biased "
            "peer selection, hardening propagation under churn"
        ),
        defaults={
            "addr_from_tried_only": False,
            "tried_horizon_days": ADDRMAN_HORIZON_DAYS,
            "prioritize_block_relay": True,
            "tried_bias": 0.75,
        },
        addr_factory=StandardAddrPolicy,
        relay_factory=StandardRelayPolicy,
        conn_factory=StandardConnPolicy,
    )
)
