"""The variant registry: named, parameterized protocol-policy bundles.

A :class:`PolicyVariant` ties a name (``"baseline"``, ``"improved"``,
``"unreachable-relay"``, ...) to a *knob schema* (``defaults``) and the
policy classes that interpret the knobs.  ``PolicyConfig`` stores only
``(variant, params)``; :func:`resolve` canonicalizes that pair so every
spelling of the same behavior — legacy booleans, explicit variant
names, redundant default-valued params — lands on one canonical form,
and therefore on one run-store key.

Canonical form:

* unknown variants and unknown/ill-typed params are rejected eagerly
  (config construction time, not node start time);
* params equal to the variant's defaults are dropped;
* within the §V family, the canonical *anchor* is chosen by effective
  knobs: all three refinements at their improved values → ``improved``
  with empty params, anything else → ``baseline`` plus the knobs that
  differ from baseline.  So ``PolicyConfig(addr_from_tried_only=True,
  tried_horizon_days=17.0, prioritize_block_relay=True)`` and
  ``PolicyConfig(variant="improved")`` are *equal objects* with equal
  store keys.

Builtin variants self-register on first use (:func:`ensure_builtins`);
experiment code can register additional variants at import time as long
as registration happens before any config referencing them is built.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from .base import AddrPolicy, ConnPolicy, LightTierPolicy, RelayPolicy

__all__ = [
    "PolicyBundle",
    "PolicyVariant",
    "UNIVERSAL_KNOBS",
    "build_policies",
    "ensure_builtins",
    "get_variant",
    "register",
    "resolve",
    "variant_names",
]

#: Knobs every variant must define defaults for — the §V surface that
#: legacy boolean configs spell directly.
UNIVERSAL_KNOBS = (
    "addr_from_tried_only",
    "tried_horizon_days",
    "prioritize_block_relay",
)


@dataclass(frozen=True)
class PolicyVariant:
    """One registered protocol variant.

    The factories are classes (or callables) taking the effective knob
    dict; they are registry state, never pickled — only the *built*
    policy objects ride inside snapshots.
    """

    name: str
    description: str
    #: Full knob schema with default values.  Must cover
    #: :data:`UNIVERSAL_KNOBS`; anything extra is variant-specific.
    defaults: Dict[str, Any]
    addr_factory: Callable[[Dict[str, Any]], AddrPolicy]
    relay_factory: Callable[[Dict[str, Any]], RelayPolicy]
    conn_factory: Callable[[Dict[str, Any]], ConnPolicy]
    light_factory: Optional[Callable[[Dict[str, Any]], LightTierPolicy]] = None


@dataclass(frozen=True)
class PolicyBundle:
    """The built policy objects for one node population."""

    variant: str
    knobs: Dict[str, Any] = field(repr=False)
    addr: AddrPolicy = field(repr=False)
    relay: RelayPolicy = field(repr=False)
    conn: ConnPolicy = field(repr=False)
    light: Optional[LightTierPolicy] = field(repr=False, default=None)


_REGISTRY: Dict[str, PolicyVariant] = {}
_builtins_loaded = False


def register(variant: PolicyVariant) -> PolicyVariant:
    """Add ``variant`` to the registry (its name must be unused)."""
    missing = [k for k in UNIVERSAL_KNOBS if k not in variant.defaults]
    if missing:
        raise ValueError(
            f"variant {variant.name!r} is missing defaults for "
            f"universal knobs {missing}"
        )
    if variant.name in _REGISTRY:
        raise ValueError(f"policy variant {variant.name!r} already registered")
    _REGISTRY[variant.name] = variant
    return variant


def ensure_builtins() -> None:
    """Import the builtin variant modules (idempotent)."""
    global _builtins_loaded
    if _builtins_loaded:
        return
    _builtins_loaded = True
    from . import churn_resilient, unreachable_relay, variants  # noqa: F401


def get_variant(name: str) -> PolicyVariant:
    """Look up a registered variant, with a helpful error on miss."""
    ensure_builtins()
    variant = _REGISTRY.get(name)
    if variant is None:
        known = ", ".join(sorted(_REGISTRY))
        raise ValueError(f"unknown policy variant {name!r} (known: {known})")
    return variant


def variant_names() -> List[str]:
    """Registered variant names, sorted."""
    ensure_builtins()
    return sorted(_REGISTRY)


def _normalize(variant: str, knob: str, value: Any, default: Any) -> Any:
    """Type-check one knob against its default; stabilize numerics.

    Floats are coerced (``17`` and ``17.0`` must produce identical
    canonical JSON, hence identical store keys); bools are strict
    (a truthy int silently meaning "enabled" would fork cache keys).
    """
    if isinstance(default, bool):
        if not isinstance(value, bool):
            raise ValueError(
                f"policy knob {knob!r} of variant {variant!r} expects a "
                f"bool, got {value!r}"
            )
        return value
    if isinstance(default, float):
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ValueError(
                f"policy knob {knob!r} of variant {variant!r} expects a "
                f"number, got {value!r}"
            )
        return float(value)
    return value


def resolve(
    name: str, params: Dict[str, Any]
) -> Tuple[str, Dict[str, Any], Dict[str, Any]]:
    """Canonicalize ``(variant, params)``.

    Returns ``(canonical_variant, canonical_params, effective_knobs)``
    — see the module docstring for the anchor rule.  Raises
    :class:`ValueError` on unknown variants, unknown knobs, or values
    of the wrong type.
    """
    variant = get_variant(name)
    unknown = sorted(set(params) - set(variant.defaults))
    if unknown:
        known = ", ".join(sorted(variant.defaults))
        raise ValueError(
            f"unknown policy params {unknown} for variant "
            f"{variant.name!r} (known: {known})"
        )
    effective = dict(variant.defaults)
    for knob, value in params.items():
        effective[knob] = _normalize(
            variant.name, knob, value, variant.defaults[knob]
        )

    if variant.name in ("baseline", "improved"):
        improved = get_variant("improved").defaults
        if effective == improved:
            return "improved", {}, effective
        baseline = get_variant("baseline").defaults
        canonical = {
            knob: value
            for knob, value in effective.items()
            if value != baseline[knob]
        }
        return "baseline", canonical, effective

    canonical = {
        knob: value
        for knob, value in effective.items()
        if value != variant.defaults[knob]
    }
    return variant.name, canonical, effective


def build_policies(config: "Any") -> PolicyBundle:
    """Build the policy objects a :class:`PolicyConfig` references."""
    variant = get_variant(config.variant)
    knobs = dict(variant.defaults)
    knobs.update(config.params)
    return PolicyBundle(
        variant=variant.name,
        knobs=knobs,
        addr=variant.addr_factory(knobs),
        relay=variant.relay_factory(knobs),
        conn=variant.conn_factory(knobs),
        light=(
            variant.light_factory(knobs)
            if variant.light_factory is not None
            else None
        ),
    )
