"""The light node tier: O(1)-memory peers for the statistical cloud.

The paper never observes the unreachable population from the inside —
it knows these hosts only by how they answer unsolicited packets (the
VER probe's FIN/RST/silence, §III-C) and by the addresses they gossip.
Wang & Pustogarov showed that a version/addr/ping surface is all an
unreachable peer ever presents; Grundmann et al. estimate the population
purely from such announcements.  A :class:`LightNode` is exactly that
surface and nothing more:

* **version/verack** — completes the handshake when it listens;
* **ping → pong**, **getaddr → addr** from a *shared* immutable table;
* a :class:`~repro.simnet.transport.ProbeBehavior` governing how the
  transport answers connects/probes while the node does not listen.

Memory discipline (the point of the tier):

* ``__slots__`` everywhere — no per-instance ``__dict__``;
* one frozen :class:`LightNodeProfile` shared by the whole cloud;
* the ADDR table is a shared tuple, never copied per node;
* per-connection state is a lazily created dict that stays ``None`` for
  cloud nodes (they never accept);
* replies are sent synchronously on the receiving socket — no handler
  loop, no send queues, no timers, and **zero RNG draws**, so adding a
  million light nodes to a world changes no full-tier event or draw.

The result is tens of full nodes' worth of state per *thousand* light
nodes, which is what lets protocol scenarios run at paper scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..simnet.addresses import NetAddr, TimestampedAddr
from ..simnet.simulator import Simulator
from ..simnet.transport import ProbeBehavior, Socket
from .behavior import FIDELITY_LIGHT, NodeBehavior
from .messages import (
    PONG0,
    VERACK,
    Addr,
    GetData,
    Inv,
    InvItem,
    InvType,
    Message,
    Pong,
    TxMsg,
    Version,
)

__all__ = ["DEFAULT_LIGHT_PROFILE", "LightNode", "LightNodeProfile"]


#: Bounded memo of timestamped GETADDR payloads, keyed by the shared
#: table and the sim time of the answer.  A cloud's nodes share one
#: ``addr_table`` tuple, so when several answer GETADDR in the same tick
#: (batched crawler traffic) they serve the *same* records tuple instead
#: of re-timestamping up to 999 records each.  Pure function of its key
#: — sharing is invisible to the protocol and to checkpoint digests.
_PAYLOAD_MEMO_MAX = 256
_payload_memo: Dict[Tuple[Tuple[NetAddr, ...], float], Tuple[TimestampedAddr, ...]] = {}


def shared_addr_records(
    addr_table: Tuple[NetAddr, ...], now: float
) -> Tuple[TimestampedAddr, ...]:
    """The table part of a GETADDR answer, interned per (table, time)."""
    key = (addr_table, now)
    cached = _payload_memo.get(key)
    if cached is not None:
        return cached
    if len(_payload_memo) >= _PAYLOAD_MEMO_MAX:
        # FIFO eviction, same policy as NetAddr.parse's intern cache:
        # payload reuse is a burst phenomenon (one crawler pass), so
        # insertion age approximates LRU without per-hit bookkeeping.
        for stale in list(_payload_memo)[: _PAYLOAD_MEMO_MAX // 2]:
            del _payload_memo[stale]
    records = tuple(TimestampedAddr(a, now) for a in addr_table[:999])  # repro-lint: disable=HOT001 (memo-miss branch: built once per (table, tick), then shared by every answering node)
    _payload_memo[key] = records
    return records


@dataclass(frozen=True, slots=True)
class LightNodeProfile:
    """Behavioral knobs shared (by reference) across a whole light tier.

    Frozen so one instance can safely back thousands of nodes; anything
    per-node lives in the node's slots.
    """

    #: Accept inbound connections (light *reachable* stub).  The
    #: unreachable cloud leaves this off and is reached only through its
    #: probe behavior.
    listen: bool = False
    max_inbound: int = 16
    #: Answer repeated GETADDRs (Core ignores repeats; so do we).
    serve_repeated_getaddr: bool = False
    #: Advertise own address when answering GETADDR.
    self_advertise: bool = True
    #: Relay transactions between sessions (the ``unreachable-relay``
    #: assist profile): inv → getdata → tx, from a small bounded cache.
    relay_txs: bool = False


#: The shared default profile (module-level so pickling dedupes it).
DEFAULT_LIGHT_PROFILE = LightNodeProfile()

#: Handshake session flags (bit field kept as a small int per socket).
_GOT_VERSION = 1
_SERVED_GETADDR = 2


class LightNode(NodeBehavior):
    """A thin version/verack/ping/addr/getaddr peer."""

    fidelity = FIDELITY_LIGHT

    __slots__ = (
        "sim",
        "addr",
        "profile",
        "behavior",
        "running",
        "addr_table",
        "_sessions",
        "_relay",
    )

    #: Bound on the per-assist relay cache (txid -> size).  An assist
    #: only needs to bridge recent announcements between its sessions.
    RELAY_CACHE_MAX = 512

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        behavior: ProbeBehavior = ProbeBehavior.FIN,
        profile: LightNodeProfile = DEFAULT_LIGHT_PROFILE,
        addr_table: Tuple[NetAddr, ...] = (),
    ) -> None:
        self.sim = sim
        self.addr = addr
        self.profile = profile
        #: How the transport answers unsolicited packets while we do not
        #: listen (the NAT model sets and updates this).
        self.behavior = behavior
        self.running = False
        #: Shared, immutable gossip table served to GETADDR.
        self.addr_table = addr_table
        #: socket -> handshake flags; ``None`` until the first inbound
        #: connection so cloud nodes never pay for the dict.
        self._sessions: Optional[Dict[Socket, int]] = None
        #: txid -> size of relayed transactions; ``None`` until the
        #: first relayed tx so non-assist nodes never pay for the dict.
        self._relay: Optional[Dict[int, int]] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def probe_behavior(self) -> ProbeBehavior:
        """What the endpoint registry reports to connects and probes."""
        return self.behavior

    def start(self) -> None:
        if self.running:
            return
        self.running = True
        if self.profile.listen:
            self.sim.network.listen(self.addr, self)
        else:
            self.sim.network.register_endpoint(self.addr, self)

    def stop(self) -> None:
        if not self.running:
            return
        self.running = False
        # A listen-profile node may currently be in its churned-offline
        # state (endpoint registered, not listening) — ask the network
        # which teardown applies rather than trusting the profile.
        if self.sim.network.is_listening(self.addr):
            self.sim.network.disconnect_host(self.addr)
            self._sessions = None
        else:
            self.sim.network.unregister_endpoint(self.addr)

    def set_behavior(self, behavior: ProbeBehavior) -> None:
        """Update the NAT answer (churn: responsive host goes silent)."""
        self.behavior = behavior

    def apply_behavior(self, behavior: ProbeBehavior) -> None:
        """Churn update that also syncs listen state (assist nodes).

        The transport resolves connects through the listener table
        *before* probe behaviors, so a listening endpoint churned to
        RST/SILENT would keep accepting if we only flipped
        ``behavior``.  For listen-profile nodes a churn event therefore
        transitions the transport registration too: FIN (host up) →
        listening; anything else → closed sockets, probe-behavior only.
        Plain cloud nodes fall back to :meth:`set_behavior`.
        """
        self.behavior = behavior
        if not self.profile.listen or not self.running:
            return
        network = self.sim.network
        if behavior is ProbeBehavior.FIN:
            if not network.is_listening(self.addr):
                network.unregister_endpoint(self.addr)
                network.listen(self.addr, self)
        elif network.is_listening(self.addr):
            network.disconnect_host(self.addr)
            self._sessions = None
            network.register_endpoint(self.addr, self)

    # ------------------------------------------------------------------
    # Transport contract
    # ------------------------------------------------------------------
    def on_inbound_connection(self, socket: Socket) -> bool:
        if not self.running or not self.profile.listen:
            return False
        sessions = self._sessions
        if sessions is None:
            sessions = self._sessions = {}
        if len(sessions) >= self.profile.max_inbound:
            return False
        sessions[socket] = 0
        return True

    # repro-lint: hot
    def on_message(self, socket: Socket, message: Message) -> None:
        sessions = self._sessions
        if sessions is None or socket not in sessions:
            return
        command = message.command
        if command == "version":
            if not sessions[socket] & _GOT_VERSION:
                sessions[socket] |= _GOT_VERSION
                socket.send(
                    Version(
                        sender=self.addr,
                        receiver=socket.remote_addr,
                        start_height=0,
                    )
                )
                socket.send(VERACK)
        elif command == "ping":
            nonce = message.nonce
            socket.send(PONG0 if nonce == 0 else Pong(nonce=nonce))
        elif command == "getaddr":
            served = sessions[socket] & _SERVED_GETADDR
            if served and not self.profile.serve_repeated_getaddr:
                return
            sessions[socket] |= _SERVED_GETADDR
            now = self.sim.now
            records = shared_addr_records(self.addr_table, now)
            if self.profile.self_advertise:
                records = (TimestampedAddr(self.addr, now),) + records
            if records:
                socket.send(Addr(addresses=records))
        elif self.profile.relay_txs:
            if command == "inv":
                self._relay_request(socket, message)
            elif command == "tx":
                self._relay_accept(socket, message)
            elif command == "getdata":
                self._relay_serve(socket, message)
        # verack / addr / anything else: accepted silently.  A default
        # light node keeps no inventory and relays nothing; the assist
        # profile (unreachable-relay) bridges tx announcements above.

    # ------------------------------------------------------------------
    # Assist relay (profile.relay_txs) — transitively hot via on_message
    # ------------------------------------------------------------------
    def _relay_request(self, socket: Socket, message: Inv) -> None:
        """Request announced transactions we have not bridged yet."""
        relay = self._relay
        wanted = None
        for item in message.items:
            if item.type is not InvType.TX:
                continue  # assists bridge transactions only
            if relay is not None and item.object_id in relay:
                continue
            if wanted is None:
                wanted = []  # repro-lint: disable=HOT001 (assist-only branch: one short list per inv carrying unseen txids)
            wanted.append(item)
        if wanted:
            socket.send(GetData(items=tuple(wanted)))  # repro-lint: disable=HOT001 (assist-only branch: one request per unseen announcement)

    def _relay_accept(self, socket: Socket, message: TxMsg) -> None:
        """Record a received tx and announce it to the other sessions."""
        relay = self._relay
        if relay is None:
            relay = self._relay = {}  # repro-lint: disable=HOT001 (first relayed tx only; stays None on non-assist nodes)
        txid = message.txid
        if txid in relay:
            return  # duplicate delivery; already announced
        if len(relay) >= self.RELAY_CACHE_MAX:
            # Same FIFO half-eviction as the payload memo: bridging is
            # a recency phenomenon, insertion age approximates LRU.
            for stale in list(relay)[: self.RELAY_CACHE_MAX // 2]:  # repro-lint: disable=HOT001 (cache-full branch: one sweep per RELAY_CACHE_MAX/2 relayed txs)
                del relay[stale]
        relay[txid] = message.size
        sessions = self._sessions
        if sessions is None or len(sessions) < 2:
            return
        announcement = Inv(items=(InvItem(InvType.TX, txid),))  # repro-lint: disable=HOT001 (assist-only branch: one shared announcement per bridged tx)
        for peer_socket, flags in sessions.items():
            if peer_socket is not socket and flags & _GOT_VERSION:
                peer_socket.send(announcement)

    def _relay_serve(self, socket: Socket, message: GetData) -> None:
        """Serve bridged transactions back out of the relay cache."""
        relay = self._relay
        if relay is None:
            return
        for item in message.items:
            if item.type is InvType.TX:
                size = relay.get(item.object_id)
                if size is not None:
                    socket.send(TxMsg(txid=item.object_id, size=size))  # repro-lint: disable=HOT001 (assist-only branch: one reply per requested tx)

    def on_disconnect(self, socket: Socket) -> None:
        sessions = self._sessions
        if sessions is not None:
            sessions.pop(socket, None)

    def __repr__(self) -> str:
        mode = "listening" if self.profile.listen else self.behavior.value
        return f"LightNode({self.addr}, {mode})"
