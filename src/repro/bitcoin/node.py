"""The simulated Bitcoin node (full tier).

This is a Python rendering of the Bitcoin Core v0.20.1 architecture the
paper reverse-engineered (§IV-B, §IV-C), composed from three extracted
components plus the protocol-handler core that stays here:

* :class:`~repro.bitcoin.connection.ConnectionManager` —
  ThreadOpenConnections (one outbound attempt at a time, targets drawn
  from addrman's new/tried tables with *no reachability information*)
  and the ~2-minute feeler probes, with the Fig. 6/7 attempt log.
* :class:`~repro.bitcoin.handler.HandlerLoop` — SocketHandler /
  ThreadMessageHandler (paper Fig. 9, Alg. 3): round-robin passes, one
  message per peer, sends serialized on the node's uplink (the §IV-C
  relaying delay).
* :class:`~repro.bitcoin.relay_engine.RelayEngine` — BIP152 compact
  blocks with high-bandwidth peers, INV/GETDATA otherwise, Poisson inv
  trickle, and the §V relay-priority policies.

The node itself keeps identity (addr/config/RNG), the data planes
(addrman, chain, mempool, peers), the per-message protocol handlers,
and the measurement surface (tip history, relay tracker, attempt log
view).  The :class:`~repro.bitcoin.light.LightNode` tier implements the
same :class:`~repro.bitcoin.behavior.NodeBehavior` contract in O(1)
memory for the unreachable cloud.

The decomposition is draw-for-draw and event-for-event identical to the
monolithic node it replaced: every RNG call still comes from the same
``("node", addr)`` stream in the same order, and every ``schedule()``
call happens at the same point in the run, so same-seed figures are
bit-identical across the refactor.
"""

from __future__ import annotations

import bisect
from operator import itemgetter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..simnet.addresses import NetAddr, TimestampedAddr
from ..simnet.rand import derive_seed
from ..simnet.simulator import Simulator
from ..simnet.transport import Socket
from . import config as cfg
from .addrman import AddrMan
from .behavior import FIDELITY_FULL, NodeBehavior
from .blockchain import Block, Blockchain
from .config import NodeConfig
from .connection import ConnectionAttempt, ConnectionManager
from .handler import HandlerLoop
from .mempool import Mempool, Transaction
from .messages import (
    GETADDR,
    PONG0,
    VERACK,
    Addr,
    BlockMsg,
    BlockTxn,
    CmpctBlock,
    GetAddr,
    GetBlocks,
    GetBlockTxn,
    GetData,
    Inv,
    InvItem,
    InvType,
    Message,
    Ping,
    Pong,
    SendCmpct,
    TxMsg,
    Verack,
    Version,
)
from .peer import Peer
from .policy.registry import build_policies
from .relay import RelayTracker
from .relay_engine import RelayEngine

__all__ = ["BitcoinNode", "ConnectionAttempt"]

#: C-level accessor for TimestampedAddr.addr (field 0 of the namedtuple);
#: feeds set.update without a Python-level lambda per record.
_record_addr = itemgetter(0)


class BitcoinNode(NodeBehavior):
    """A Bitcoin peer: reachable (listening) or unreachable (NAT'd)."""

    fidelity = FIDELITY_FULL

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        config: Optional[NodeConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.addr = addr
        self.config = config if config is not None else NodeConfig()
        self.config.validate()
        self.name = name if name is not None else f"node-{addr}"
        #: Hot-path alias for ``sim.clock`` (message handlers read the
        #: time once per delivered message).
        self._clock = sim.clock
        self._rng = sim.random.stream("node", str(addr))
        #: Built policy objects for the configured variant (stateless,
        #: picklable — they ride inside snapshots with the node).
        self.policy = build_policies(self.config.policies)
        self.addrman = AddrMan(
            rng=self._rng,
            new_buckets=self.config.addrman_new_buckets,
            tried_buckets=self.config.addrman_tried_buckets,
            bucket_size=self.config.addrman_bucket_size,
            horizon_days=self.policy.addr.horizon_days,
            key=derive_seed(sim.seed, "addrman", str(addr)),
        )
        self.chain = Blockchain()
        self.mempool = Mempool()
        self.peers: Dict[Socket, Peer] = {}
        self.running = False
        self.started_at: Optional[float] = None
        # Composed behavior layers.
        self.connections = ConnectionManager(self)
        self.handlers = HandlerLoop(self)
        self.relay = RelayEngine(self)
        self._getaddr_task = None
        self._ping_task = None
        # Cached list of established peers, in peers-dict (connection)
        # order; rebuilt lazily after any membership or handshake-state
        # change.  ADDR forwarding consults it per gossiped record, so
        # recomputing it by scanning every connection was an O(peers)
        # cost on every ADDR message at paper scale.
        self._established_cache: Optional[List[Peer]] = None
        # Compact blocks awaiting missing transactions: block_id -> Block.
        self._pending_cmpct: Dict[int, Block] = {}
        # Measurement hooks.
        self.relay_tracker: Optional[RelayTracker] = (
            RelayTracker() if self.config.track_relay_times else None
        )
        self.first_relay_at: Optional[float] = None
        #: (time, height) each time the tip advanced — lets monitors ask
        #: "what height did this node report when last polled at t".
        self.tip_history: List[Tuple[float, int]] = [(0.0, 0)]
        #: Invoked with (self, block) whenever our tip advances.
        self.on_tip_advanced: Optional[Callable[["BitcoinNode", Block], None]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def attempt_log(self) -> List[ConnectionAttempt]:
        """The connection manager's Fig. 7 attempt log."""
        return self.connections.attempt_log

    @property
    def outbound_peers(self) -> List[Peer]:
        return [peer for peer in self.peers.values() if not peer.is_inbound]

    @property
    def inbound_peers(self) -> List[Peer]:
        return [peer for peer in self.peers.values() if peer.is_inbound]

    @property
    def outbound_count(self) -> int:
        """Current outbound connections, excluding feelers."""
        return sum(1 for peer in self.peers.values() if not peer.is_inbound)

    @property
    def outbound_count_with_feelers(self) -> int:
        """What ``getconnectioncount``-style polling sees (Fig. 6)."""
        return self.outbound_count + self.connections.active_feelers

    @property
    def inbound_count(self) -> int:
        return sum(1 for peer in self.peers.values() if peer.is_inbound)

    @property
    def established_peers(self) -> List[Peer]:
        return [peer for peer in self.peers.values() if peer.established]

    @property
    def _active_feelers(self) -> int:
        return self.connections.active_feelers

    @property
    def _uplink_free_at(self) -> float:
        return self.handlers.uplink_free_at

    @_uplink_free_at.setter
    def _uplink_free_at(self, when: float) -> None:
        self.handlers.uplink_free_at = when

    def is_synchronized(self, best_height: int) -> bool:
        """Does this node hold the up-to-date blockchain?"""
        return self.chain.height >= best_height

    def height_at(self, when: float) -> int:
        """Chain height this node held at time ``when`` (tip history)."""
        index = bisect.bisect_right(self.tip_history, (when, float("inf")))
        return self.tip_history[index - 1][1] if index > 0 else 0

    def connection_success_rate(self) -> Optional[float]:
        """Fraction of logged non-feeler attempts that succeeded."""
        attempts = [
            a
            for a in self.connections.attempt_log
            if not a.outcome.startswith("feeler")
        ]
        if not attempts:
            return None
        return sum(1 for a in attempts if a.succeeded) / len(attempts)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self, addresses: Sequence[NetAddr]) -> int:
        """Seed the addrman (DNS-seeder bootstrap).  Returns # added."""
        added = 0
        now = self.sim.now
        for address in addresses:
            if address == self.addr:
                continue
            if self.addrman.add(address, now):
                added += 1
        return added

    def start(self) -> None:
        """Bring the node online: listen, connect out, start feelers."""
        if self.running:
            return
        self.running = True
        self.started_at = self.sim.now
        self.first_relay_at = None
        self.handlers.reset(self.sim.now)
        if self.config.listen:
            self.sim.network.listen(self.addr, self)
        self.connections.start()
        if self.config.getaddr_repeat_interval:
            self._getaddr_task = self.sim.call_every(
                self.config.getaddr_repeat_interval, self._send_getaddr_round
            )
        if self.config.ping_interval:
            self._ping_task = self.sim.call_every(
                self.config.ping_interval, self._send_ping_round
            )

    def stop(self) -> None:
        """Take the node offline, dropping every connection."""
        if not self.running:
            return
        self.running = False
        if self._getaddr_task is not None:
            self._getaddr_task.stop()
            self._getaddr_task = None
        if self._ping_task is not None:
            self._ping_task.stop()
            self._ping_task = None
        self.connections.stop()
        self.sim.network.disconnect_host(self.addr)
        self.peers.clear()
        self._established_cache = None
        self.handlers.dirty_process.clear()
        self.handlers.dirty_send.clear()
        self._pending_cmpct.clear()

    def restart(self) -> None:
        """Stop and immediately start again (the §IV-D resync experiment)."""
        self.stop()
        self.start()

    def lose_state(self) -> None:
        """Discard chain and mempool, as after an unclean crash.

        Used by crash faults (``repro.faults``): a node restarted after
        ``lose_state`` re-downloads the whole chain, the compressed
        analogue of a corrupted datadir forcing a full IBD.  Address
        tables survive (peers.dat outlives most crashes; losing it too
        would understate recovery).  Only legal while stopped.
        """
        if self.running:
            raise ProtocolError(f"lose_state on running node {self.addr}")
        self.chain = Blockchain()
        self.mempool = Mempool()
        self._pending_cmpct.clear()
        self.tip_history.append((self.sim.now, 0))

    # ------------------------------------------------------------------
    # Connection plumbing shared with the connection manager
    # ------------------------------------------------------------------
    def _ensure_connecting(self) -> None:
        self.connections.ensure_connecting()

    def _try_feeler(self) -> None:
        self.connections.try_feeler()

    def _connected_to(self, target: NetAddr) -> bool:
        return any(peer.remote_addr == target for peer in self.peers.values())

    def _adopt_socket(self, socket: Socket) -> Peer:
        peer = Peer(socket, connected_at=self.sim.now, loop=self.handlers)
        socket.user_data = peer
        socket.handler = self
        self.peers[socket] = peer
        return peer

    # ------------------------------------------------------------------
    # Transport callbacks
    # ------------------------------------------------------------------
    def on_inbound_connection(self, socket: Socket) -> bool:
        if not self.running or not self.config.listen:
            return False
        if self.inbound_count >= self.config.max_inbound:
            return False
        self._adopt_socket(socket)
        return True

    def on_message(self, socket: Socket, message: Message) -> None:
        peer = socket.user_data
        if peer is None or socket not in self.peers:
            return
        # Peer.enqueue_process + HandlerLoop.wake, inlined: this runs
        # once per delivered message, the single busiest protocol entry
        # point at paper scale.
        peer.process_queue.append(message)
        loop = self.handlers
        loop.dirty_process[peer] = None
        if not loop.scheduled and self.running:
            loop.scheduled = True
            loop._schedule_pass(0.0, loop.run_pass, None)

    def on_disconnect(self, socket: Socket) -> None:
        peer = self.peers.pop(socket, None)
        if peer is None:
            return
        self._established_cache = None
        if not peer.is_inbound:
            self.connections.ensure_connecting()

    def _drop_connection(self, socket: Socket) -> None:
        """A spontaneous outbound-connection drop (lifetime expiry)."""
        peer = self.peers.pop(socket, None)
        if peer is None or not self.running:
            return
        self._established_cache = None
        if socket.open:
            socket.close()
        self.connections.ensure_connecting()

    # ------------------------------------------------------------------
    # Handler-loop delegates (kept for experiment drivers and tests)
    # ------------------------------------------------------------------
    def _wake_handler(self) -> None:
        self.handlers.wake()

    def _handler_pass(self) -> None:
        self.handlers.run_pass()

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------
    def _process_message(self, peer: Peer, message: Message) -> None:
        handler = self._DISPATCH.get(message.command)
        if handler is not None:
            handler(self, peer, message)

    def _handle_version(self, peer: Peer, message: Version) -> None:
        peer.version_received = True
        peer.remote_height = message.start_height
        if peer.is_inbound:
            peer.enqueue_send(
                Version(
                    sender=self.addr,
                    receiver=peer.remote_addr,
                    start_height=self.chain.height,
                )
            )
        peer.enqueue_send(VERACK)
        if peer.verack_received and not peer.established:
            self._on_established(peer)

    def _handle_verack(self, peer: Peer, message: Verack) -> None:
        peer.verack_received = True
        if not peer.established and peer.version_received:
            self._on_established(peer)

    def _on_established(self, peer: Peer) -> None:
        peer.established = True
        self._established_cache = None
        if not peer.is_inbound:
            self.addrman.good(peer.remote_addr, self.sim.now)
            if self.config.getaddr_on_connect:
                peer.enqueue_send(GETADDR)
                peer.sent_getaddr = True
            if self.config.connection_lifetime_mean:
                lifetime = self._rng.expovariate(
                    1.0 / self.config.connection_lifetime_mean
                )
                self.sim.schedule(lifetime, self._drop_connection, peer.socket)
        if self.config.listen:
            # Self-advertisement: "a node also sends its own IP address".
            peer.enqueue_send(
                Addr(addresses=(TimestampedAddr(self.addr, self.sim.now),))
            )
        if self.config.compact_blocks:
            high_bandwidth = self._rng.random() < self.config.hb_compact_fraction
            peer.enqueue_send(SendCmpct(high_bandwidth=high_bandwidth))
        self._maybe_sync_from(peer)

    def _handle_ping(self, peer: Peer, message: Ping) -> None:
        nonce = message.nonce
        peer.enqueue_send(PONG0 if nonce == 0 else Pong(nonce=nonce))

    def _handle_pong(self, peer: Peer, message: Pong) -> None:
        pass  # keepalive bookkeeping is irrelevant to the study

    def _handle_getaddr(self, peer: Peer, message: GetAddr) -> None:
        if peer.served_getaddr and not self.config.serve_repeated_getaddr:
            return
        peer.served_getaddr = True
        records = self.policy.addr.getaddr_records(self.addrman, self.sim.now)
        response = self._build_addr_response(records)
        if response:
            peer.enqueue_send(Addr(addresses=tuple(response[:1000])))

    def _build_addr_response(
        self, records: List[TimestampedAddr]
    ) -> List[TimestampedAddr]:
        """Assemble the ADDR payload; subclasses (malicious nodes) override."""
        response = list(records)
        if self.config.listen:
            response.insert(0, TimestampedAddr(self.addr, self.sim.now))
        return response

    def _handle_addr(self, peer: Peer, message: Addr) -> None:
        records = message.addresses
        peer.addr_messages_received += 1
        peer.addrs_received += len(records)
        # Bulk paths: addrman ingests the whole message in one call, and
        # known_addrs fills through set.update over a C-level accessor.
        # Neither draws the RNG differently from the per-record loop
        # they replaced, so gossip outcomes are bit-identical.
        self.addrman.add_many(records, self._clock._now, peer.remote_addr)
        peer.known_addrs.update(map(_record_addr, records))
        # Unsolicited small announcements are forwarded (Core relays fresh
        # addrs to a couple of peers); large getaddr replies are not.
        if 0 < len(records) <= cfg.ADDR_FORWARD_MAX:
            self._forward_addrs(peer, records, message)

    def established_peer_list(self) -> List[Peer]:
        """Established peers in connection order (cached; see __init__)."""
        cached = self._established_cache
        if cached is None:
            cached = self._established_cache = [
                peer for peer in self.peers.values() if peer.established
            ]
        return cached

    def _forward_addrs(
        self,
        origin: Peer,
        records: Tuple[TimestampedAddr, ...],
        message: Optional[Addr] = None,
    ) -> None:
        pool = self.established_peer_list()
        # Most relayed announcements carry a single record (forwarding
        # re-wraps each record individually, so chains stay single-record
        # forever).  The incoming message is immutable, so it can be
        # relayed as-is instead of allocating an identical copy.
        reusable = message if message is not None and len(records) == 1 else None
        count = len(pool)
        available = count - 1 if origin.established else count
        if available <= 0:
            return
        fanout = min(cfg.ADDR_FORWARD_FANOUT, available)
        # Index draws use ``int(random() * n)``: one C-level call per
        # draw, against randrange()/sample()'s Python-level setup that
        # dominated ADDR forwarding in paper-scale profiles.  random()
        # carries 53 bits, so the rounding bias at protocol-size ``n``
        # is immeasurable.
        rand = self._rng.random
        for record in records:
            addr = record.addr
            # Draw fanout targets by rejection against the shared pool:
            # uniform without replacement over the non-origin established
            # peers — the same distribution as sampling from a dedicated
            # candidates list, without materialising that list per
            # message (an O(peers) scan per ADDR at paper scale).
            first = pool[int(rand() * count)]
            while first is origin:
                first = pool[int(rand() * count)]
            second = None
            if fanout >= 2:
                second = pool[int(rand() * count)]
                while second is origin or second is first:
                    second = pool[int(rand() * count)]
            if fanout <= 2:
                # Default-config path (fanout 1 or 2), fully unrolled:
                # no targets tuple, and Peer.enqueue_send inlined.  One
                # ADDR object per record, shared by both targets — the
                # message is immutable in flight, so relaying the same
                # instance twice is indistinguishable from two copies.
                forwarded = None
                known = first.known_addrs
                if addr not in known:
                    known.add(addr)
                    forwarded = (
                        reusable
                        if reusable is not None
                        else Addr(addresses=(record,))
                    )
                    first.send_queue.append(forwarded)
                    loop = first.loop
                    if loop is not None:
                        loop.dirty_send[first] = None
                if second is not None:
                    known = second.known_addrs
                    if addr not in known:
                        known.add(addr)
                        if forwarded is None:
                            forwarded = (
                                reusable
                                if reusable is not None
                                else Addr(addresses=(record,))
                            )
                        second.send_queue.append(forwarded)
                        loop = second.loop
                        if loop is not None:
                            loop.dirty_send[second] = None
                continue
            # pragma-rare: non-default fanout config (> 2 targets).
            rest = self._rng.sample(
                [
                    peer
                    for peer in pool
                    if peer is not origin
                    and peer is not first
                    and peer is not second
                ],
                fanout - 2,
            )
            targets = (first, second, *rest)
            forwarded = None
            for peer in targets:
                if addr in peer.known_addrs:
                    continue
                peer.known_addrs.add(addr)
                if forwarded is None:
                    forwarded = (
                        reusable if reusable is not None else Addr(addresses=(record,))
                    )
                peer.enqueue_send(forwarded)

    def _handle_inv(self, peer: Peer, message: Inv) -> None:
        wanted: List[InvItem] = []
        for item in message.items:
            if item.type is InvType.BLOCK:
                peer.known_blocks.add(item.object_id)
                if (
                    item.object_id not in self.chain
                    and item.object_id not in peer.blocks_in_flight
                    and item.object_id not in self._pending_cmpct
                ):
                    if len(peer.blocks_in_flight) < cfg.MAX_BLOCKS_IN_TRANSIT:
                        peer.blocks_in_flight.add(item.object_id)
                        wanted.append(item)
            else:
                peer.known_txs.add(item.object_id)
                if item.object_id not in self.mempool:
                    wanted.append(item)
        if wanted:
            peer.enqueue_send(GetData(items=tuple(wanted)))

    def _handle_getdata(self, peer: Peer, message: GetData) -> None:
        for item in message.items:
            if item.type is InvType.BLOCK:
                block = self.chain.get(item.object_id)
                if block is not None:
                    peer.known_blocks.add(block.block_id)
                    peer.enqueue_send(BlockMsg(block=block))
            else:
                tx = self.mempool.get(item.object_id)
                if tx is not None:
                    peer.known_txs.add(tx.txid)
                    peer.enqueue_send(TxMsg(txid=tx.txid, size=tx.size))

    def _handle_getblocks(self, peer: Peer, message: GetBlocks) -> None:
        ids = self.chain.ids_above(message.from_height, limit=500)
        if ids:
            peer.enqueue_send(
                Inv(items=tuple(InvItem(InvType.BLOCK, bid) for bid in ids))
            )

    def _handle_block(self, peer: Peer, message: BlockMsg) -> None:
        peer.blocks_in_flight.discard(message.block_id)
        self._accept_block(peer, message.block)

    def _handle_sendcmpct(self, peer: Peer, message: SendCmpct) -> None:
        peer.wants_cmpct_hb = message.high_bandwidth

    def _handle_cmpctblock(self, peer: Peer, message: CmpctBlock) -> None:
        block = message.block
        peer.known_blocks.add(block.block_id)
        if block.block_id in self.chain or block.block_id in self._pending_cmpct:
            return
        if self.relay_tracker is not None:
            self.relay_tracker.saw(block.block_id, "block", self.sim.now)
        missing = self.mempool.missing_from(block.txids)
        if not missing:
            self._accept_block(peer, block)
            return
        self._pending_cmpct[block.block_id] = block
        peer.enqueue_send(
            GetBlockTxn(block_id=block.block_id, txids=tuple(missing))
        )

    def _handle_getblocktxn(self, peer: Peer, message: GetBlockTxn) -> None:
        block = self.chain.get(message.block_id)
        if block is None:
            return
        total = 0
        for txid in message.txids:
            tx = self.mempool.get(txid)
            total += tx.size if tx is not None else 350
        peer.enqueue_send(
            BlockTxn(
                block_id=message.block_id,
                txids=tuple(message.txids),
                total_size=total,
            )
        )

    def _handle_blocktxn(self, peer: Peer, message: BlockTxn) -> None:
        block = self._pending_cmpct.pop(message.block_id, None)
        if block is None:
            return
        for txid in message.txids:
            self.mempool.add(Transaction(txid=txid, created_at=self.sim.now))
        self._accept_block(peer, block)

    def _handle_tx(self, peer: Peer, message: TxMsg) -> None:
        peer.known_txs.add(message.txid)
        tx = Transaction(txid=message.txid, size=message.size, created_at=self.sim.now)
        if not self.mempool.add(tx):
            return
        if self.relay_tracker is not None:
            self.relay_tracker.saw(tx.txid, "tx", self.sim.now)
        self.relay.relay_tx(tx, exclude=peer)

    _DISPATCH: Dict[str, Callable] = {}

    # ------------------------------------------------------------------
    # Block acceptance and relay
    # ------------------------------------------------------------------
    def _accept_block(self, peer: Optional[Peer], block: Block) -> None:
        """Accept a full (or reconstructed) block; relay on tip advance."""
        if self.relay_tracker is not None:
            self.relay_tracker.saw(block.block_id, "block", self.sim.now)
        if peer is not None:
            peer.known_blocks.add(block.block_id)
        if block.block_id in self.chain:
            return
        old_height = self.chain.height
        advanced = self.chain.add_block(block)
        self.mempool.remove_all(block.txids)
        if peer is not None and block.height > peer.remote_height:
            peer.remote_height = block.height
        if (
            not advanced
            and block.block_id not in self.chain
            and peer is not None
        ):
            # Stored as an orphan: we are missing ancestors.  Backfill
            # from the sender (headers-first recovery, simplified).
            if not peer.blocks_in_flight:
                peer.enqueue_send(GetBlocks(from_height=self.chain.height))
        if advanced:
            self.tip_history.append((self.sim.now, self.chain.height))
            # Relay every newly connected main-chain block (orphans may
            # connect several at once).
            for height in range(old_height + 1, self.chain.height + 1):
                connected = self.chain.block_at_height(height)
                if connected is not None:
                    self.relay.relay_block(connected)
            if self.on_tip_advanced is not None:
                self.on_tip_advanced(self, self.chain.tip)
        if peer is not None:
            self._maybe_sync_from(peer)

    def submit_block(self, block: Block) -> None:
        """Inject a locally mined block (the mining process calls this)."""
        if self.relay_tracker is not None:
            self.relay_tracker.saw(block.block_id, "block", self.sim.now)
        self._accept_block(None, block)
        self.handlers.wake()

    def submit_tx(self, tx: Transaction) -> None:
        """Inject a locally originated transaction (wallet behaviour)."""
        if not self.mempool.add(tx):
            return
        if self.relay_tracker is not None:
            self.relay_tracker.saw(tx.txid, "tx", self.sim.now)
        self.relay.relay_tx(tx, exclude=None)
        self.handlers.wake()

    def _relay_block(self, block: Block) -> None:
        self.relay.relay_block(block)

    def _relay_tx(self, tx: Transaction, exclude: Optional[Peer]) -> None:
        self.relay.relay_tx(tx, exclude)

    def _send_getaddr_round(self) -> None:
        """Periodic GETADDR to every peer (request-load generation)."""
        if not self.running:
            return
        for peer in self.established_peers:
            peer.enqueue_send(GETADDR)
        self.handlers.wake()

    def _send_ping_round(self) -> None:
        """Periodic PING keepalive to every established peer."""
        if not self.running:
            return
        for peer in self.established_peers:
            peer.enqueue_send(Ping(nonce=self._rng.getrandbits(32)))
        self.handlers.wake()

    # ------------------------------------------------------------------
    # Initial block download
    # ------------------------------------------------------------------
    def _maybe_sync_from(self, peer: Peer) -> None:
        """Ask ``peer`` for block inventory if it claims a longer chain."""
        if peer.remote_height > self.chain.height and not peer.blocks_in_flight:
            peer.enqueue_send(GetBlocks(from_height=self.chain.height))

    def __repr__(self) -> str:
        kind = "reachable" if self.config.listen else "unreachable"
        return (
            f"BitcoinNode({self.addr}, {kind}, height={self.chain.height}, "
            f"out={self.outbound_count}/{self.config.max_outbound}, "
            f"in={self.inbound_count})"
        )


BitcoinNode._DISPATCH = {
    "version": BitcoinNode._handle_version,
    "verack": BitcoinNode._handle_verack,
    "ping": BitcoinNode._handle_ping,
    "pong": BitcoinNode._handle_pong,
    "getaddr": BitcoinNode._handle_getaddr,
    "addr": BitcoinNode._handle_addr,
    "inv": BitcoinNode._handle_inv,
    "getdata": BitcoinNode._handle_getdata,
    "getblocks": BitcoinNode._handle_getblocks,
    "block": BitcoinNode._handle_block,
    "sendcmpct": BitcoinNode._handle_sendcmpct,
    "cmpctblock": BitcoinNode._handle_cmpctblock,
    "getblocktxn": BitcoinNode._handle_getblocktxn,
    "blocktxn": BitcoinNode._handle_blocktxn,
    "tx": BitcoinNode._handle_tx,
}
