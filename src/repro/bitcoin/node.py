"""The simulated Bitcoin node.

This is a Python rendering of the Bitcoin Core v0.20.1 architecture the
paper reverse-engineered (§IV-B, §IV-C):

* **ThreadOpenConnections** — one outbound attempt at a time, targets drawn
  from addrman's new/tried tables with equal probability and *no
  reachability information*; failed attempts pace at the TCP timeout.
* **Feeler connections** — every ~2 minutes, a short-lived probe of a
  new-table address that promotes it to tried on success.
* **SocketHandler / ThreadMessageHandler** (paper Fig. 9, Alg. 3) — each
  handler pass services connections **round-robin, one message per peer**:
  one receive from each ``vProcessMsg``, then one send from each
  ``vSendMessage``.  Sends serialize on the node's uplink, so a block
  queued behind pending replies reaches the last connection late — the
  §IV-C relaying delay.
* **Relay** — BIP152 compact blocks with high-bandwidth peers, INV/GETDATA
  otherwise; transactions trickle behind Poisson timers.
* **§V policies** — tried-only ADDR responses, shortened tried horizon,
  and outbound-first/front-of-queue block relay, all switchable via
  :class:`~repro.bitcoin.config.PolicyConfig`.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ProtocolError
from ..simnet.addresses import NetAddr, TimestampedAddr
from ..simnet.rand import derive_seed
from ..simnet.simulator import Simulator
from ..simnet.transport import Socket
from . import config as cfg
from .addrman import AddrMan
from .blockchain import Block, Blockchain
from .config import NodeConfig
from .mempool import Mempool, Transaction
from .messages import (
    Addr,
    BlockMsg,
    BlockTxn,
    CmpctBlock,
    GetAddr,
    GetBlocks,
    GetBlockTxn,
    GetData,
    Inv,
    InvItem,
    InvType,
    Message,
    Ping,
    Pong,
    SendCmpct,
    TxMsg,
    Verack,
    Version,
)
from .peer import Peer
from .relay import RelayTracker, relay_order

#: Smallest gap between consecutive handler passes when work remains.
_MIN_PASS_GAP = 0.001


@dataclass
class ConnectionAttempt:
    """One outbound connection attempt and its outcome (Fig. 7 data)."""

    started_at: float
    finished_at: float
    target: NetAddr
    outcome: str  # "success", "failed", or "feeler-success"/"feeler-failed"

    @property
    def succeeded(self) -> bool:
        return self.outcome.endswith("success")

    @property
    def duration(self) -> float:
        return self.finished_at - self.started_at


class BitcoinNode:
    """A Bitcoin peer: reachable (listening) or unreachable (NAT'd)."""

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        config: Optional[NodeConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        self.sim = sim
        self.addr = addr
        self.config = config if config is not None else NodeConfig()
        self.config.validate()
        self.name = name if name is not None else f"node-{addr}"
        self._rng = sim.random.stream("node", str(addr))
        self.addrman = AddrMan(
            rng=self._rng,
            new_buckets=self.config.addrman_new_buckets,
            tried_buckets=self.config.addrman_tried_buckets,
            bucket_size=self.config.addrman_bucket_size,
            horizon_days=self.config.policies.tried_horizon_days,
            key=derive_seed(sim.seed, "addrman", str(addr)),
        )
        self.chain = Blockchain()
        self.mempool = Mempool()
        self.peers: Dict[Socket, Peer] = {}
        self.running = False
        self.started_at: Optional[float] = None
        # Connection machinery state.
        self._attempt_in_flight = False
        self._connect_event = None
        self._feeler_task = None
        self._getaddr_task = None
        self._ping_task = None
        self._active_feelers = 0
        # Handler-loop state.
        self._handler_scheduled = False
        self._uplink_free_at = 0.0
        self._inbound_trickle_armed = False
        # Compact blocks awaiting missing transactions: block_id -> Block.
        self._pending_cmpct: Dict[int, Block] = {}
        # Measurement hooks.
        self.relay_tracker: Optional[RelayTracker] = (
            RelayTracker() if self.config.track_relay_times else None
        )
        self.attempt_log: List[ConnectionAttempt] = []
        self.first_relay_at: Optional[float] = None
        #: (time, height) each time the tip advanced — lets monitors ask
        #: "what height did this node report when last polled at t".
        self.tip_history: List[Tuple[float, int]] = [(0.0, 0)]
        #: Invoked with (self, block) whenever our tip advances.
        self.on_tip_advanced: Optional[Callable[["BitcoinNode", Block], None]] = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def outbound_peers(self) -> List[Peer]:
        return [peer for peer in self.peers.values() if not peer.is_inbound]

    @property
    def inbound_peers(self) -> List[Peer]:
        return [peer for peer in self.peers.values() if peer.is_inbound]

    @property
    def outbound_count(self) -> int:
        """Current outbound connections, excluding feelers."""
        return sum(1 for peer in self.peers.values() if not peer.is_inbound)

    @property
    def outbound_count_with_feelers(self) -> int:
        """What ``getconnectioncount``-style polling sees (Fig. 6)."""
        return self.outbound_count + self._active_feelers

    @property
    def inbound_count(self) -> int:
        return sum(1 for peer in self.peers.values() if peer.is_inbound)

    @property
    def established_peers(self) -> List[Peer]:
        return [peer for peer in self.peers.values() if peer.established]

    def is_synchronized(self, best_height: int) -> bool:
        """Does this node hold the up-to-date blockchain?"""
        return self.chain.height >= best_height

    def height_at(self, when: float) -> int:
        """Chain height this node held at time ``when`` (tip history)."""
        index = bisect.bisect_right(self.tip_history, (when, float("inf")))
        return self.tip_history[index - 1][1] if index > 0 else 0

    def connection_success_rate(self) -> Optional[float]:
        """Fraction of logged non-feeler attempts that succeeded."""
        attempts = [a for a in self.attempt_log if not a.outcome.startswith("feeler")]
        if not attempts:
            return None
        return sum(1 for a in attempts if a.succeeded) / len(attempts)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def bootstrap(self, addresses: Sequence[NetAddr]) -> int:
        """Seed the addrman (DNS-seeder bootstrap).  Returns # added."""
        added = 0
        now = self.sim.now
        for address in addresses:
            if address == self.addr:
                continue
            if self.addrman.add(address, now):
                added += 1
        return added

    def start(self) -> None:
        """Bring the node online: listen, connect out, start feelers."""
        if self.running:
            return
        self.running = True
        self.started_at = self.sim.now
        self.first_relay_at = None
        self._uplink_free_at = self.sim.now
        if self.config.listen:
            self.sim.network.listen(self.addr, self)
        self._ensure_connecting()
        if self.config.feelers_enabled:
            self._feeler_task = self.sim.call_every(
                self.config.feeler_interval,
                self._try_feeler,
                start_delay=self._rng.uniform(0, self.config.feeler_interval),
            )
        if self.config.getaddr_repeat_interval:
            self._getaddr_task = self.sim.call_every(
                self.config.getaddr_repeat_interval, self._send_getaddr_round
            )
        if self.config.ping_interval:
            self._ping_task = self.sim.call_every(
                self.config.ping_interval, self._send_ping_round
            )

    def stop(self) -> None:
        """Take the node offline, dropping every connection."""
        if not self.running:
            return
        self.running = False
        if self._feeler_task is not None:
            self._feeler_task.stop()
            self._feeler_task = None
        if self._getaddr_task is not None:
            self._getaddr_task.stop()
            self._getaddr_task = None
        if self._ping_task is not None:
            self._ping_task.stop()
            self._ping_task = None
        if self._connect_event is not None:
            self._connect_event.cancel()
            self._connect_event = None
        self.sim.network.disconnect_host(self.addr)
        self.peers.clear()
        self._pending_cmpct.clear()
        self._active_feelers = 0

    def restart(self) -> None:
        """Stop and immediately start again (the §IV-D resync experiment)."""
        self.stop()
        self.start()

    def lose_state(self) -> None:
        """Discard chain and mempool, as after an unclean crash.

        Used by crash faults (``repro.faults``): a node restarted after
        ``lose_state`` re-downloads the whole chain, the compressed
        analogue of a corrupted datadir forcing a full IBD.  Address
        tables survive (peers.dat outlives most crashes; losing it too
        would understate recovery).  Only legal while stopped.
        """
        if self.running:
            raise ProtocolError(f"lose_state on running node {self.addr}")
        self.chain = Blockchain()
        self.mempool = Mempool()
        self._pending_cmpct.clear()
        self.tip_history.append((self.sim.now, 0))

    # ------------------------------------------------------------------
    # ThreadOpenConnections
    # ------------------------------------------------------------------
    def _ensure_connecting(self) -> None:
        """Schedule the next outbound attempt if slots are unfilled."""
        if not self.running or self._attempt_in_flight:
            return
        if self.outbound_count >= self.config.max_outbound:
            return
        if self._connect_event is not None:
            return
        self._connect_event = self.sim.schedule(
            self.config.connect_retry_interval, self._attempt_connection
        )

    def _attempt_connection(self) -> None:
        self._connect_event = None
        if not self.running or self.outbound_count >= self.config.max_outbound:
            return
        target = self.addrman.select(self.sim.now)
        if target is None or target == self.addr or self._connected_to(target):
            self._ensure_connecting()
            return
        self.addrman.attempt(target, self.sim.now)
        self._attempt_in_flight = True
        started = self.sim.now
        self.sim.network.connect(
            self.addr,
            target,
            handler=self,
            # partial, not a lambda: the callback sits in the event queue
            # and must survive Simulator.snapshot() pickling.
            on_result=partial(self._connection_result, target, started),
            timeout=self.config.connect_timeout,
        )

    def _connection_result(
        self, target: NetAddr, started: float, socket: Optional[Socket]
    ) -> None:
        self._attempt_in_flight = False
        if self.config.track_connection_attempts:
            self.attempt_log.append(
                ConnectionAttempt(
                    started_at=started,
                    finished_at=self.sim.now,
                    target=target,
                    outcome="success" if socket is not None else "failed",
                )
            )
        if not self.running:
            if socket is not None:
                socket.close()
            return
        if socket is None:
            self._ensure_connecting()
            return
        if self.outbound_count >= self.config.max_outbound:
            socket.close()  # slot got filled while we were handshaking
            self._ensure_connecting()
            return
        peer = self._adopt_socket(socket)
        peer.enqueue_send(
            Version(
                sender=self.addr,
                receiver=peer.remote_addr,
                start_height=self.chain.height,
            )
        )
        self._wake_handler()
        self._ensure_connecting()

    def _connected_to(self, target: NetAddr) -> bool:
        return any(peer.remote_addr == target for peer in self.peers.values())

    def _adopt_socket(self, socket: Socket) -> Peer:
        peer = Peer(socket, connected_at=self.sim.now)
        socket.user_data = peer
        socket.handler = self
        self.peers[socket] = peer
        return peer

    # ------------------------------------------------------------------
    # Feelers (footnote 1 of the paper)
    # ------------------------------------------------------------------
    def _try_feeler(self) -> None:
        if not self.running:
            return
        target = self.addrman.select(self.sim.now, new_only=True)
        if target is None or target == self.addr or self._connected_to(target):
            return
        self.addrman.attempt(target, self.sim.now)
        self._active_feelers += 1
        started = self.sim.now
        self.sim.network.connect(
            self.addr,
            target,
            handler=_FeelerHandler(),
            on_result=partial(self._feeler_result, target, started),
            timeout=self.config.connect_timeout,
        )

    def _feeler_result(
        self, target: NetAddr, started: float, socket: Optional[Socket]
    ) -> None:
        self._active_feelers = max(0, self._active_feelers - 1)
        success = socket is not None
        if success:
            self.addrman.good(target, self.sim.now)
            socket.close()
        if self.config.track_connection_attempts:
            self.attempt_log.append(
                ConnectionAttempt(
                    started_at=started,
                    finished_at=self.sim.now,
                    target=target,
                    outcome="feeler-success" if success else "feeler-failed",
                )
            )

    # ------------------------------------------------------------------
    # Transport callbacks
    # ------------------------------------------------------------------
    def on_inbound_connection(self, socket: Socket) -> bool:
        if not self.running or not self.config.listen:
            return False
        if self.inbound_count >= self.config.max_inbound:
            return False
        self._adopt_socket(socket)
        return True

    def on_message(self, socket: Socket, message: Message) -> None:
        peer = socket.user_data
        if peer is None or socket not in self.peers:
            return
        peer.process_queue.append(message)
        self._wake_handler()

    def on_disconnect(self, socket: Socket) -> None:
        peer = self.peers.pop(socket, None)
        if peer is None:
            return
        if not peer.is_inbound:
            self._ensure_connecting()

    def _drop_connection(self, socket: Socket) -> None:
        """A spontaneous outbound-connection drop (lifetime expiry)."""
        peer = self.peers.pop(socket, None)
        if peer is None or not self.running:
            return
        if socket.open:
            socket.close()
        self._ensure_connecting()

    # ------------------------------------------------------------------
    # The round-robin handler engine (paper Fig. 9 / Alg. 3)
    # ------------------------------------------------------------------
    def _wake_handler(self) -> None:
        if self._handler_scheduled or not self.running:
            return
        self._handler_scheduled = True
        self.sim.schedule(0.0, self._handler_pass)

    def _handler_pass(self) -> None:
        self._handler_scheduled = False
        if not self.running:
            return
        # This is the hottest protocol loop in the simulator (one pass per
        # message burst on every node), so the per-iteration constants —
        # config values, the dispatch table, and the clock, none of which
        # change mid-pass — are hoisted to locals.
        peers = self.peers
        config = self.config
        proc_time = config.proc_times.get
        default_proc_time = config.default_proc_time
        dispatch = self._DISPATCH.get
        now = self.sim.clock._now
        busy = 0.0
        # --- ThreadMessageHandler: one message per peer per pass ---
        for socket, peer in list(peers.items()):
            if socket not in peers:
                continue  # dropped by an earlier handler in this pass
            if peer.process_queue:
                message = peer.process_queue.popleft()
                busy += proc_time(message.command, default_proc_time)
                handler = dispatch(message.command)
                if handler is not None:
                    handler(self, peer, message)
        # --- SocketHandler: one send per peer per pass, uplink-serialized ---
        send_epoch = now + busy
        uplink_free_at = self._uplink_free_at
        uplink_bandwidth = config.uplink_bandwidth
        for socket, peer in list(peers.items()):
            if not peer.send_queue or not socket.open:
                continue
            message = peer.send_queue.popleft()
            start = send_epoch if send_epoch > uplink_free_at else uplink_free_at
            done = start + message.wire_size / uplink_bandwidth
            uplink_free_at = done
            socket.send(message, extra_delay=done - now)
            self._note_relayed(message, done)
        self._uplink_free_at = uplink_free_at
        # --- reschedule if work remains ---
        more = any(
            peer.process_queue or peer.send_queue for peer in peers.values()
        )
        if more:
            self._handler_scheduled = True
            self.sim.schedule(max(busy, _MIN_PASS_GAP), self._handler_pass)

    def _note_relayed(self, message: Message, completed_at: float) -> None:
        """Record relay completions for the §IV-C measurement."""
        if self.first_relay_at is None and isinstance(
            message, (BlockMsg, CmpctBlock)
        ):
            self.first_relay_at = completed_at
        if self.relay_tracker is None:
            return
        if isinstance(message, (BlockMsg, CmpctBlock)):
            self.relay_tracker.relayed(message.block_id, completed_at)
        elif isinstance(message, Inv):
            for item in message.items:
                self.relay_tracker.relayed(item.object_id, completed_at)

    # ------------------------------------------------------------------
    # Message processing
    # ------------------------------------------------------------------
    def _process_message(self, peer: Peer, message: Message) -> None:
        handler = self._DISPATCH.get(message.command)
        if handler is not None:
            handler(self, peer, message)

    def _handle_version(self, peer: Peer, message: Version) -> None:
        peer.version_received = True
        peer.remote_height = message.start_height
        if peer.is_inbound:
            peer.enqueue_send(
                Version(
                    sender=self.addr,
                    receiver=peer.remote_addr,
                    start_height=self.chain.height,
                )
            )
        peer.enqueue_send(Verack())
        if peer.verack_received and not peer.established:
            self._on_established(peer)

    def _handle_verack(self, peer: Peer, message: Verack) -> None:
        peer.verack_received = True
        if not peer.established and peer.version_received:
            self._on_established(peer)

    def _on_established(self, peer: Peer) -> None:
        peer.established = True
        if not peer.is_inbound:
            self.addrman.good(peer.remote_addr, self.sim.now)
            if self.config.getaddr_on_connect:
                peer.enqueue_send(GetAddr())
                peer.sent_getaddr = True
            if self.config.connection_lifetime_mean:
                lifetime = self._rng.expovariate(
                    1.0 / self.config.connection_lifetime_mean
                )
                self.sim.schedule(lifetime, self._drop_connection, peer.socket)
        if self.config.listen:
            # Self-advertisement: "a node also sends its own IP address".
            peer.enqueue_send(
                Addr(addresses=(TimestampedAddr(self.addr, self.sim.now),))
            )
        if self.config.compact_blocks:
            high_bandwidth = self._rng.random() < self.config.hb_compact_fraction
            peer.enqueue_send(SendCmpct(high_bandwidth=high_bandwidth))
        self._maybe_sync_from(peer)

    def _handle_ping(self, peer: Peer, message: Ping) -> None:
        peer.enqueue_send(Pong(nonce=message.nonce))

    def _handle_pong(self, peer: Peer, message: Pong) -> None:
        pass  # keepalive bookkeeping is irrelevant to the study

    def _handle_getaddr(self, peer: Peer, message: GetAddr) -> None:
        if peer.served_getaddr and not self.config.serve_repeated_getaddr:
            return
        peer.served_getaddr = True
        records = self.addrman.get_addr(
            self.sim.now,
            tried_only=self.config.policies.addr_from_tried_only,
        )
        response = self._build_addr_response(records)
        if response:
            peer.enqueue_send(Addr(addresses=tuple(response[:1000])))

    def _build_addr_response(
        self, records: List[TimestampedAddr]
    ) -> List[TimestampedAddr]:
        """Assemble the ADDR payload; subclasses (malicious nodes) override."""
        response = list(records)
        if self.config.listen:
            response.insert(0, TimestampedAddr(self.addr, self.sim.now))
        return response

    def _handle_addr(self, peer: Peer, message: Addr) -> None:
        peer.addr_messages_received += 1
        peer.addrs_received += len(message.addresses)
        now = self.sim.now
        addrman_add = self.addrman.add
        known_add = peer.known_addrs.add
        source = peer.remote_addr
        for record in message.addresses:
            addrman_add(record.addr, now, source, record.timestamp)
            known_add(record.addr)
        # Unsolicited small announcements are forwarded (Core relays fresh
        # addrs to a couple of peers); large getaddr replies are not.
        if 0 < len(message.addresses) <= cfg.ADDR_FORWARD_MAX:
            self._forward_addrs(peer, message.addresses)

    def _forward_addrs(
        self, origin: Peer, records: Tuple[TimestampedAddr, ...]
    ) -> None:
        candidates = [
            peer
            for peer in self.established_peers
            if peer is not origin
        ]
        if not candidates:
            return
        for record in records:
            fanout = min(cfg.ADDR_FORWARD_FANOUT, len(candidates))
            for peer in self._rng.sample(candidates, fanout):
                if record.addr in peer.known_addrs:
                    continue
                peer.known_addrs.add(record.addr)
                peer.enqueue_send(Addr(addresses=(record,)))

    def _handle_inv(self, peer: Peer, message: Inv) -> None:
        wanted: List[InvItem] = []
        for item in message.items:
            if item.type is InvType.BLOCK:
                peer.known_blocks.add(item.object_id)
                if (
                    item.object_id not in self.chain
                    and item.object_id not in peer.blocks_in_flight
                    and item.object_id not in self._pending_cmpct
                ):
                    if len(peer.blocks_in_flight) < cfg.MAX_BLOCKS_IN_TRANSIT:
                        peer.blocks_in_flight.add(item.object_id)
                        wanted.append(item)
            else:
                peer.known_txs.add(item.object_id)
                if item.object_id not in self.mempool:
                    wanted.append(item)
        if wanted:
            peer.enqueue_send(GetData(items=tuple(wanted)))

    def _handle_getdata(self, peer: Peer, message: GetData) -> None:
        for item in message.items:
            if item.type is InvType.BLOCK:
                block = self.chain.get(item.object_id)
                if block is not None:
                    peer.known_blocks.add(block.block_id)
                    peer.enqueue_send(BlockMsg(block=block))
            else:
                tx = self.mempool.get(item.object_id)
                if tx is not None:
                    peer.known_txs.add(tx.txid)
                    peer.enqueue_send(TxMsg(txid=tx.txid, size=tx.size))

    def _handle_getblocks(self, peer: Peer, message: GetBlocks) -> None:
        ids = self.chain.ids_above(message.from_height, limit=500)
        if ids:
            peer.enqueue_send(
                Inv(items=tuple(InvItem(InvType.BLOCK, bid) for bid in ids))
            )

    def _handle_block(self, peer: Peer, message: BlockMsg) -> None:
        peer.blocks_in_flight.discard(message.block_id)
        self._accept_block(peer, message.block)

    def _handle_sendcmpct(self, peer: Peer, message: SendCmpct) -> None:
        peer.wants_cmpct_hb = message.high_bandwidth

    def _handle_cmpctblock(self, peer: Peer, message: CmpctBlock) -> None:
        block = message.block
        peer.known_blocks.add(block.block_id)
        if block.block_id in self.chain or block.block_id in self._pending_cmpct:
            return
        if self.relay_tracker is not None:
            self.relay_tracker.saw(block.block_id, "block", self.sim.now)
        missing = self.mempool.missing_from(block.txids)
        if not missing:
            self._accept_block(peer, block)
            return
        self._pending_cmpct[block.block_id] = block
        peer.enqueue_send(
            GetBlockTxn(block_id=block.block_id, txids=tuple(missing))
        )

    def _handle_getblocktxn(self, peer: Peer, message: GetBlockTxn) -> None:
        block = self.chain.get(message.block_id)
        if block is None:
            return
        total = 0
        for txid in message.txids:
            tx = self.mempool.get(txid)
            total += tx.size if tx is not None else 350
        peer.enqueue_send(
            BlockTxn(
                block_id=message.block_id,
                txids=tuple(message.txids),
                total_size=total,
            )
        )

    def _handle_blocktxn(self, peer: Peer, message: BlockTxn) -> None:
        block = self._pending_cmpct.pop(message.block_id, None)
        if block is None:
            return
        for txid in message.txids:
            self.mempool.add(Transaction(txid=txid, created_at=self.sim.now))
        self._accept_block(peer, block)

    def _handle_tx(self, peer: Peer, message: TxMsg) -> None:
        peer.known_txs.add(message.txid)
        tx = Transaction(txid=message.txid, size=message.size, created_at=self.sim.now)
        if not self.mempool.add(tx):
            return
        if self.relay_tracker is not None:
            self.relay_tracker.saw(tx.txid, "tx", self.sim.now)
        self._relay_tx(tx, exclude=peer)

    _DISPATCH: Dict[str, Callable] = {}

    # ------------------------------------------------------------------
    # Block acceptance and relay
    # ------------------------------------------------------------------
    def _accept_block(self, peer: Optional[Peer], block: Block) -> None:
        """Accept a full (or reconstructed) block; relay on tip advance."""
        if self.relay_tracker is not None:
            self.relay_tracker.saw(block.block_id, "block", self.sim.now)
        if peer is not None:
            peer.known_blocks.add(block.block_id)
        if block.block_id in self.chain:
            return
        old_height = self.chain.height
        advanced = self.chain.add_block(block)
        self.mempool.remove_all(block.txids)
        if peer is not None and block.height > peer.remote_height:
            peer.remote_height = block.height
        if (
            not advanced
            and block.block_id not in self.chain
            and peer is not None
        ):
            # Stored as an orphan: we are missing ancestors.  Backfill
            # from the sender (headers-first recovery, simplified).
            if not peer.blocks_in_flight:
                peer.enqueue_send(GetBlocks(from_height=self.chain.height))
        if advanced:
            self.tip_history.append((self.sim.now, self.chain.height))
            # Relay every newly connected main-chain block (orphans may
            # connect several at once).
            for height in range(old_height + 1, self.chain.height + 1):
                connected = self.chain.block_at_height(height)
                if connected is not None:
                    self._relay_block(connected)
            if self.on_tip_advanced is not None:
                self.on_tip_advanced(self, self.chain.tip)
        if peer is not None:
            self._maybe_sync_from(peer)

    def submit_block(self, block: Block) -> None:
        """Inject a locally mined block (the mining process calls this)."""
        if self.relay_tracker is not None:
            self.relay_tracker.saw(block.block_id, "block", self.sim.now)
        self._accept_block(None, block)
        self._wake_handler()

    def submit_tx(self, tx: Transaction) -> None:
        """Inject a locally originated transaction (wallet behaviour)."""
        if not self.mempool.add(tx):
            return
        if self.relay_tracker is not None:
            self.relay_tracker.saw(tx.txid, "tx", self.sim.now)
        self._relay_tx(tx, exclude=None)
        self._wake_handler()

    def _relay_block(self, block: Block) -> None:
        prioritize = self.config.policies.prioritize_block_relay
        for peer in relay_order(self.established_peers, outbound_first=prioritize):
            if block.block_id in peer.known_blocks:
                continue
            peer.known_blocks.add(block.block_id)
            if self.config.compact_blocks and peer.wants_cmpct_hb:
                message: Message = CmpctBlock(block=block)
            else:
                message = Inv(items=(InvItem(InvType.BLOCK, block.block_id),))
            peer.enqueue_send(message, to_front=prioritize)
            if self.relay_tracker is not None:
                self.relay_tracker.enqueued(block.block_id)

    def _relay_tx(self, tx: Transaction, exclude: Optional[Peer]) -> None:
        for peer in self.established_peers:
            if peer is exclude or tx.txid in peer.known_txs:
                continue
            peer.pending_tx_invs.add(tx.txid)
            if self.relay_tracker is not None:
                self.relay_tracker.enqueued(tx.txid)
            self._schedule_trickle(peer)

    def _schedule_trickle(self, peer: Peer) -> None:
        """Arm the Poisson inv-trickle timer covering ``peer``.

        Outbound peers each have their own timer; inbound peers share one
        node-wide timer, as Bitcoin Core's ``PoissonNextSendInbound`` does
        to blunt timing-based topology inference.
        """
        if peer.is_inbound:
            if self._inbound_trickle_armed:
                return
            mean = self.config.tx_inv_interval_inbound
            delay = self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0
            self._inbound_trickle_armed = True
            self.sim.schedule(delay, self._flush_inbound_tx_invs)
            return
        if peer.next_tx_inv_at > self.sim.now:
            return  # timer already pending
        mean = self.config.tx_inv_interval_outbound
        delay = self._rng.expovariate(1.0 / mean) if mean > 0 else 0.0
        peer.next_tx_inv_at = self.sim.now + delay
        self.sim.schedule(delay, self._flush_tx_invs, peer)

    def _flush_inbound_tx_invs(self) -> None:
        self._inbound_trickle_armed = False
        if not self.running:
            return
        for peer in list(self.peers.values()):
            if peer.is_inbound:
                self._flush_peer_invs(peer)

    def _flush_tx_invs(self, peer: Peer) -> None:
        peer.next_tx_inv_at = 0.0
        self._flush_peer_invs(peer)

    def _flush_peer_invs(self, peer: Peer) -> None:
        if peer.socket not in self.peers or not peer.established:
            return
        if not peer.pending_tx_invs:
            return
        txids = sorted(peer.pending_tx_invs)
        peer.pending_tx_invs.clear()
        peer.known_txs.update(txids)
        peer.enqueue_send(
            Inv(items=tuple(InvItem(InvType.TX, txid) for txid in txids))
        )
        self._wake_handler()

    def _send_getaddr_round(self) -> None:
        """Periodic GETADDR to every peer (request-load generation)."""
        if not self.running:
            return
        for peer in self.established_peers:
            peer.enqueue_send(GetAddr())
        self._wake_handler()

    def _send_ping_round(self) -> None:
        """Periodic PING keepalive to every established peer."""
        if not self.running:
            return
        for peer in self.established_peers:
            peer.enqueue_send(Ping(nonce=self._rng.getrandbits(32)))
        self._wake_handler()

    # ------------------------------------------------------------------
    # Initial block download
    # ------------------------------------------------------------------
    def _maybe_sync_from(self, peer: Peer) -> None:
        """Ask ``peer`` for block inventory if it claims a longer chain."""
        if peer.remote_height > self.chain.height and not peer.blocks_in_flight:
            peer.enqueue_send(GetBlocks(from_height=self.chain.height))

    def __repr__(self) -> str:
        kind = "reachable" if self.config.listen else "unreachable"
        return (
            f"BitcoinNode({self.addr}, {kind}, height={self.chain.height}, "
            f"out={self.outbound_count}/{self.config.max_outbound}, "
            f"in={self.inbound_count})"
        )


BitcoinNode._DISPATCH = {
    "version": BitcoinNode._handle_version,
    "verack": BitcoinNode._handle_verack,
    "ping": BitcoinNode._handle_ping,
    "pong": BitcoinNode._handle_pong,
    "getaddr": BitcoinNode._handle_getaddr,
    "addr": BitcoinNode._handle_addr,
    "inv": BitcoinNode._handle_inv,
    "getdata": BitcoinNode._handle_getdata,
    "getblocks": BitcoinNode._handle_getblocks,
    "block": BitcoinNode._handle_block,
    "sendcmpct": BitcoinNode._handle_sendcmpct,
    "cmpctblock": BitcoinNode._handle_cmpctblock,
    "getblocktxn": BitcoinNode._handle_getblocktxn,
    "blocktxn": BitcoinNode._handle_blocktxn,
    "tx": BitcoinNode._handle_tx,
}


class _FeelerHandler:
    """Socket handler for feeler connections: connect, verify, drop."""

    def on_message(self, socket: Socket, message: Message) -> None:
        pass  # a feeler never processes protocol traffic

    def on_disconnect(self, socket: Socket) -> None:
        pass
