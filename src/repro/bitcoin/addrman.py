"""The address manager (``addrMan``): Bitcoin Core's new/tried tables.

This reproduces the behaviours the paper's §IV-B analysis hinges on:

* addresses learned from ADDR gossip land in the **new** table, bucketed by
  (source netgroup, address netgroup); addresses we have successfully
  connected to move to the **tried** table;
* outbound-connection targets are drawn from new or tried with **equal
  probability** — with *no notion of reachability*, which is the protocol
  weakness the paper identifies;
* GETADDR responses sample up to 23% of the tables, capped at 1000
  addresses;
* "terrible" addresses are evicted: never-successful after 3 attempts,
  10 failures within a week, or not seen within the 30-day horizon — the
  horizon the §V refinement shortens to 17 days.

Deviation from Core noted here once: selection is uniform over addresses
rather than Core's uniform-over-buckets-with-freshness-bias.  The paper's
phenomena (success rate, pollution, eviction latency) do not depend on the
bias, and uniform keeps selection O(1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..simnet.addresses import NetAddr, TimestampedAddr
from ..units import DAYS
from . import config as cfg


def _mix64(x: int) -> int:
    """SplitMix64 finalizer: a fast, well-distributed 64-bit mixer.

    Bucket placement only needs a deterministic, seed-keyed uniform
    spread over bucket indices; three multiply-xor-shift rounds give
    that at a fraction of the keyed-SHA-256 cost that dominated ADDR
    ingest in paper-scale profiles.  Pure integer arithmetic — stable
    across platforms and interpreter runs (no ``hash()``).
    """
    x &= 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
    return x ^ (x >> 31)


@dataclass(slots=True)
class AddrInfo:
    """Bookkeeping for one known address.

    Slotted: a scale run holds hundreds of thousands of these per node
    population, and the per-instance ``__dict__`` of a plain dataclass
    roughly doubles their footprint.
    """

    addr: NetAddr
    source: Optional[NetAddr]
    #: Gossiped last-seen timestamp (from the ADDR record).
    timestamp: float
    #: Last time we attempted a connection.
    last_try: float = -1.0
    #: Last successful connection.
    last_success: float = -1.0
    #: Failed attempts since the last success.
    attempts: int = 0
    in_tried: bool = False
    bucket: int = -1
    #: Memoized GETADDR-response record for the current ``timestamp``
    #: (addresses are re-sampled across many responses, so reusing the
    #: record avoids re-allocating an identical tuple each time).
    record: Optional[TimestampedAddr] = None

    def is_terrible(self, now: float, horizon: float) -> bool:
        """Core's ``AddrInfo::IsTerrible`` eviction predicate."""
        if self.last_try >= now - 60.0:
            return False  # tried in the last minute: leave it alone
        if self.timestamp > now + 10 * 60.0:
            return True  # timestamp from the future
        if self.timestamp < now - horizon:
            return True  # not seen within the horizon
        if self.last_success < 0 and self.attempts >= cfg.ADDRMAN_RETRIES:
            return True  # never succeeded
        if (
            self.last_success >= 0
            and self.last_success < now - cfg.ADDRMAN_MIN_FAIL_DAYS * DAYS
            and self.attempts >= cfg.ADDRMAN_MAX_FAILURES
        ):
            return True
        return False


class _Table:
    """One addrman table: capped buckets plus a flat index for O(1) picks."""

    def __init__(self, bucket_count: int, bucket_size: int, rng: random.Random):
        self.bucket_count = bucket_count
        self.bucket_size = bucket_size
        self._rng = rng
        self._buckets: Dict[int, List[NetAddr]] = {}
        self._flat: List[NetAddr] = []
        self._pos: Dict[NetAddr, int] = {}

    def __len__(self) -> int:
        return len(self._flat)

    def __contains__(self, addr: NetAddr) -> bool:
        return addr in self._pos

    def bucket_len(self, bucket: int) -> int:
        return len(self._buckets.get(bucket, ()))

    def insert(self, addr: NetAddr, bucket: int) -> Optional[NetAddr]:
        """Insert ``addr``; return an evicted address if the bucket was full."""
        if addr in self._pos:
            return None
        slot = self._buckets.setdefault(bucket, [])
        evicted = None
        if len(slot) >= self.bucket_size:
            victim_index = int(self._rng.random() * len(slot))
            evicted = slot[victim_index]
            slot[victim_index] = addr
            self._remove_flat(evicted)
        else:
            slot.append(addr)
        self._pos[addr] = len(self._flat)
        self._flat.append(addr)
        return evicted

    def remove(self, addr: NetAddr, bucket: int) -> None:
        slot = self._buckets.get(bucket)
        if slot is not None:
            try:
                slot.remove(addr)
            except ValueError:
                pass
            if not slot:
                del self._buckets[bucket]
        self._remove_flat(addr)

    def _remove_flat(self, addr: NetAddr) -> None:
        index = self._pos.pop(addr, None)
        if index is None:
            return
        last = self._flat.pop()
        if last != addr:
            self._flat[index] = last
            self._pos[last] = index

    def random_addr(self) -> Optional[NetAddr]:
        flat = self._flat
        if not flat:
            return None
        return flat[int(self._rng.random() * len(flat))]

    def sample(self, count: int) -> List[NetAddr]:
        count = min(count, len(self._flat))
        return self._rng.sample(self._flat, count)

    def all_addresses(self) -> List[NetAddr]:
        return list(self._flat)


class AddrMan:
    """The address manager of one node."""

    def __init__(
        self,
        rng: random.Random,
        new_buckets: int = cfg.ADDRMAN_NEW_BUCKET_COUNT,
        tried_buckets: int = cfg.ADDRMAN_TRIED_BUCKET_COUNT,
        bucket_size: int = cfg.ADDRMAN_BUCKET_SIZE,
        horizon_days: float = cfg.ADDRMAN_HORIZON_DAYS,
        key: int = 0,
    ) -> None:
        self._rng = rng
        self._key = key
        self.horizon = horizon_days * DAYS
        self._info: Dict[NetAddr, AddrInfo] = {}
        self._new = _Table(new_buckets, bucket_size, rng)
        self._tried = _Table(tried_buckets, bucket_size, rng)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def new_count(self) -> int:
        """Addresses currently in the new table."""
        return len(self._new)

    @property
    def tried_count(self) -> int:
        """Addresses currently in the tried table."""
        return len(self._tried)

    def __len__(self) -> int:
        return len(self._info)

    def __contains__(self, addr: NetAddr) -> bool:
        return addr in self._info

    def info(self, addr: NetAddr) -> Optional[AddrInfo]:
        """The bookkeeping record for ``addr``, or None if unknown."""
        return self._info.get(addr)

    def all_addresses(self) -> List[NetAddr]:
        """Every address in either table."""
        return list(self._info)

    # ------------------------------------------------------------------
    # Bucketing
    # ------------------------------------------------------------------
    def _new_bucket(self, addr: NetAddr, source: Optional[NetAddr]) -> int:
        # Keyed on (own key, address netgroup, source netgroup), as in
        # Core: the same address gossiped by different sources lands in
        # different buckets.  Both netgroups are 16-bit, so packing them
        # keeps distinct pairs distinct before mixing.
        source_group = (source[0] >> 16) if source is not None else 0
        # addr[0] & 0xFFFF0000 == group16 << 16 for 32-bit addresses,
        # without the group16 property call (this runs per gossiped
        # record at paper scale).
        return _mix64(
            self._key ^ (addr[0] & 0xFFFF0000) ^ source_group
        ) % self._new.bucket_count

    def _tried_bucket(self, addr: NetAddr) -> int:
        # (ip, port) packs injectively into 48 bits.
        return _mix64(
            self._key ^ (addr.ip << 16) ^ addr.port
        ) % self._tried.bucket_count

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(
        self,
        addr: NetAddr,
        now: float,
        source: Optional[NetAddr] = None,
        timestamp: Optional[float] = None,
    ) -> bool:
        """Learn ``addr`` (ADDR gossip / DNS seed).  True if newly added.

        An address already known only has its gossiped timestamp refreshed
        (Core applies a similar update rule); a new address lands in the
        new table, evicting a random occupant of a full bucket.
        """
        stamp = now if timestamp is None else min(timestamp, now + 600.0)
        existing = self._info.get(addr)
        if existing is not None:
            if stamp > existing.timestamp:
                existing.timestamp = stamp
            return False
        info = AddrInfo(addr=addr, source=source, timestamp=stamp)
        info.bucket = self._new_bucket(addr, source)
        evicted = self._new.insert(addr, info.bucket)
        if evicted is not None:
            self._info.pop(evicted, None)
        self._info[addr] = info
        return True

    def add_many(
        self,
        records: Sequence[TimestampedAddr],
        now: float,
        source: Optional[NetAddr] = None,
    ) -> int:
        """Bulk :meth:`add` for a whole ADDR message.  Returns # added.

        Processing ADDR gossip record-by-record through :meth:`add` is
        the busiest addrman entry point in a scale run (GETADDR replies
        carry up to 1000 records), so the per-record loop is inlined
        here with the lookups hoisted.  Semantics are record-for-record
        identical to calling ``add(record.addr, now, source,
        record.timestamp)`` in order — including the timestamp clamp and
        the eviction draw order — so same-seed figures do not move.
        """
        info_map = self._info
        new_insert = self._new.insert
        key = self._key
        bucket_count = self._new.bucket_count
        source_group = (source[0] >> 16) if source is not None else 0
        clamp = now + 600.0
        added = 0
        for record in records:
            addr = record.addr
            timestamp = record.timestamp
            stamp = timestamp if timestamp < clamp else clamp
            existing = info_map.get(addr)
            if existing is not None:
                if stamp > existing.timestamp:
                    existing.timestamp = stamp
                continue
            info = AddrInfo(addr=addr, source=source, timestamp=stamp)
            # _new_bucket with _mix64 unrolled — arithmetic identical to
            # the method, sans two Python calls per new record.
            x = (key ^ (addr[0] & 0xFFFF0000) ^ source_group) & 0xFFFFFFFFFFFFFFFF
            x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
            x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
            info.bucket = bucket = (x ^ (x >> 31)) % bucket_count
            evicted = new_insert(addr, bucket)
            if evicted is not None:
                info_map.pop(evicted, None)
            info_map[addr] = info
            added += 1
        return added

    def attempt(self, addr: NetAddr, now: float) -> None:
        """Record a connection attempt to ``addr``."""
        info = self._info.get(addr)
        if info is None:
            return
        info.last_try = now
        info.attempts += 1

    def good(self, addr: NetAddr, now: float) -> None:
        """Record a successful connection: promote ``addr`` to tried."""
        info = self._info.get(addr)
        if info is None:
            # Learned through an inbound path we never gossiped; adopt it.
            self.add(addr, now)
            info = self._info[addr]
        info.last_success = now
        info.last_try = now
        info.timestamp = now
        info.attempts = 0
        if info.in_tried:
            return
        self._new.remove(addr, info.bucket)
        info.in_tried = True
        info.bucket = self._tried_bucket(addr)
        evicted = self._tried.insert(addr, info.bucket)
        if evicted is not None:
            # Core moves the displaced tried entry back to new; we follow.
            displaced = self._info.get(evicted)
            if displaced is not None:
                displaced.in_tried = False
                displaced.bucket = self._new_bucket(evicted, displaced.source)
                re_evicted = self._new.insert(evicted, displaced.bucket)
                if re_evicted is not None:
                    self._info.pop(re_evicted, None)

    def remove(self, addr: NetAddr) -> None:
        """Forget ``addr`` entirely."""
        info = self._info.pop(addr, None)
        if info is None:
            return
        table = self._tried if info.in_tried else self._new
        table.remove(addr, info.bucket)

    # ------------------------------------------------------------------
    # Selection (outbound targets)
    # ------------------------------------------------------------------
    def select(
        self, now: float, new_only: bool = False, tried_bias: float = 0.5
    ) -> Optional[NetAddr]:
        """Pick an outbound-connection candidate.

        Core's rule: with both tables non-empty, flip a fair coin between
        them — crucially *without* any reachability information.  Terrible
        entries encountered during selection are evicted and the draw
        retried a bounded number of times.  ``tried_bias`` is the coin's
        weight (policy variants skew selection toward proven addresses);
        any value makes the same single RNG draw.
        """
        for _ in range(8):
            if new_only:
                use_tried = False
            elif len(self._tried) == 0:
                use_tried = False
            elif len(self._new) == 0:
                use_tried = True
            else:
                use_tried = self._rng.random() < tried_bias
            table = self._tried if use_tried else self._new
            addr = table.random_addr()
            if addr is None:
                return None
            info = self._info[addr]
            if info.is_terrible(now, self.horizon):
                self.remove(addr)
                continue
            return addr
        return None

    # ------------------------------------------------------------------
    # GETADDR responses
    # ------------------------------------------------------------------
    def get_addr(
        self,
        now: float,
        max_count: int = cfg.ADDR_RESPONSE_MAX,
        max_pct: int = cfg.ADDR_RESPONSE_MAX_PCT,
        tried_only: bool = False,
    ) -> List[TimestampedAddr]:
        """Sample addresses for an ADDR response.

        ``tried_only`` implements the §V addressing refinement.  Terrible
        addresses discovered during sampling are evicted and skipped, so a
        GETADDR-heavy workload also ages the tables (as in Core).
        """
        if tried_only:
            pool = self._tried.all_addresses()
        else:
            pool = self._new.all_addresses() + self._tried.all_addresses()
        pool_len = len(pool)
        limit = min(max_count, max(1, pool_len * max_pct // 100)) if pool else 0
        # Lazy partial Fisher-Yates: step ``i`` draws a uniform element
        # from the un-picked tail, so stopping once ``limit`` good
        # entries are collected yields exactly the same distribution as
        # shuffling the whole pool and walking its prefix — at O(limit)
        # RNG draws instead of O(pool).  GETADDR pools grow with the
        # network, so the full shuffle was a dominant per-event cost in
        # paper-scale runs.
        rand = self._rng.random
        info_map = self._info
        horizon = self.horizon
        out: List[TimestampedAddr] = []
        i = 0
        while i < pool_len and len(out) < limit:
            # int(random() * k) is a single C call per draw; see the
            # module docstring's uniform-selection deviation note.
            j = i + int(rand() * (pool_len - i))
            addr = pool[j]
            pool[j] = pool[i]
            i += 1
            info = info_map[addr]
            if info.is_terrible(now, horizon):
                self.remove(addr)
                continue
            record = info.record
            if record is None or record.timestamp != info.timestamp:
                record = TimestampedAddr(addr=addr, timestamp=info.timestamp)
                info.record = record
            out.append(record)
        return out

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def evict_terrible(self, now: float) -> int:
        """Proactively evict every terrible address.  Returns the count.

        Core does this lazily; the explicit sweep exists for experiments
        that measure table composition after a horizon change (§V).
        """
        victims = [
            addr
            for addr, info in self._info.items()
            if info.is_terrible(now, self.horizon)
        ]
        for addr in victims:
            self.remove(addr)
        return len(victims)
