"""The address manager (``addrMan``): Bitcoin Core's new/tried tables.

This reproduces the behaviours the paper's §IV-B analysis hinges on:

* addresses learned from ADDR gossip land in the **new** table, bucketed by
  (source netgroup, address netgroup); addresses we have successfully
  connected to move to the **tried** table;
* outbound-connection targets are drawn from new or tried with **equal
  probability** — with *no notion of reachability*, which is the protocol
  weakness the paper identifies;
* GETADDR responses sample up to 23% of the tables, capped at 1000
  addresses;
* "terrible" addresses are evicted: never-successful after 3 attempts,
  10 failures within a week, or not seen within the 30-day horizon — the
  horizon the §V refinement shortens to 17 days.

Deviation from Core noted here once: selection is uniform over addresses
rather than Core's uniform-over-buckets-with-freshness-bias.  The paper's
phenomena (success rate, pollution, eviction latency) do not depend on the
bias, and uniform keeps selection O(1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..simnet.addresses import NetAddr, TimestampedAddr
from ..simnet.rand import derive_seed
from ..units import DAYS
from . import config as cfg


@dataclass
class AddrInfo:
    """Bookkeeping for one known address."""

    addr: NetAddr
    source: Optional[NetAddr]
    #: Gossiped last-seen timestamp (from the ADDR record).
    timestamp: float
    #: Last time we attempted a connection.
    last_try: float = -1.0
    #: Last successful connection.
    last_success: float = -1.0
    #: Failed attempts since the last success.
    attempts: int = 0
    in_tried: bool = False
    bucket: int = -1

    def is_terrible(self, now: float, horizon: float) -> bool:
        """Core's ``AddrInfo::IsTerrible`` eviction predicate."""
        if self.last_try >= now - 60.0:
            return False  # tried in the last minute: leave it alone
        if self.timestamp > now + 10 * 60.0:
            return True  # timestamp from the future
        if self.timestamp < now - horizon:
            return True  # not seen within the horizon
        if self.last_success < 0 and self.attempts >= cfg.ADDRMAN_RETRIES:
            return True  # never succeeded
        if (
            self.last_success >= 0
            and self.last_success < now - cfg.ADDRMAN_MIN_FAIL_DAYS * DAYS
            and self.attempts >= cfg.ADDRMAN_MAX_FAILURES
        ):
            return True
        return False


class _Table:
    """One addrman table: capped buckets plus a flat index for O(1) picks."""

    def __init__(self, bucket_count: int, bucket_size: int, rng: random.Random):
        self.bucket_count = bucket_count
        self.bucket_size = bucket_size
        self._rng = rng
        self._buckets: Dict[int, List[NetAddr]] = {}
        self._flat: List[NetAddr] = []
        self._pos: Dict[NetAddr, int] = {}

    def __len__(self) -> int:
        return len(self._flat)

    def __contains__(self, addr: NetAddr) -> bool:
        return addr in self._pos

    def bucket_len(self, bucket: int) -> int:
        return len(self._buckets.get(bucket, ()))

    def insert(self, addr: NetAddr, bucket: int) -> Optional[NetAddr]:
        """Insert ``addr``; return an evicted address if the bucket was full."""
        if addr in self._pos:
            return None
        slot = self._buckets.setdefault(bucket, [])
        evicted = None
        if len(slot) >= self.bucket_size:
            victim_index = self._rng.randrange(len(slot))
            evicted = slot[victim_index]
            slot[victim_index] = addr
            self._remove_flat(evicted)
        else:
            slot.append(addr)
        self._pos[addr] = len(self._flat)
        self._flat.append(addr)
        return evicted

    def remove(self, addr: NetAddr, bucket: int) -> None:
        slot = self._buckets.get(bucket)
        if slot is not None:
            try:
                slot.remove(addr)
            except ValueError:
                pass
            if not slot:
                del self._buckets[bucket]
        self._remove_flat(addr)

    def _remove_flat(self, addr: NetAddr) -> None:
        index = self._pos.pop(addr, None)
        if index is None:
            return
        last = self._flat.pop()
        if last != addr:
            self._flat[index] = last
            self._pos[last] = index

    def random_addr(self) -> Optional[NetAddr]:
        if not self._flat:
            return None
        return self._flat[self._rng.randrange(len(self._flat))]

    def sample(self, count: int) -> List[NetAddr]:
        count = min(count, len(self._flat))
        return self._rng.sample(self._flat, count)

    def all_addresses(self) -> List[NetAddr]:
        return list(self._flat)


class AddrMan:
    """The address manager of one node."""

    def __init__(
        self,
        rng: random.Random,
        new_buckets: int = cfg.ADDRMAN_NEW_BUCKET_COUNT,
        tried_buckets: int = cfg.ADDRMAN_TRIED_BUCKET_COUNT,
        bucket_size: int = cfg.ADDRMAN_BUCKET_SIZE,
        horizon_days: float = cfg.ADDRMAN_HORIZON_DAYS,
        key: int = 0,
    ) -> None:
        self._rng = rng
        self._key = key
        self.horizon = horizon_days * DAYS
        self._info: Dict[NetAddr, AddrInfo] = {}
        self._new = _Table(new_buckets, bucket_size, rng)
        self._tried = _Table(tried_buckets, bucket_size, rng)
        # Bucket indices are pure functions of the (keyed) SHA-256 in
        # derive_seed, so memoising them changes no placement — it only
        # skips re-hashing on every ADDR gossip record.  Keys are small:
        # netgroup pairs for new, one entry per promoted address for tried.
        self._new_bucket_cache: Dict[tuple, int] = {}
        self._tried_bucket_cache: Dict[NetAddr, int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def new_count(self) -> int:
        """Addresses currently in the new table."""
        return len(self._new)

    @property
    def tried_count(self) -> int:
        """Addresses currently in the tried table."""
        return len(self._tried)

    def __len__(self) -> int:
        return len(self._info)

    def __contains__(self, addr: NetAddr) -> bool:
        return addr in self._info

    def info(self, addr: NetAddr) -> Optional[AddrInfo]:
        """The bookkeeping record for ``addr``, or None if unknown."""
        return self._info.get(addr)

    def all_addresses(self) -> List[NetAddr]:
        """Every address in either table."""
        return list(self._info)

    # ------------------------------------------------------------------
    # Bucketing
    # ------------------------------------------------------------------
    def _new_bucket(self, addr: NetAddr, source: Optional[NetAddr]) -> int:
        source_group = source.group16 if source is not None else 0
        key = (addr.group16, source_group)
        bucket = self._new_bucket_cache.get(key)
        if bucket is None:
            bucket = (
                derive_seed(self._key, f"new:{key[0]}:{source_group}")
                % self._new.bucket_count
            )
            self._new_bucket_cache[key] = bucket
        return bucket

    def _tried_bucket(self, addr: NetAddr) -> int:
        bucket = self._tried_bucket_cache.get(addr)
        if bucket is None:
            bucket = (
                derive_seed(self._key, f"tried:{addr.ip}:{addr.port}")
                % self._tried.bucket_count
            )
            self._tried_bucket_cache[addr] = bucket
        return bucket

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(
        self,
        addr: NetAddr,
        now: float,
        source: Optional[NetAddr] = None,
        timestamp: Optional[float] = None,
    ) -> bool:
        """Learn ``addr`` (ADDR gossip / DNS seed).  True if newly added.

        An address already known only has its gossiped timestamp refreshed
        (Core applies a similar update rule); a new address lands in the
        new table, evicting a random occupant of a full bucket.
        """
        stamp = now if timestamp is None else min(timestamp, now + 600.0)
        existing = self._info.get(addr)
        if existing is not None:
            if stamp > existing.timestamp:
                existing.timestamp = stamp
            return False
        info = AddrInfo(addr=addr, source=source, timestamp=stamp)
        info.bucket = self._new_bucket(addr, source)
        evicted = self._new.insert(addr, info.bucket)
        if evicted is not None:
            self._info.pop(evicted, None)
        self._info[addr] = info
        return True

    def attempt(self, addr: NetAddr, now: float) -> None:
        """Record a connection attempt to ``addr``."""
        info = self._info.get(addr)
        if info is None:
            return
        info.last_try = now
        info.attempts += 1

    def good(self, addr: NetAddr, now: float) -> None:
        """Record a successful connection: promote ``addr`` to tried."""
        info = self._info.get(addr)
        if info is None:
            # Learned through an inbound path we never gossiped; adopt it.
            self.add(addr, now)
            info = self._info[addr]
        info.last_success = now
        info.last_try = now
        info.timestamp = now
        info.attempts = 0
        if info.in_tried:
            return
        self._new.remove(addr, info.bucket)
        info.in_tried = True
        info.bucket = self._tried_bucket(addr)
        evicted = self._tried.insert(addr, info.bucket)
        if evicted is not None:
            # Core moves the displaced tried entry back to new; we follow.
            displaced = self._info.get(evicted)
            if displaced is not None:
                displaced.in_tried = False
                displaced.bucket = self._new_bucket(evicted, displaced.source)
                re_evicted = self._new.insert(evicted, displaced.bucket)
                if re_evicted is not None:
                    self._info.pop(re_evicted, None)

    def remove(self, addr: NetAddr) -> None:
        """Forget ``addr`` entirely."""
        info = self._info.pop(addr, None)
        if info is None:
            return
        table = self._tried if info.in_tried else self._new
        table.remove(addr, info.bucket)

    # ------------------------------------------------------------------
    # Selection (outbound targets)
    # ------------------------------------------------------------------
    def select(self, now: float, new_only: bool = False) -> Optional[NetAddr]:
        """Pick an outbound-connection candidate.

        Core's rule: with both tables non-empty, flip a fair coin between
        them — crucially *without* any reachability information.  Terrible
        entries encountered during selection are evicted and the draw
        retried a bounded number of times.
        """
        for _ in range(8):
            if new_only:
                use_tried = False
            elif len(self._tried) == 0:
                use_tried = False
            elif len(self._new) == 0:
                use_tried = True
            else:
                use_tried = self._rng.random() < 0.5
            table = self._tried if use_tried else self._new
            addr = table.random_addr()
            if addr is None:
                return None
            info = self._info[addr]
            if info.is_terrible(now, self.horizon):
                self.remove(addr)
                continue
            return addr
        return None

    # ------------------------------------------------------------------
    # GETADDR responses
    # ------------------------------------------------------------------
    def get_addr(
        self,
        now: float,
        max_count: int = cfg.ADDR_RESPONSE_MAX,
        max_pct: int = cfg.ADDR_RESPONSE_MAX_PCT,
        tried_only: bool = False,
    ) -> List[TimestampedAddr]:
        """Sample addresses for an ADDR response.

        ``tried_only`` implements the §V addressing refinement.  Terrible
        addresses discovered during sampling are evicted and skipped, so a
        GETADDR-heavy workload also ages the tables (as in Core).
        """
        if tried_only:
            pool = self._tried.all_addresses()
        else:
            pool = self._new.all_addresses() + self._tried.all_addresses()
        limit = min(max_count, max(1, len(pool) * max_pct // 100)) if pool else 0
        self._rng.shuffle(pool)
        out: List[TimestampedAddr] = []
        for addr in pool:
            if len(out) >= limit:
                break
            info = self._info[addr]
            if info.is_terrible(now, self.horizon):
                self.remove(addr)
                continue
            out.append(TimestampedAddr(addr=addr, timestamp=info.timestamp))
        return out

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def evict_terrible(self, now: float) -> int:
        """Proactively evict every terrible address.  Returns the count.

        Core does this lazily; the explicit sweep exists for experiments
        that measure table composition after a horizon change (§V).
        """
        victims = [
            addr
            for addr, info in self._info.items()
            if info.is_terrible(now, self.horizon)
        ]
        for addr in victims:
            self.remove(addr)
        return len(victims)
