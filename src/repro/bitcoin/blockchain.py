"""Simulated blocks and the per-node chain state.

Blocks carry opaque integer ids instead of hashes — the study is about
*propagation*, not proof-of-work — but the chain keeps real parent links,
heights, and orphan handling so that out-of-order delivery (common under
round-robin relay) behaves as in Bitcoin Core: a block whose parent is
unknown is parked and connected when the parent arrives.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..errors import ChainError

#: The id of the genesis block's (non-existent) parent.
NO_PARENT = -1

#: Genesis block id, shared by every node.
GENESIS_ID = 0


@dataclass(frozen=True)
class Block:
    """One block: identity, parentage, and payload summary."""

    block_id: int
    prev_id: int
    height: int
    created_at: float
    txids: Tuple[int, ...] = ()
    #: Serialized size in bytes (header + transactions).
    size: int = 80

    @property
    def is_genesis(self) -> bool:
        return self.prev_id == NO_PARENT


def make_genesis() -> Block:
    """The genesis block every simulated chain starts from."""
    return Block(
        block_id=GENESIS_ID, prev_id=NO_PARENT, height=0, created_at=0.0
    )


class Blockchain:
    """A node's view of the block tree.

    Tracks every known block, the best tip (highest block, first-seen wins
    ties — Nakamoto's rule), and orphans awaiting their parent.
    """

    def __init__(self, genesis: Optional[Block] = None) -> None:
        genesis = genesis if genesis is not None else make_genesis()
        if not genesis.is_genesis:
            raise ChainError("genesis block must have no parent")
        self._blocks: Dict[int, Block] = {genesis.block_id: genesis}
        self._by_height: Dict[int, int] = {genesis.height: genesis.block_id}
        self._orphans: Dict[int, List[Block]] = {}
        self.tip: Block = genesis

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def height(self) -> int:
        """Height of the best tip."""
        return self.tip.height

    def __contains__(self, block_id: int) -> bool:
        return block_id in self._blocks

    def __len__(self) -> int:
        return len(self._blocks)

    def get(self, block_id: int) -> Optional[Block]:
        return self._blocks.get(block_id)

    def block_at_height(self, height: int) -> Optional[Block]:
        """The main-chain block at ``height`` (if known)."""
        block_id = self._by_height.get(height)
        return self._blocks.get(block_id) if block_id is not None else None

    def ids_above(self, from_height: int, limit: int) -> List[int]:
        """Main-chain block ids strictly above ``from_height``.

        Serves GETBLOCKS: the inventory a syncing peer needs next.
        """
        out: List[int] = []
        height = from_height + 1
        while len(out) < limit:
            block_id = self._by_height.get(height)
            if block_id is None:
                break
            out.append(block_id)
            height += 1
        return out

    @property
    def orphan_count(self) -> int:
        return sum(len(waiting) for waiting in self._orphans.values())

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_block(self, block: Block) -> bool:
        """Accept ``block`` into the tree.

        Returns True if the block extended our best chain (i.e. the tip
        advanced), which is a relay trigger for the node.  A block whose
        parent is unknown is stored as an orphan and connected later.
        Duplicate blocks are ignored.
        """
        if block.block_id in self._blocks:
            return False
        if block.is_genesis:
            raise ChainError("cannot add a second genesis block")
        if block.prev_id not in self._blocks:
            self._orphans.setdefault(block.prev_id, []).append(block)
            return False
        return self._connect(block)

    def _connect(self, block: Block) -> bool:
        parent = self._blocks[block.prev_id]
        if block.height != parent.height + 1:
            raise ChainError(
                f"block {block.block_id} claims height {block.height}, "
                f"parent is at {parent.height}"
            )
        self._blocks[block.block_id] = block
        advanced = False
        if block.height > self.tip.height:
            self.tip = block
            self._by_height[block.height] = block.block_id
            advanced = True
        # Connect any orphans that were waiting for this block.
        for orphan in self._orphans.pop(block.block_id, ()):  # noqa: B020
            if self._connect(orphan):
                advanced = True
        return advanced
