"""The node-behavior contract shared by every simulated peer tier.

A *node behavior* is anything the transport can hand a connection or a
message to.  Two tiers implement it:

* :class:`~repro.bitcoin.node.BitcoinNode` — the **full** tier: addrman,
  blockchain, mempool, the round-robin handler engine, relay.  One
  instance costs on the order of a hundred kilobytes; protocol scenarios
  use it for the measured vantage and the reachable network.
* :class:`~repro.bitcoin.light.LightNode` — the **light** tier: a thin
  version/verack/ping/addr/getaddr surface with O(1) per-node state,
  used for the statistical unreachable cloud that the paper only ever
  observes from the outside (probes and address gossip).

The split mirrors the paper's measurement reality: the vantage point and
its reachable peers are observed at protocol fidelity, while the ~24x
larger unreachable population is characterised purely by how it answers
unsolicited packets (Wang & Pustogarov; Grundmann et al.).  Calibration
metrics are therefore drawn only from full-tier nodes.

The contract is duck-typed — the transport never isinstance-checks — but
the base class pins the attribute names down and supplies the inert
defaults so a tier only overrides what it actually does:

* ``fidelity`` — ``"full"`` or ``"light"``; scenario census and the
  run-store config keys read this.
* ``running`` / ``start()`` / ``stop()`` — lifecycle.
* ``on_inbound_connection(socket) -> bool`` — accept or refuse.
* ``on_message(socket, message)`` / ``on_disconnect(socket)`` — the
  connection-handler half of the transport contract.
"""

from __future__ import annotations

from typing import Any

from ..simnet.addresses import NetAddr
from ..simnet.transport import Socket

#: Tier tags, also used in scenario configs and run-store keys.
FIDELITY_FULL = "full"
FIDELITY_LIGHT = "light"


class NodeBehavior:
    """Base class for per-address protocol behaviors (node tiers).

    Deliberately carries **no** instance state and declares empty
    ``__slots__``: the light tier packs its whole state into a handful
    of slots, and a ``__dict__`` smuggled in through the base class
    would silently cost more than everything else combined.
    """

    __slots__ = ()

    #: Tier tag; subclasses override.
    fidelity: str = FIDELITY_FULL

    # -- lifecycle ------------------------------------------------------
    @property
    def is_light(self) -> bool:
        return self.fidelity == FIDELITY_LIGHT

    def start(self) -> None:
        """Bring the behavior online (register with the transport)."""
        raise NotImplementedError

    def stop(self) -> None:
        """Take the behavior offline."""
        raise NotImplementedError

    # -- transport contract ---------------------------------------------
    def on_inbound_connection(self, socket: Socket) -> bool:
        """Accept (True) or refuse an inbound connection."""
        return False

    def on_message(self, socket: Socket, message: Any) -> None:
        """A message arrived on an established connection."""

    def on_disconnect(self, socket: Socket) -> None:
        """The remote side (or the network) closed the connection."""


def describe_tier(behavior: Any) -> str:
    """``"full"``/``"light"`` for census lines; tolerant of duck types."""
    fidelity = getattr(behavior, "fidelity", None)
    if fidelity in (FIDELITY_FULL, FIDELITY_LIGHT):
        return fidelity
    return FIDELITY_FULL


def validate_fidelity(fidelity: str) -> str:
    """Normalise a scenario-level fidelity knob value.

    Scenario configs accept ``"full"`` (every peer is a
    :class:`BitcoinNode` and the unreachable cloud is raw probe-behavior
    table entries) or ``"hybrid"`` (reachable stays full tier, the
    unreachable cloud becomes registered light-tier endpoints).  The
    value is part of run-store keys, so unknown strings fail loudly.
    """
    if fidelity not in ("full", "hybrid"):
        raise ValueError(
            f"unknown fidelity {fidelity!r} (want 'full' or 'hybrid')"
        )
    return fidelity


__all__ = [
    "FIDELITY_FULL",
    "FIDELITY_LIGHT",
    "NodeBehavior",
    "describe_tier",
    "validate_fidelity",
]
