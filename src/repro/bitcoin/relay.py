"""Relay-order policy and relay-time measurement.

``relay_order`` encodes the difference between baseline Bitcoin Core —
which iterates connections in arrival order, without distinguishing
inbound (possibly unreachable) from outbound (always reachable) peers —
and the §V refinement that serves outbound connections first.

:class:`RelayTracker` records, for each block or transaction a node
receives, the time of first receipt and the time each relay copy finished
leaving the uplink.  ``last - first`` is exactly the paper's "relaying
time" (Figs. 10 and 11): the window during which late connections sit
behind the blockchain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from .peer import Peer


def relay_order(peers: Iterable[Peer], outbound_first: bool) -> List[Peer]:
    """Order peers for a relay pass.

    Baseline: arrival order (the order the node's peer map yields).
    §V policy: all outbound peers first, then inbound — outbound links are
    guaranteed to be reachable nodes, which propagate further.
    """
    peer_list = list(peers)
    if not outbound_first:
        return peer_list
    return sorted(peer_list, key=lambda peer: peer.is_inbound)


@dataclass
class RelayRecord:
    """Timing of one item's journey through a node."""

    item_id: int
    kind: str  # "block" or "tx"
    first_seen: float
    #: Completion time of each relay copy (uplink departure).
    relay_times: List[float] = field(default_factory=list)
    #: Number of connections the item was queued to.
    enqueued_to: int = 0

    @property
    def last_relay(self) -> Optional[float]:
        return max(self.relay_times) if self.relay_times else None

    @property
    def relaying_time(self) -> Optional[float]:
        """The paper's metric: last-connection relay time minus receipt."""
        last = self.last_relay
        return None if last is None else last - self.first_seen

    def relaying_time_within(self, cutoff: float) -> Optional[float]:
        """Relaying time over the initial relay wave only.

        Sends more than ``cutoff`` seconds after first receipt are serving
        late requests (a peer's initial block download, hours-later
        GETDATA), not the §IV-C relay wave, and are excluded.
        """
        wave = [
            t for t in self.relay_times if t - self.first_seen <= cutoff
        ]
        return max(wave) - self.first_seen if wave else None


class RelayTracker:
    """Collects :class:`RelayRecord` per item for one node."""

    def __init__(self) -> None:
        self._records: Dict[int, RelayRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def saw(self, item_id: int, kind: str, now: float) -> None:
        """Record first receipt of an item (idempotent)."""
        if item_id not in self._records:
            self._records[item_id] = RelayRecord(
                item_id=item_id, kind=kind, first_seen=now
            )

    def enqueued(self, item_id: int) -> None:
        record = self._records.get(item_id)
        if record is not None:
            record.enqueued_to += 1

    def relayed(self, item_id: int, now: float) -> None:
        """Record one relay copy leaving the uplink."""
        record = self._records.get(item_id)
        if record is not None:
            record.relay_times.append(now)

    def records(self, kind: Optional[str] = None) -> List[RelayRecord]:
        """All records, optionally filtered to "block" or "tx"."""
        out = list(self._records.values())
        if kind is not None:
            out = [record for record in out if record.kind == kind]
        return out

    def relaying_times(
        self, kind: Optional[str] = None, cutoff: float = 60.0
    ) -> List[float]:
        """Per-item relaying times (the Fig. 10/11 series).

        ``cutoff`` bounds the relay wave; see
        :meth:`RelayRecord.relaying_time_within`.
        """
        out: List[float] = []
        for record in self.records(kind):
            value = record.relaying_time_within(cutoff)
            if value is not None and record.enqueued_to > 0:
                out.append(value)
        return out
