"""Bitcoin wire-protocol messages.

Messages are plain dataclasses rather than byte strings: the simulation
cares about *which* messages flow, their ordering through the round-robin
handler, and their *sizes* (which drive transmission delay), not their
exact serialization.  ``wire_size`` approximates the serialized size in
bytes including the 24-byte P2P header.

The set covers everything the paper's analysis touches: the version
handshake, address gossip (GETADDR/ADDR), inventory announcement and
download (INV/GETDATA/BLOCK/TX), the BIP152 compact-block path
(SENDCMPCT/CMPCTBLOCK/GETBLOCKTXN/BLOCKTXN), simple block-locator sync
(GETBLOCKS), and keepalives (PING/PONG).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

from ..simnet.addresses import NetAddr, TimestampedAddr
from .blockchain import Block

#: P2P message header: magic + command + length + checksum.
HEADER_SIZE = 24
#: Serialized size of one (services, ip, port, time) address record.
ADDR_RECORD_SIZE = 30
#: Serialized size of one inventory vector (type + hash).
INV_RECORD_SIZE = 36
#: Short transaction id size in a compact block.
SHORTID_SIZE = 6
#: Block header size.
BLOCK_HEADER_SIZE = 80


class InvType(enum.Enum):
    """Inventory vector types (subset relevant to the study)."""

    TX = 1
    BLOCK = 2


@dataclass(frozen=True, slots=True)
class InvItem:
    """One inventory vector: the type and the object id."""

    type: InvType
    object_id: int


class Message:
    """Base class; subclasses define ``command`` and ``wire_size``.

    Messages are the most-allocated objects in a protocol run, so the
    subclasses are slotted dataclasses.  The empty ``__slots__`` here is
    load-bearing: without it every subclass instance would still carry a
    ``__dict__`` inherited from this base.
    """

    __slots__ = ()

    command: str = "?"

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE

    def __repr__(self) -> str:  # concise, used in debug traces
        return f"<{self.command}>"


@dataclass(repr=False, slots=True)
class Version(Message):
    """VERSION: opens the handshake; carries the sender's chain height."""

    command = "version"
    sender: NetAddr
    receiver: NetAddr
    start_height: int
    user_agent: str = "/repro:1.0/"
    nonce: int = 0

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 85 + len(self.user_agent)


@dataclass(repr=False, slots=True)
class Verack(Message):
    """VERACK: completes the handshake."""

    command = "verack"


@dataclass(repr=False, slots=True)
class GetAddr(Message):
    """GETADDR: request a sample of the peer's addrman."""

    command = "getaddr"


@dataclass(repr=False, slots=True)
class Addr(Message):
    """ADDR: gossip of (address, last-seen) records (≤1000)."""

    command = "addr"
    addresses: Tuple[TimestampedAddr, ...]

    def __post_init__(self) -> None:
        if len(self.addresses) > 1000:
            raise ValueError(
                f"ADDR carries at most 1000 addresses, got {len(self.addresses)}"
            )

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 3 + ADDR_RECORD_SIZE * len(self.addresses)


@dataclass(repr=False, slots=True)
class Inv(Message):
    """INV: announce inventory (new blocks / transactions)."""

    command = "inv"
    items: Tuple[InvItem, ...]

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 3 + INV_RECORD_SIZE * len(self.items)


@dataclass(repr=False, slots=True)
class GetData(Message):
    """GETDATA: request full objects previously announced via INV."""

    command = "getdata"
    items: Tuple[InvItem, ...]

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 3 + INV_RECORD_SIZE * len(self.items)


@dataclass(repr=False, slots=True)
class TxMsg(Message):
    """TX: a full transaction (opaque payload of ``size`` bytes)."""

    command = "tx"
    txid: int
    size: int = 350

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + self.size


@dataclass(repr=False, slots=True)
class BlockMsg(Message):
    """BLOCK: a full block (header + all transactions).

    Carries the simulated :class:`~repro.bitcoin.blockchain.Block` object;
    ``wire_size`` reflects the block's serialized size.
    """

    command = "block"
    block: "Block"

    @property
    def block_id(self) -> int:
        return self.block.block_id

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + self.block.size


@dataclass(repr=False, slots=True)
class SendCmpct(Message):
    """SENDCMPCT (BIP152): negotiate compact-block relay.

    ``high_bandwidth`` peers push CMPCTBLOCK without a prior INV.
    """

    command = "sendcmpct"
    high_bandwidth: bool = False

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 9


@dataclass(repr=False, slots=True)
class CmpctBlock(Message):
    """CMPCTBLOCK (BIP152): header plus short ids of the block's txs.

    The receiver reconstructs the block from its mempool and requests any
    missing transactions via GETBLOCKTXN.
    """

    command = "cmpctblock"
    block: "Block"

    @property
    def block_id(self) -> int:
        return self.block.block_id

    @property
    def txids(self) -> Tuple[int, ...]:
        return self.block.txids

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + BLOCK_HEADER_SIZE + SHORTID_SIZE * len(self.block.txids)


@dataclass(repr=False, slots=True)
class GetBlockTxn(Message):
    """GETBLOCKTXN (BIP152): request txs missing from the mempool."""

    command = "getblocktxn"
    block_id: int
    txids: Tuple[int, ...]

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 8 + 4 * len(self.txids)


@dataclass(repr=False, slots=True)
class BlockTxn(Message):
    """BLOCKTXN (BIP152): the requested transactions."""

    command = "blocktxn"
    block_id: int
    txids: Tuple[int, ...]
    total_size: int

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 8 + self.total_size


@dataclass(repr=False, slots=True)
class GetBlocks(Message):
    """GETBLOCKS: ask for block inventory above ``from_height``.

    A simplified block locator: heights are unambiguous because the
    simulated chain never reorganises more than a step at a time.
    """

    command = "getblocks"
    from_height: int

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 37


@dataclass(repr=False, slots=True)
class Ping(Message):
    """PING keepalive."""

    command = "ping"
    nonce: int = 0

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 8


@dataclass(repr=False, slots=True)
class Pong(Message):
    """PONG keepalive reply."""

    command = "pong"
    nonce: int = 0

    @property
    def wire_size(self) -> int:
        return HEADER_SIZE + 8


#: Shared instances of the stateless messages.  VERACK/GETADDR carry no
#: fields and PONG0 answers a zero-nonce ping, so every sender can reuse
#: one immutable-in-practice object instead of allocating per call —
#: ADDR gossip alone sends hundreds of thousands of VERACKs per scale
#: run.  The sharing is unconditional (not tied to the fast-path
#: toggle): the canonical pickler memoizes repeated objects, so snapshot
#: bytes stay independent of which code path enqueued the message.
VERACK = Verack()
GETADDR = GetAddr()
PONG0 = Pong()
