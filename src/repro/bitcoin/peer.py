"""Per-connection protocol state.

A :class:`Peer` is one side of one established connection, holding exactly
the structures the paper reverse-engineered from ``net.cpp`` (Fig. 9):

* ``process_queue`` — the per-peer ``vProcessMsg`` filled by the socket
  handler and drained one message per round-robin pass;
* ``send_queue`` — the per-peer ``vSendMessage`` filled by message
  processing and drained one message per socket-handler pass.

Everything else is handshake and relay bookkeeping (known inventory,
trickle timers, compact-block negotiation).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Optional, Set

from ..simnet.addresses import NetAddr
from ..simnet.transport import Socket
from .messages import Message

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .handler import HandlerLoop


class Peer:
    """One established connection, from this node's point of view."""

    __slots__ = (
        "loop",
        "socket",
        "remote_addr",
        "is_inbound",
        "version_received",
        "verack_received",
        "established",
        "remote_height",
        "process_queue",
        "send_queue",
        "known_blocks",
        "known_txs",
        "known_addrs",
        "pending_tx_invs",
        "next_tx_inv_at",
        "wants_cmpct_hb",
        "sent_getaddr",
        "served_getaddr",
        "addr_messages_received",
        "addrs_received",
        "reachable_addrs_received",
        "connected_at",
        "blocks_in_flight",
    )

    def __init__(
        self,
        socket: Socket,
        connected_at: float,
        loop: Optional["HandlerLoop"] = None,
    ) -> None:
        #: The owning node's handler loop; enqueues register this peer in
        #: its dirty maps so a pass only visits peers with queued work.
        self.loop = loop
        self.socket = socket
        self.remote_addr: NetAddr = socket.remote_addr
        self.is_inbound: bool = socket.is_inbound
        self.version_received = False
        self.verack_received = False
        self.established = False
        #: Chain height the peer claimed in its VERSION message.
        self.remote_height = -1
        #: vProcessMsg: messages received, awaiting the handler thread.
        self.process_queue: Deque[Message] = deque()
        #: vSendMessage: responses awaiting the socket handler.
        self.send_queue: Deque[Message] = deque()
        #: Inventory this peer is known to have (suppress re-announcement).
        self.known_blocks: Set[int] = set()
        self.known_txs: Set[int] = set()
        self.known_addrs: Set[NetAddr] = set()
        #: Transactions queued behind the Poisson trickle timer.
        self.pending_tx_invs: Set[int] = set()
        #: When the trickle timer next fires (absolute sim time).
        self.next_tx_inv_at: float = 0.0
        #: Peer negotiated high-bandwidth BIP152 (push CMPCTBLOCK directly).
        self.wants_cmpct_hb = False
        #: We already sent GETADDR on this connection.
        self.sent_getaddr = False
        #: We already answered a GETADDR from this peer (Core ignores repeats).
        self.served_getaddr = False
        #: ADDR accounting used by the malicious-peer detector (§IV-B).
        self.addr_messages_received = 0
        self.addrs_received = 0
        self.reachable_addrs_received = 0
        self.connected_at = connected_at
        #: Block ids we have requested from this peer and not yet received.
        self.blocks_in_flight: Set[int] = set()

    @property
    def direction(self) -> str:
        return "inbound" if self.is_inbound else "outbound"

    def enqueue_send(self, message: Message, to_front: bool = False) -> None:
        """Append a message to vSendMessage (front-insert for §V priority)."""
        if to_front:
            self.send_queue.appendleft(message)
        else:
            self.send_queue.append(message)
        loop = self.loop
        if loop is not None:
            loop.dirty_send[self] = None

    def enqueue_process(self, message: Message) -> None:
        """Append a received message to vProcessMsg (socket-handler side)."""
        self.process_queue.append(message)
        loop = self.loop
        if loop is not None:
            loop.dirty_process[self] = None

    def __repr__(self) -> str:
        state = "established" if self.established else "handshaking"
        return f"Peer({self.remote_addr}, {self.direction}, {state})"
