"""Protocol constants and node configuration.

The defaults mirror Bitcoin Core v0.20.1, the version the paper inspected
(§IV-B, §IV-C): 8 outbound + 117 inbound slots, 2 feeler connections tried
every two minutes, addrman ``new``/``tried`` tables with the 30-day /
10-failure eviction rules, ADDR responses capped at 1000 addresses, and a
round-robin message handler.

:class:`PolicyConfig` names a registered protocol-policy variant plus its
parameters (see :mod:`repro.bitcoin.policy`).  The three §V refinements
remain spellable as the legacy boolean/float keywords — they canonicalize
onto the equivalent variant, so old configs parse, behave, and *key* (in
the run store) identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..units import DAYS, MiB

# ---------------------------------------------------------------------------
# Connection limits (paper §III-A, "Default Connection Limits")
# ---------------------------------------------------------------------------

#: Full-relay outbound connections a node maintains.
MAX_OUTBOUND = 8
#: Inbound slots of a reachable node (125 total minus 8 outbound).
MAX_INBOUND = 117
#: Interval between feeler-connection attempts (seconds).
FEELER_INTERVAL = 120.0

# ---------------------------------------------------------------------------
# Addrman (Bitcoin Core addrman.h)
# ---------------------------------------------------------------------------

ADDRMAN_NEW_BUCKET_COUNT = 1024
ADDRMAN_TRIED_BUCKET_COUNT = 256
ADDRMAN_BUCKET_SIZE = 64
#: Days after which an address we have not seen is evicted ("horizon").
ADDRMAN_HORIZON_DAYS = 30.0
#: Failed attempts after which a never-successful address is terrible.
ADDRMAN_RETRIES = 3
#: Failures over MIN_FAIL_DAYS after which a known address is terrible.
ADDRMAN_MAX_FAILURES = 10
ADDRMAN_MIN_FAIL_DAYS = 7.0
#: GETADDR responses return at most this many addresses...
ADDR_RESPONSE_MAX = 1000
#: ...and at most this percentage of the addrman contents.
ADDR_RESPONSE_MAX_PCT = 23

# ---------------------------------------------------------------------------
# Relay
# ---------------------------------------------------------------------------

#: Target block interval (Poisson mining process).
BLOCK_INTERVAL = 600.0
#: Maximum block ids in one inv reply to GETBLOCKS.
MAX_BLOCKS_IN_TRANSIT = 16
#: Maximum addresses forwarded from one unsolicited ADDR announcement.
ADDR_FORWARD_MAX = 10
#: Peers an unsolicited small ADDR announcement is forwarded to.
ADDR_FORWARD_FANOUT = 2


#: The legacy §V keywords, accepted by ``PolicyConfig(...)`` and
#: ``PolicyConfig.from_dict`` for backward compatibility.
_LEGACY_KNOBS = (
    "addr_from_tried_only",
    "tried_horizon_days",
    "prioritize_block_relay",
)


@dataclass(init=False)
class PolicyConfig:
    """A serializable reference to a registered protocol-policy variant.

    Canonical state is two fields — ``variant`` (a registry name) and
    ``params`` (overrides of that variant's knob defaults) — which is
    exactly what flows through :func:`dataclasses.asdict` into run-store
    and serve-submission keys.  Construction canonicalizes eagerly (see
    :func:`repro.bitcoin.policy.registry.resolve`), so two configs with
    equal behavior compare equal and key identically, whichever spelling
    built them.

    The pre-registry API is preserved: the three §V refinements remain
    spellable as keywords (``PolicyConfig(addr_from_tried_only=True)``)
    and readable as properties; both map onto the effective knobs of the
    resolved variant.
    """

    #: Registered variant name (``repro.bitcoin.policy.variant_names()``).
    variant: str = "baseline"
    #: Knob overrides; canonicalized to the non-default subset.
    params: Dict[str, Any] = field(default_factory=dict)

    def __init__(
        self,
        variant: str = "baseline",
        params: Optional[Mapping[str, Any]] = None,
        *,
        addr_from_tried_only: Optional[bool] = None,
        tried_horizon_days: Optional[float] = None,
        prioritize_block_relay: Optional[bool] = None,
    ) -> None:
        merged: Dict[str, Any] = dict(params) if params else {}
        for knob, value in (
            ("addr_from_tried_only", addr_from_tried_only),
            ("tried_horizon_days", tried_horizon_days),
            ("prioritize_block_relay", prioritize_block_relay),
        ):
            if value is None:
                continue
            if knob in merged and merged[knob] != value:
                raise ValueError(
                    f"policy knob {knob!r} given both as a param "
                    f"({merged[knob]!r}) and a keyword ({value!r})"
                )
            merged[knob] = value
        # Deferred import: the registry's builtin variants read protocol
        # constants from this module.
        from .policy.registry import resolve

        self.variant, self.params, self._knobs = resolve(variant, merged)

    # -- legacy §V reads ------------------------------------------------
    @property
    def addr_from_tried_only(self) -> bool:
        """§V "Refining the Addressing Protocol": tried-only GETADDR."""
        return self._knobs["addr_from_tried_only"]

    @property
    def tried_horizon_days(self) -> float:
        """§V "Refining the tried Table": eviction horizon in days."""
        return self._knobs["tried_horizon_days"]

    @property
    def prioritize_block_relay(self) -> bool:
        """§V "Prioritizing Block Relay": outbound-first, front-of-queue."""
        return self._knobs["prioritize_block_relay"]

    def label(self) -> str:
        """Short tag for benchmark tables, e.g. ``"tried-only+17d"``."""
        if self.variant in ("baseline", "improved"):
            parts = []
            if self.addr_from_tried_only:
                parts.append("tried-only")
            if self.tried_horizon_days != ADDRMAN_HORIZON_DAYS:
                parts.append(f"{self.tried_horizon_days:g}d")
            if self.prioritize_block_relay:
                parts.append("block-prio")
            return "+".join(parts) if parts else "baseline"
        extras = [
            f"{knob}={value:g}" if isinstance(value, float) else f"{knob}={value}"
            for knob, value in sorted(self.params.items())
        ]
        return "+".join([self.variant, *extras])

    @classmethod
    def improved(cls) -> "PolicyConfig":
        """All three §V refinements enabled."""
        return cls(variant="improved")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PolicyConfig":
        """Parse canonical (``variant``/``params``) or legacy keys.

        Strict: unknown top-level keys are rejected, as are unknown
        variants and params (via canonicalization) — a typo must fail
        the submission, not silently default and alias a cache key.
        """
        remaining = dict(data)
        variant = remaining.pop("variant", "baseline")
        params = remaining.pop("params", None)
        legacy = {
            knob: remaining.pop(knob) for knob in _LEGACY_KNOBS if knob in remaining
        }
        if remaining:
            raise ValueError(
                f"unknown PolicyConfig keys {sorted(remaining)} "
                f"(expected variant/params or legacy {list(_LEGACY_KNOBS)})"
            )
        return cls(variant, params, **legacy)


@dataclass
class NodeConfig:
    """Tunable parameters of a simulated Bitcoin node."""

    # --- connections ---
    max_outbound: int = MAX_OUTBOUND
    max_inbound: int = MAX_INBOUND
    #: Whether the node listens (reachable) or not (behind NAT).
    listen: bool = True
    #: Pause between outbound connection attempts (ThreadOpenConnections
    #: sleeps 500 ms between iterations).
    connect_retry_interval: float = 0.5
    #: TCP connect timeout for silent targets.
    connect_timeout: float = 5.0
    feeler_interval: float = FEELER_INTERVAL
    feelers_enabled: bool = True
    #: Mean lifetime of an outbound connection before it drops
    #: spontaneously (peer-side eviction, NAT timeout, link failure).
    #: None disables.  The paper's Fig. 6 trace — connections oscillating
    #: 2-10 with a 6.67 mean — implies drops on this order.
    connection_lifetime_mean: "float | None" = None

    # --- message handler (paper Fig. 9 / Alg. 3) ---
    #: Idle sleep of the message-handler thread between passes.
    handler_interval: float = 0.100
    #: CPU cost charged per processed message, by command (seconds).
    #: Anything absent falls back to ``default_proc_time``.
    proc_times: dict = field(
        default_factory=lambda: {
            "block": 0.060,
            "cmpctblock": 0.015,
            "blocktxn": 0.030,
            "addr": 0.004,
            "getaddr": 0.006,
            "tx": 0.002,
        }
    )
    default_proc_time: float = 0.001
    #: Upload bandwidth serializing all sends (bytes/second).  1.25 MB/s
    #: approximates the 10 Mbit/s uplink of a 2020 home node.
    uplink_bandwidth: float = 1.25 * MiB

    # --- addressing ---
    addrman_new_buckets: int = ADDRMAN_NEW_BUCKET_COUNT
    addrman_tried_buckets: int = ADDRMAN_TRIED_BUCKET_COUNT
    addrman_bucket_size: int = ADDRMAN_BUCKET_SIZE
    #: Send GETADDR on every new outbound connection (Core behaviour).
    getaddr_on_connect: bool = True
    #: Whether repeated GETADDR from the same peer is answered.  Core
    #: v0.20.1 ignores repeats, but the paper's crawler harvested tables
    #: through repeated requests across reconnects; the crawler reconnects,
    #: so both settings are observable.  Default False = Core behaviour.
    serve_repeated_getaddr: bool = False
    #: If set, this node sends GETADDR to every established peer on this
    #: period — the request load that queues ahead of blocks in
    #: vSendMessage (the §IV-C head-of-line scenario).  None disables.
    getaddr_repeat_interval: "float | None" = None
    #: PING keepalive period (Core pings every ~2 minutes).  None
    #: disables; the default keeps simulations lean since idle links
    #: never fail in-sim unless connection_lifetime_mean says so.
    ping_interval: "float | None" = None

    # --- relay ---
    #: Mean of the Poisson tx-inv trickle timer for outbound peers.
    tx_inv_interval_outbound: float = 2.0
    #: Mean of the Poisson tx-inv trickle timer for inbound peers.
    tx_inv_interval_inbound: float = 5.0
    #: Use BIP152 compact blocks with established peers.
    compact_blocks: bool = True
    #: Fraction of peers negotiating high-bandwidth compact-block mode
    #: (by 2020 most of the network relayed blocks compactly).
    hb_compact_fraction: float = 0.85

    # --- measurement hooks ---
    #: Record (first-seen, per-peer relay-completion) times for blocks/txs.
    track_relay_times: bool = False
    #: Record every outbound connection attempt and its outcome.
    track_connection_attempts: bool = False

    # --- §V policies ---
    policies: PolicyConfig = field(default_factory=PolicyConfig)

    def validate(self) -> None:
        if self.max_outbound < 0 or self.max_inbound < 0:
            raise ValueError("connection limits must be non-negative")
        if self.uplink_bandwidth <= 0:
            raise ValueError("uplink_bandwidth must be positive")
        if self.handler_interval <= 0:
            raise ValueError("handler_interval must be positive")
        if not 0 <= self.hb_compact_fraction <= 1:
            raise ValueError("hb_compact_fraction must be in [0, 1]")
        if self.policies.tried_horizon_days <= 0:
            raise ValueError("tried_horizon_days must be positive")

    @property
    def tried_horizon_seconds(self) -> float:
        return self.policies.tried_horizon_days * DAYS


def unreachable_config(**overrides) -> NodeConfig:
    """Config for an unreachable (NAT'd) node: outbound-only, no inbound."""
    config = NodeConfig(listen=False, max_inbound=0, **overrides)
    config.validate()
    return config
