"""Address oracles: the simulated Bitnodes monitor and DNS seeder database.

The paper's address crawler (§III-A, Fig. 2) merges two sources:

* **Bitnodes** — a public crawler whose per-snapshot view averaged 10,114
  addresses (of which the measurement node could connect to ~7,900);
* **Luke Dashjr's DNS seeder database** — 6,637 addresses per snapshot,
  6,078 shared with Bitnodes, and crucially ~404 *reachable nodes Bitnodes
  missed* (Fig. 3d), which is why the paper uses both.

Both views are imperfect: they contain recently-departed (stale) addresses
and miss some alive nodes.  :class:`SeedViewConfig` captures the coverage
model; defaults are calibrated so the Fig. 3 counts come out at scale 1.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Set

from ..simnet.addresses import NetAddr
from ..units import DAYS
from .churn import PresenceTimeline
from .population import NodeRecord


@dataclass
class SeedViewConfig:
    """Coverage model of the two address sources (Fig. 3 calibration)."""

    #: Probability an alive reachable node appears in the Bitnodes view.
    bitnodes_alive_coverage: float = 0.78
    #: Probability a recently-departed node lingers in the Bitnodes view.
    bitnodes_stale_coverage: float = 0.50
    #: How long a departed address can linger in a view (seconds).
    stale_window: float = 7 * DAYS
    #: Probability a Bitnodes-listed address is also in the DNS database.
    dns_given_bitnodes: float = 0.58
    #: Probability an alive node *missed* by Bitnodes is in the DNS
    #: database (the Fig. 3d "skipped by Bitnodes" population).
    dns_alive_extra: float = 0.20
    #: Probability a departed address missed by Bitnodes is in DNS.
    dns_stale_extra: float = 0.10

    def validate(self) -> None:
        for name in (
            "bitnodes_alive_coverage",
            "bitnodes_stale_coverage",
            "dns_given_bitnodes",
            "dns_alive_extra",
            "dns_stale_extra",
        ):
            value = getattr(self, name)
            if not 0 <= value <= 1:
                raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass
class AddressViews:
    """One snapshot's worth of source views (inputs to the crawler)."""

    when: float
    bitnodes: Set[NetAddr]
    dns: Set[NetAddr]
    #: Ground truth: which reachable addresses are actually online now.
    alive: Set[NetAddr]

    @property
    def common(self) -> Set[NetAddr]:
        return self.bitnodes & self.dns

    @property
    def union(self) -> Set[NetAddr]:
        return self.bitnodes | self.dns


class AddressOracles:
    """Generates Bitnodes/DNS views of the reachable population over time."""

    def __init__(
        self,
        rng: random.Random,
        records: Sequence[NodeRecord],
        timeline: PresenceTimeline,
        config: Optional[SeedViewConfig] = None,
    ) -> None:
        self.config = config if config is not None else SeedViewConfig()
        self.config.validate()
        self._rng = rng
        self._records = list(records)
        self._timeline = timeline
        #: Per-node sticky (bitnodes, dns) membership draws.
        self._propensity: dict = {}

    def _node_propensity(self, addr: NetAddr) -> tuple:
        """Sticky per-node source membership.

        Whether a node is tracked by Bitnodes (and listed by the DNS
        seeder) is a property of the *node* — stable nodes are reliably
        listed snapshot after snapshot — not an independent per-snapshot
        coin flip.  Without stickiness the always-on statistic (paper:
        3,034 nodes present in every one of ~60 experiments) is
        unreproducible: independent 95% coverage would keep only
        ``0.95**60 ≈ 5%`` of genuinely always-on nodes.
        """
        draws = self._propensity.get(addr)
        if draws is None:
            draws = (self._rng.random(), self._rng.random())
            self._propensity[addr] = draws
        return draws

    def _alive_and_stale(self, when: float) -> tuple:
        alive: List[NetAddr] = []
        stale: List[NetAddr] = []
        window = self.config.stale_window
        for record in self._records:
            addr = record.addr
            if self._timeline.alive_at(addr, when):
                alive.append(addr)
                continue
            # Departed within the stale window?
            for start, end in self._timeline.intervals(addr):
                if end <= when and when - end <= window:
                    stale.append(addr)
                    break
        return alive, stale

    def snapshot(self, when: float) -> AddressViews:
        """The Bitnodes and DNS views at campaign time ``when``.

        Source membership is sticky per node (see
        :meth:`_node_propensity`); only the *lingering* of departed
        addresses is re-drawn per snapshot, since stale entries age out of
        the real sources over time.
        """
        rng = self._rng
        alive, stale = self._alive_and_stale(when)
        bitnodes: Set[NetAddr] = set()
        dns: Set[NetAddr] = set()
        for addr in alive:
            u_bitnodes, u_dns = self._node_propensity(addr)
            if u_bitnodes < self.config.bitnodes_alive_coverage:
                bitnodes.add(addr)
                if u_dns < self.config.dns_given_bitnodes:
                    dns.add(addr)
            elif u_dns < self.config.dns_alive_extra:
                dns.add(addr)
        for addr in stale:
            u_bitnodes, u_dns = self._node_propensity(addr)
            lingers = rng.random() < self.config.bitnodes_stale_coverage
            if u_bitnodes < self.config.bitnodes_alive_coverage and lingers:
                bitnodes.add(addr)
                if u_dns < self.config.dns_given_bitnodes:
                    dns.add(addr)
            elif u_dns < self.config.dns_stale_extra and lingers:
                dns.add(addr)
        return AddressViews(
            when=when, bitnodes=bitnodes, dns=dns, alive=set(alive)
        )


class DnsSeeder:
    """The bootstrap oracle a joining node queries (chainparams seeds).

    In protocol-fidelity scenarios this wraps the live node registry; a
    joining node receives a random sample of currently reachable
    addresses, as the nine hard-coded seeders provide in reality.
    """

    def __init__(self, rng: random.Random) -> None:
        self._rng = rng
        self._known: List[NetAddr] = []
        self._known_set: Set[NetAddr] = set()

    def register(self, addr: NetAddr) -> None:
        """A reachable node became known to the seeder."""
        if addr not in self._known_set:
            self._known_set.add(addr)
            self._known.append(addr)

    def unregister(self, addr: NetAddr) -> None:
        """Seeder noticed the node is gone (lazily pruned)."""
        if addr in self._known_set:
            self._known_set.discard(addr)
            self._known.remove(addr)

    def query(self, count: int = 256) -> List[NetAddr]:
        """A DNS response: up to ``count`` known reachable addresses."""
        count = min(count, len(self._known))
        return self._rng.sample(self._known, count)

    def __len__(self) -> int:
        return len(self._known)
