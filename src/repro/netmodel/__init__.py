"""Network population model.

Everything that defines *who is on the simulated Bitcoin network*: the AS
universe and hosting distributions (Table I), the four node classes and
their calibrated counts, churn timelines and live churn, the Bitnodes/DNS
address oracles, the NAT/firewall model, malicious ADDR flooders, and the
two scenario builders.
"""

from . import calibration
from .addr_server import AddrServer
from .asmap import ASUniverse, HostingProfile, PROFILES, build_class_weights
from .churn import (
    ChurnProcess,
    PresenceTimeline,
    ReachableChurnConfig,
    build_reachable_timeline,
    build_unreachable_timeline,
)
from .malicious import (
    FloodVolumeModel,
    MaliciousAddrServer,
    MaliciousBitcoinNode,
    plant_flooders,
)
from .metrics import (
    TopologyStats,
    connection_graph,
    degree_histogram,
    pairwise_distances_sample,
    topology_stats,
)
from .nat import NatModel
from .population import NodeClass, NodeRecord, Population, PopulationConfig
from .scenario import (
    LightCloud,
    LongitudinalConfig,
    LongitudinalScenario,
    ProtocolConfig,
    ProtocolScenario,
)
from .seeds import AddressOracles, AddressViews, DnsSeeder, SeedViewConfig

__all__ = [
    "PROFILES",
    "AddrServer",
    "AddressOracles",
    "AddressViews",
    "ASUniverse",
    "ChurnProcess",
    "DnsSeeder",
    "FloodVolumeModel",
    "HostingProfile",
    "LightCloud",
    "LongitudinalConfig",
    "LongitudinalScenario",
    "MaliciousAddrServer",
    "MaliciousBitcoinNode",
    "NatModel",
    "NodeClass",
    "NodeRecord",
    "TopologyStats",
    "Population",
    "PopulationConfig",
    "PresenceTimeline",
    "ProtocolConfig",
    "ProtocolScenario",
    "ReachableChurnConfig",
    "SeedViewConfig",
    "build_class_weights",
    "connection_graph",
    "degree_histogram",
    "build_reachable_timeline",
    "build_unreachable_timeline",
    "calibration",
    "pairwise_distances_sample",
    "plant_flooders",
    "topology_stats",
]
