"""Malicious ADDR-flooding peers (§IV-B).

The paper detected 73 reachable nodes whose every ADDR response contained
*only unreachable* addresses — no self-advertisement, no reachable peers —
with per-node flood volumes up to >400K addresses, 8 nodes above 100K, and
59% of the flooders clustered in AS3320.

Two implementations mirror the two scenario fidelities:

* :class:`MaliciousAddrServer` — a longitudinal-mode GETADDR responder
  backed by a finite pool of fabricated unreachable addresses;
* :class:`MaliciousBitcoinNode` — a protocol-mode node that additionally
  pushes unsolicited ADDR floods to its peers, polluting their addrman
  tables and driving the outbound-connection failure rate up.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Optional

from ..simnet.addresses import NetAddr, TimestampedAddr
from ..simnet.simulator import Simulator
from ..bitcoin.config import NodeConfig
from ..bitcoin.messages import Addr
from ..bitcoin.node import BitcoinNode
from . import calibration as cal
from .addr_server import AddrServer
from .population import Population


@dataclass
class FloodVolumeModel:
    """Log-normal *unique* fabricated-pool sizes per flooder.

    The Fig. 8 volumes (up to >400K "sent") count ADDR records across
    repeated requests and snapshots; the unique pools behind them are far
    smaller — they must be, since the campaign's whole unique unreachable
    set is 694K.  These defaults put the 73 pools' total at roughly a
    quarter of the cumulative unreachable population, with a heavy tail.
    """

    median: float = 1_500.0
    sigma: float = 1.0
    floor: int = 200

    def sample(self, rng: random.Random, scale: float = 1.0) -> int:
        draw = rng.lognormvariate(math.log(self.median), self.sigma)
        # The absolute floor of 30 keeps tiny-scale flooders detectable
        # (a pool must at least exceed one ADDR response's worth of
        # scaled detection threshold).
        return max(30, int(self.floor * scale), int(draw * scale))


class MaliciousAddrServer(AddrServer):
    """A flooder for crawl campaigns: serves only fabricated addresses.

    Violates both halves of the detection heuristic: it never includes its
    own (reachable) address, and its table holds no reachable address at
    all.  The pool is finite — once a crawler has harvested it, responses
    repeat, which is what terminates Algorithm 1.
    """

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        rng: random.Random,
        population: Population,
        flood_volume: int,
        **kwargs,
    ) -> None:
        super().__init__(sim, addr, rng, table=None, **kwargs)
        self.population = population
        self.flood_volume = flood_volume

    def set_table(self, table) -> None:  # noqa: D102 - keep the flood pool
        # Snapshot refreshes must not replace a flooder's pool.
        return

    def _sample_response(self) -> List[TimestampedAddr]:
        # The paper's flooders kept producing *fresh* unreachable
        # addresses (one sent >400K); mint lazily up to the flood volume,
        # serving the freshly minted batch first, then random repeats.
        shortfall = max(
            0, min(self.response_max, self.flood_volume - len(self.table))
        )
        fresh = [
            self.population.mint_fake_address().addr for _ in range(shortfall)
        ]
        self.table.extend(fresh)
        filler_count = min(self.response_max - len(fresh), len(self.table) - len(fresh))
        filler = (
            self._rng.sample(self.table[: len(self.table) - len(fresh)], filler_count)
            if filler_count > 0
            else []
        )
        now = self.sim.now
        # No self-advertisement — the tell the detector keys on.
        return [TimestampedAddr(a, now) for a in fresh + filler]


class MaliciousBitcoinNode(BitcoinNode):
    """A protocol-mode flooder: full node, poisoned address plane.

    GETADDR responses come from the fabricated pool, and every
    ``flood_interval`` seconds the node pushes small unsolicited ADDR
    announcements (which honest peers forward, spreading the pollution).
    """

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        population: Population,
        flood_volume: int,
        config: Optional[NodeConfig] = None,
        flood_interval: float = 30.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, addr, config=config, name=name)
        self.population = population
        self.flood_volume = flood_volume
        self.flood_interval = flood_interval
        self._flood_pool: List[NetAddr] = []
        self._flood_cursor = 0
        self._flood_task = None
        self.addrs_flooded = 0

    def _pool_addr(self) -> NetAddr:
        """Next fabricated address, minting lazily up to the volume."""
        if self._flood_cursor < len(self._flood_pool):
            addr = self._flood_pool[self._flood_cursor]
        elif len(self._flood_pool) < self.flood_volume:
            addr = self.population.mint_fake_address().addr
            self._flood_pool.append(addr)
        else:
            addr = self._rng.choice(self._flood_pool)
        self._flood_cursor = (self._flood_cursor + 1) % max(
            1, min(self.flood_volume, len(self._flood_pool) + 1)
        )
        return addr

    def _build_addr_response(self, records) -> List[TimestampedAddr]:
        now = self.sim.now
        count = min(1000, self.flood_volume)
        return [TimestampedAddr(self._pool_addr(), now) for _ in range(count)]

    def start(self) -> None:
        super().start()
        if self._flood_task is None and self.flood_interval > 0:
            self._flood_task = self.sim.call_every(
                self.flood_interval, self._push_flood
            )

    def stop(self) -> None:
        if self._flood_task is not None:
            self._flood_task.stop()
            self._flood_task = None
        super().stop()

    def _push_flood(self) -> None:
        """Unsolicited ≤10-address announcements to every peer."""
        if not self.running:
            return
        now = self.sim.now
        for peer in self.established_peers:
            records = tuple(
                TimestampedAddr(self._pool_addr(), now) for _ in range(10)
            )
            peer.enqueue_send(Addr(addresses=records))
            self.addrs_flooded += len(records)
        self._wake_handler()


def plant_flooders(
    sim: Simulator,
    rng: random.Random,
    population: Population,
    scale: float,
    volume_model: Optional[FloodVolumeModel] = None,
    count: Optional[int] = None,
) -> List[MaliciousAddrServer]:
    """Create the scaled Fig. 8 flooder cohort as crawl-mode servers.

    59% are placed in AS3320 (the paper's observed clustering); the rest
    follow the reachable hosting distribution.
    """
    volume_model = volume_model or FloodVolumeModel()
    n_flooders = count if count is not None else max(
        1, round(cal.MALICIOUS_NODE_COUNT * scale)
    )
    flooders: List[MaliciousAddrServer] = []
    for index in range(n_flooders):
        if rng.random() < cal.MALICIOUS_AS3320_SHARE:
            asn = cal.MALICIOUS_AS3320
        else:
            asn = population.universe.sample_asn("reachable", rng)
        addr = population.universe.allocate_address(asn)
        volume = volume_model.sample(rng, scale=scale)
        flooders.append(
            MaliciousAddrServer(
                sim, addr, rng, population=population, flood_volume=volume
            )
        )
    return flooders
