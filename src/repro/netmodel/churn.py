"""Churn: node lifetimes, arrivals, departures, rejoins.

Two representations serve the two scenario fidelities:

* :class:`PresenceTimeline` — a precomputed online/offline schedule per
  address over the whole campaign.  Longitudinal experiments (Figs. 4, 5,
  12, 13 and Table I) read presence directly; no protocol traffic is
  simulated between snapshots.  Reachable nodes follow a renewal process —
  sessions and offline gaps with a per-session retirement probability,
  plus an always-on subset — calibrated to the paper's measured alive
  count, cumulative unique count, daily departures, and always-on count.
  Unreachable addresses get a single gossip-visibility interval sized to
  the measured per-snapshot/cumulative ratio.

* :class:`ChurnProcess` — a live process for protocol-fidelity scenarios:
  it stops running nodes at a configured rate and starts replacements that
  must re-bootstrap and catch up with the chain, which is exactly the
  §IV-D mechanism (departing synchronized nodes replaced by unsynchronized
  newcomers) behind the Fig. 1 deterioration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import ScenarioError
from ..simnet.addresses import NetAddr
from ..simnet.simulator import Simulator
from ..units import DAYS
from . import calibration as cal
from .population import NodeRecord

#: One online interval: [start, end) in campaign seconds.
Interval = Tuple[float, float]


@dataclass
class ReachableChurnConfig:
    """Parameters of the reachable-node renewal process (days)."""

    campaign_days: float = float(cal.CAMPAIGN_DAYS)
    mean_session_days: float = 6.0
    mean_gap_days: float = 2.5
    #: Probability a node retires for good after a session ends.
    retire_prob: float = 0.35
    #: Nodes online for the entire campaign (always-on), pre-scale.
    always_on: int = cal.ALWAYS_ON_NODES
    #: Nodes online at t=0 (the standing network), pre-scale.
    initial_alive: int = cal.BITNODES_ADDRS_PER_SNAPSHOT

    def validate(self) -> None:
        if self.mean_session_days <= 0 or self.mean_gap_days < 0:
            raise ScenarioError("session/gap means must be positive")
        if not 0 < self.retire_prob <= 1:
            raise ScenarioError("retire_prob must be in (0, 1]")
        if self.always_on > self.initial_alive:
            raise ScenarioError("always_on cannot exceed initial_alive")


class PresenceTimeline:
    """Online intervals per address, over a fixed campaign."""

    def __init__(self, campaign_seconds: float) -> None:
        self.campaign_seconds = campaign_seconds
        self._intervals: Dict[NetAddr, List[Interval]] = {}

    def set_intervals(self, addr: NetAddr, intervals: Sequence[Interval]) -> None:
        cleaned = [
            (max(0.0, start), min(self.campaign_seconds, end))
            for start, end in intervals
            if end > 0 and start < self.campaign_seconds and end > start
        ]
        if cleaned:
            self._intervals[addr] = cleaned

    def intervals(self, addr: NetAddr) -> List[Interval]:
        return list(self._intervals.get(addr, ()))

    def alive_at(self, addr: NetAddr, when: float) -> bool:
        # A plain loop, not any(<genexpr>): this predicate runs per address
        # per snapshot across the whole population, and most addresses
        # have one or two intervals — the generator frame would dominate.
        for start, end in self._intervals.get(addr, ()):
            if start <= when < end:
                return True
        return False

    def alive_set(self, addrs: Sequence[NetAddr], when: float) -> List[NetAddr]:
        return [addr for addr in addrs if self.alive_at(addr, when)]

    def ever_seen(self, addr: NetAddr) -> bool:
        return addr in self._intervals

    def total_online(self, addr: NetAddr) -> float:
        return sum(end - start for start, end in self._intervals.get(addr, ()))

    def lifetime_span(self, addr: NetAddr) -> float:
        """First-join to last-leave span (the paper's node lifetime)."""
        spans = self._intervals.get(addr)
        if not spans:
            return 0.0
        return spans[-1][1] - spans[0][0]

    def addresses(self) -> List[NetAddr]:
        return list(self._intervals)


def build_reachable_timeline(
    rng: random.Random,
    records: Sequence[NodeRecord],
    config: ReachableChurnConfig,
    scale: float,
) -> PresenceTimeline:
    """Assign renewal-process schedules to the reachable records.

    Records are partitioned into always-on, initially-online, and
    later-arrivals; arrivals spread uniformly over the campaign (a Poisson
    arrival stream conditioned on the known total).
    """
    config.validate()
    horizon = config.campaign_days * DAYS
    timeline = PresenceTimeline(horizon)
    n_always = min(len(records), max(0, round(config.always_on * scale)))
    n_initial = min(len(records), max(n_always, round(config.initial_alive * scale)))

    session = config.mean_session_days * DAYS
    gap = config.mean_gap_days * DAYS

    def sessions_from(start: float) -> List[Interval]:
        intervals: List[Interval] = []
        cursor = start
        while cursor < horizon:
            length = rng.expovariate(1.0 / session)
            intervals.append((cursor, cursor + length))
            cursor += length
            if rng.random() < config.retire_prob:
                break
            cursor += rng.expovariate(1.0 / gap) if gap > 0 else 0.0
        return intervals

    for index, record in enumerate(records):
        if index < n_always:
            timeline.set_intervals(record.addr, [(0.0, horizon)])
        elif index < n_initial:
            # Stationary start: the node is mid-session at t=0.
            timeline.set_intervals(record.addr, sessions_from(0.0))
        else:
            arrival = rng.uniform(0.0, horizon)
            timeline.set_intervals(record.addr, sessions_from(arrival))
    return timeline


def build_unreachable_timeline(
    rng: random.Random,
    records: Sequence[NodeRecord],
    campaign_days: float,
    per_snapshot_fraction: float,
) -> PresenceTimeline:
    """Single gossip-visibility interval per unreachable address.

    ``per_snapshot_fraction`` is the measured alive-at-any-time share of
    the cumulative pool (≈0.28 for all unreachable, ≈0.33 for responsive);
    interval lengths are exponential with mean ``f*T/(1-f)`` so a uniform
    start yields that occupancy in expectation.
    """
    if not 0 < per_snapshot_fraction < 1:
        raise ScenarioError("per_snapshot_fraction must be in (0, 1)")
    horizon = campaign_days * DAYS
    timeline = PresenceTimeline(horizon)
    mean_length = per_snapshot_fraction * horizon / (1 - per_snapshot_fraction)
    for record in records:
        length = rng.expovariate(1.0 / mean_length)
        start = rng.uniform(-mean_length, horizon)
        timeline.set_intervals(record.addr, [(start, start + length)])
    return timeline


class ChurnProcess:
    """Live departures/arrivals for protocol-fidelity scenarios.

    At exponential intervals a running node is stopped; a replacement is
    started after a short delay, so the network size hovers around its
    initial value while the *synchronized* population is eroded — the
    §IV-D mechanism.  Rates are expressed per 10 minutes to match the
    paper's 2019-vs-2020 comparison (3.9 vs 7.6 synchronized departures
    per 10 minutes, full-network scale).
    """

    def __init__(
        self,
        sim: Simulator,
        running_nodes: Callable[[], Sequence],
        start_replacement: Callable[[], None],
        departures_per_10min: float,
        replacement_delay_mean: float = 30.0,
        protect: Optional[Callable[[object], bool]] = None,
    ) -> None:
        if departures_per_10min <= 0:
            raise ScenarioError("departures_per_10min must be positive")
        self.sim = sim
        self._running_nodes = running_nodes
        self._start_replacement = start_replacement
        self.rate = departures_per_10min / 600.0  # per second
        self.replacement_delay_mean = replacement_delay_mean
        self._protect = protect
        self._rng = sim.random.stream("churn-process")
        self._running = False
        self._event = None
        #: (time, node, was_synchronized_flag_or_None) log of departures.
        self.departures: List[Tuple[float, object]] = []
        self.arrivals: List[float] = []

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False
        if self._event is not None:
            self._event.cancel()
            self._event = None

    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(self.rate)
        self._event = self.sim.schedule(delay, self._churn_once)

    def _churn_once(self) -> None:
        if not self._running:
            return
        candidates = [
            node
            for node in self._running_nodes()
            if getattr(node, "running", False)
            and (self._protect is None or not self._protect(node))
        ]
        if candidates:
            victim = self._rng.choice(candidates)
            victim.stop()
            self.departures.append((self.sim.now, victim))
            delay = (
                self._rng.expovariate(1.0 / self.replacement_delay_mean)
                if self.replacement_delay_mean > 0
                else 0.0
            )
            self.sim.schedule(delay, self._arrive)
        self._schedule_next()

    def _arrive(self) -> None:
        if not self._running:
            return
        self.arrivals.append(self.sim.now)
        self._start_replacement()
