"""Scenario builders: wiring population, churn, NAT, and nodes together.

Two fidelities match the two kinds of experiment in the paper:

* :class:`LongitudinalScenario` — the 60-day measurement campaign
  (Figs. 3-5, 8, 12, 13, Table I).  Node presence follows precomputed
  churn timelines; reachable nodes are lightweight GETADDR responders
  whose tables are re-materialised per snapshot from the currently
  gossiped address pool.  Protocol traffic is simulated only while the
  crawler works.

* :class:`ProtocolScenario` — full-fidelity networks of
  :class:`~repro.bitcoin.node.BitcoinNode` with mining, live churn, and
  polluted addrman tables (Figs. 1, 6, 7, 10, 11, the resync experiment,
  and the §V improvement ablations).

Time-scale note: protocol scenarios compress the churn/recovery balance.
In reality a replacement node needs days to download the chain while
churn runs at ~700 nodes/day; a simulated chain is short, so catch-up
takes minutes and the churn rate is raised proportionally.  All paper
comparisons for these scenarios are of *ratios and shapes* (2020/2019
churn doubling → sync mean dropping ~10 points), which the compression
preserves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import ConfigurationError, ScenarioError
from ..faults.plan import FaultPlan
from ..simnet.addresses import NetAddr
from ..simnet.simulator import Simulator
from ..simnet.transport import ProbeBehavior
from ..units import DAYS
from ..bitcoin.behavior import validate_fidelity
from ..bitcoin.config import NodeConfig, PolicyConfig
from ..bitcoin.light import LightNode
from ..bitcoin.mining import MiningProcess, TransactionGenerator
from ..bitcoin.node import BitcoinNode
from ..bitcoin.policy.base import AddrPolicy, LightTierPolicy
from ..bitcoin.policy.registry import build_policies

# The adversary package sits above bitcoin/ and below netmodel/ in the
# layering; importing only its plan module here keeps construction
# (install_attack) a lazy, scenario-time import.
from ..adversary.plan import KIND_ADDR_FLOODER, AttackPlan
from . import calibration as cal
from .addr_server import AddrServer
from .asmap import ASUniverse
from .churn import (
    ChurnProcess,
    PresenceTimeline,
    ReachableChurnConfig,
    build_reachable_timeline,
    build_unreachable_timeline,
)
from .malicious import FloodVolumeModel, MaliciousAddrServer, plant_flooders
from .nat import NatModel
from .population import NodeRecord, Population, PopulationConfig
from .seeds import AddressOracles, DnsSeeder, SeedViewConfig


# ---------------------------------------------------------------------------
# Hybrid fidelity: the light-tier unreachable cloud
# ---------------------------------------------------------------------------


class LightCloud:
    """Registry of light-tier endpoints modelling the unreachable cloud.

    In hybrid fidelity the NAT model's ``mark_*`` calls route through
    :meth:`install`, so every unreachable address becomes (or retargets)
    a :class:`~repro.bitcoin.light.LightNode` registered with the
    transport instead of a raw probe-behavior table entry.  The
    transport answers connects and probes identically either way, which
    is what makes full and hybrid runs of the same seed bit-identical.

    Endpoints are additionally grouped into **shards** by /16 netgroup
    (the latency model's locality unit).  A shard is the unit the fast
    path reasons about: every endpoint in a shard shares one latency
    base per remote group and one behaviour profile per class, so
    shard-level operations (bulk retargeting at a churn epoch, census)
    run O(shards touched) instead of O(endpoints).  Sharding is pure
    bookkeeping — it never changes which endpoint answers or when.
    """

    def __init__(
        self,
        sim: Simulator,
        light_policy: Optional[LightTierPolicy] = None,
    ) -> None:
        self.sim = sim
        self.nodes: Dict[NetAddr, LightNode] = {}
        #: group16 -> {addr: LightNode}, in install order within a shard.
        self.shards: Dict[int, Dict[NetAddr, LightNode]] = {}
        #: Per-address profile override (``unreachable-relay`` assists).
        #: ``None`` — every endpoint runs the shared default profile and
        #: the install path below is byte-for-byte the pre-policy one.
        self.light_policy = light_policy

    def install(self, addr: NetAddr, behavior: ProbeBehavior) -> None:
        """NAT-model endpoint factory: create or retarget a light node."""
        node = self.nodes.get(addr)
        if node is None:
            profile = (
                self.light_policy.profile_for(addr)
                if self.light_policy is not None
                else None
            )
            if profile is None:
                node = LightNode(self.sim, addr, behavior=behavior)
            else:
                node = LightNode(self.sim, addr, behavior=behavior, profile=profile)
            node.start()
            self.nodes[addr] = node
            self.shards.setdefault(addr.group16, {})[addr] = node
            if profile is not None and profile.listen:
                # Sync the transport's listen state with the initial
                # churn class (start() listens unconditionally).
                node.apply_behavior(behavior)
        elif node.profile.listen:
            node.apply_behavior(behavior)
        else:
            node.behavior = behavior

    def shard_of(self, addr: NetAddr) -> Dict[NetAddr, LightNode]:
        """The endpoints sharing ``addr``'s netgroup (empty if none)."""
        return self.shards.get(addr.group16, {})

    def retarget_shard(self, group16: int, behavior: ProbeBehavior) -> int:
        """Point every endpoint in one shard at ``behavior``.

        The batched form of calling :meth:`install` per address when a
        whole netgroup changes class at once (AS-level events: a
        provider block going dark, a partition healing).  Returns the
        number of endpoints retargeted.
        """
        shard = self.shards.get(group16)
        if not shard:
            return 0
        for node in shard.values():
            if node.profile.listen:
                node.apply_behavior(behavior)
            else:
                node.behavior = behavior
        return len(shard)

    def shard_census(self) -> Dict[int, int]:
        """Endpoint count per shard (diagnostic)."""
        return {group: len(shard) for group, shard in self.shards.items()}

    def __len__(self) -> int:
        return len(self.nodes)


# ---------------------------------------------------------------------------
# Longitudinal (measurement-campaign) scenario
# ---------------------------------------------------------------------------


@dataclass
class LongitudinalConfig:
    """Sizing of a crawl campaign."""

    scale: float = 0.05
    seed: int = 1
    #: ``"full"`` keeps the unreachable cloud as raw probe-behavior
    #: entries; ``"hybrid"`` represents it with registered light-tier
    #: endpoints.  Same seed → identical figures either way; the knob is
    #: part of run-store keys.
    fidelity: str = "full"
    campaign_days: float = float(cal.CAMPAIGN_DAYS)
    #: Crawl snapshots over the campaign (the paper crawled ~daily).
    snapshots: int = 60
    #: Reachable addresses each node's table holds (pre-composition).
    table_reachable_sample: int = 150
    #: Ground-truth reachable share of node tables.  Set above the
    #: paper's measured 14.9% because the *measured* share classifies by
    #: the crawler's source views, which cover ~82% of truly reachable
    #: nodes: 0.18 * 0.82 ≈ 0.149.
    addr_reachable_share: float = 0.18
    #: Cumulative reachable records are over-provisioned relative to the
    #: paper's 28,781 because that figure counts *connected* nodes and
    #: the source views cover ~82% of what is alive.
    reachable_overprovision: float = 1.2
    churn: ReachableChurnConfig = field(default_factory=ReachableChurnConfig)
    seed_views: SeedViewConfig = field(default_factory=SeedViewConfig)
    #: Plant the Fig. 8 malicious flooders.
    flooders: bool = True
    flooder_count: Optional[int] = None
    flood_volume_model: FloodVolumeModel = field(default_factory=FloodVolumeModel)
    #: Fraction of silent-class addresses answering RST (vs. dropping).
    rst_fraction: float = 0.45
    #: Scheduler backend ("wheel" or "heap"; None = REPRO_ENGINE/default).
    #: Recorded in run-store manifests so a resumed run replays on the
    #: same engine it started on.
    engine: Optional[str] = None
    #: Optional fault plan compiled onto the run (see ``repro.faults``).
    #: Part of the config dataclass, hence of run-store keys: the same
    #: campaign under different faults is a different experiment.
    faults: Optional[FaultPlan] = None
    #: Optional attack plan (see ``repro.adversary``).  When set it
    #: replaces the default Fig. 8 flooder cohort with explicitly placed
    #: attackers; like ``faults`` it is part of run-store keys.  Crawl
    #: campaigns only expose the GETADDR surface, so only
    #: ``addr_flooder`` specs are accepted here — the other kinds need
    #: protocol fidelity.
    attack: Optional[AttackPlan] = None
    #: Optional protocol-policy variant.  The crawl model exposes one
    #: policy surface — what the population gossips
    #: (:meth:`~repro.bitcoin.policy.AddrPolicy.crawl_gossip` composes
    #: each materialized table) — so tried-only variants starve the
    #: unreachable share at campaign scale.  Part of run-store and serve
    #: keys; ``None`` keeps the pre-policy composition.
    policies: Optional[PolicyConfig] = None

    def validate(self) -> None:
        if self.faults is not None:
            self.faults.validate()
        if self.attack is not None:
            self.attack.validate()
            for index, spec in enumerate(self.attack.attackers):
                if spec.kind != KIND_ADDR_FLOODER:
                    raise ConfigurationError(
                        f"attacker #{index}: kind {spec.kind!r} needs "
                        "protocol fidelity — crawl campaigns support only "
                        "addr_flooder attackers"
                    )
        try:
            validate_fidelity(self.fidelity)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        if self.scale <= 0:
            raise ScenarioError("scale must be positive")
        if self.snapshots < 1:
            raise ScenarioError("need at least one snapshot")
        if not 0 < self.addr_reachable_share < 1:
            raise ScenarioError("addr_reachable_share must be in (0, 1)")


class LongitudinalScenario:
    """The 60-day campaign world, driven snapshot by snapshot."""

    def __init__(self, config: Optional[LongitudinalConfig] = None) -> None:
        self.config = config if config is not None else LongitudinalConfig()
        self.config.validate()
        self.sim = Simulator(seed=self.config.seed, engine=self.config.engine)
        rng = self.sim.random.stream("scenario")
        self._rng = rng
        self.universe = ASUniverse(rng)
        self.population = Population(
            rng,
            self.universe,
            PopulationConfig(
                scale=self.config.scale,
                campaign_days=self.config.campaign_days,
                cumulative_reachable=round(
                    cal.CUMULATIVE_REACHABLE
                    * self.config.reachable_overprovision
                ),
            ),
        )
        # Flooders are planted before the unreachable timelines so their
        # fabricated-pool volumes can be debited from the silent class —
        # the paper's cumulative 694K unreachable includes the flooders'
        # fabrications, so ours must not double-count them.
        self.flooders: List[MaliciousAddrServer] = []
        if self.config.attack is not None:
            self.flooders = self._plant_attack_flooders(self.config.attack)
            total_fakes = sum(f.flood_volume for f in self.flooders)
            self.population.trim_silent(total_fakes)
        elif self.config.flooders:
            self.flooders = plant_flooders(
                self.sim,
                self.sim.random.stream("flooders"),
                self.population,
                scale=self.config.scale,
                volume_model=self.config.flood_volume_model,
                count=self.config.flooder_count,
            )
            total_fakes = sum(f.flood_volume for f in self.flooders)
            self.population.trim_silent(total_fakes)
        self.reachable_timeline = build_reachable_timeline(
            self.sim.random.stream("churn-reachable"),
            self.population.reachable,
            self.config.churn,
            scale=self.config.scale,
        )
        responsive_fraction = (
            cal.RESPONSIVE_PER_SNAPSHOT / cal.CUMULATIVE_RESPONSIVE
        )
        silent_fraction = (
            (cal.UNREACHABLE_PER_SNAPSHOT - cal.RESPONSIVE_PER_SNAPSHOT)
            / (cal.CUMULATIVE_UNREACHABLE - cal.CUMULATIVE_RESPONSIVE)
        )
        self.responsive_timeline = build_unreachable_timeline(
            self.sim.random.stream("churn-responsive"),
            self.population.responsive,
            self.config.campaign_days,
            responsive_fraction,
        )
        self.silent_timeline = build_unreachable_timeline(
            self.sim.random.stream("churn-silent"),
            self.population.silent,
            self.config.campaign_days,
            silent_fraction,
        )
        self.oracles = AddressOracles(
            self.sim.random.stream("oracles"),
            self.population.reachable,
            self.reachable_timeline,
            self.config.seed_views,
        )
        #: Gossip-composition policy (None → pre-policy concatenation).
        self.addr_policy: Optional[AddrPolicy] = None
        light_policy: Optional[LightTierPolicy] = None
        if self.config.policies is not None:
            bundle = build_policies(self.config.policies)
            self.addr_policy = bundle.addr
            light_policy = bundle.light
        #: Hybrid fidelity: the unreachable cloud as light-tier endpoints.
        self.light_cloud: Optional[LightCloud] = None
        if self.config.fidelity == "hybrid":
            self.light_cloud = LightCloud(self.sim, light_policy=light_policy)
        self.nat = NatModel(
            self.sim.network,
            self.sim.random.stream("nat"),
            rst_fraction=self.config.rst_fraction,
            endpoint_factory=(
                self.light_cloud.install if self.light_cloud is not None else None
            ),
        )
        #: One AddrServer per reachable record, started/stopped with churn.
        self.servers: Dict[NetAddr, AddrServer] = {}
        for record in self.population.reachable:
            self.servers[record.addr] = AddrServer(
                self.sim,
                record.addr,
                self.sim.random.stream("server", str(record.addr)),
            )
        #: Fault injector, when the config carries a plan.  Crash faults
        #: are rejected here (no full nodes to crash in this fidelity);
        #: partitions/drops/delays shape the crawler's view instead.
        self.fault_injector = None
        if self.config.faults is not None:
            self.fault_injector = self.sim.install_faults(
                self.config.faults, asn_of=self.universe.asn_of
            )
        self._snapshot_index = -1

    def _plant_attack_flooders(
        self, plan: AttackPlan
    ) -> List[MaliciousAddrServer]:
        """Materialize an AttackPlan's flooders as crawl-mode servers.

        Placement mirrors protocol-mode ``install_attack``: scoped specs
        land in their declared ASNs/prefixes/addresses, unscoped ones
        follow the reachable hosting distribution, all drawn from the
        dedicated ``("attack",)`` stream.
        """
        from ..adversary.install import place_address

        rng = self.sim.random.stream("attack")
        flooders: List[MaliciousAddrServer] = []
        prefix_hosts: Dict[int, int] = {}
        for spec in plan.attackers:
            for index in range(spec.count):
                addr = place_address(
                    self.universe, spec, index, rng, prefix_hosts
                )
                volume = spec.flood_volume or self.config.flood_volume_model.sample(
                    rng, scale=self.config.scale
                )
                flooders.append(
                    MaliciousAddrServer(
                        self.sim,
                        addr,
                        rng,
                        population=self.population,
                        flood_volume=volume,
                    )
                )
        return flooders

    # ------------------------------------------------------------------
    # Snapshot scheduling
    # ------------------------------------------------------------------
    @property
    def snapshot_times(self) -> List[float]:
        """Campaign times of the crawl snapshots (evenly spaced)."""
        horizon = self.config.campaign_days * DAYS
        step = horizon / self.config.snapshots
        return [step * (index + 0.5) for index in range(self.config.snapshots)]

    def alive_reachable(self, when: float) -> List[NodeRecord]:
        return [
            record
            for record in self.population.reachable
            if self.reachable_timeline.alive_at(record.addr, when)
        ]

    def gossip_pool(self, when: float) -> List[NetAddr]:
        """Unreachable addresses currently circulating in gossip."""
        pool = [
            record.addr
            for record in self.population.responsive
            if self.responsive_timeline.alive_at(record.addr, when)
        ]
        pool.extend(
            record.addr
            for record in self.population.silent
            if self.silent_timeline.alive_at(record.addr, when)
        )
        return pool

    def materialize_snapshot(self, when: float) -> None:
        """Fast-forward the world to ``when`` and rebuild node state.

        Starts/stops AddrServers per the churn timeline, refreshes their
        tables from the current gossip pool at the configured composition,
        and installs NAT probe behaviour for the unreachable pool.
        """
        if when < self.sim.now:
            raise ScenarioError("snapshots must advance in time")
        self.sim.run_until(when)
        alive = self.alive_reachable(when)
        alive_addrs = [record.addr for record in alive]
        alive_set = set(alive_addrs)
        pool = self.gossip_pool(when)

        # Table sizing: reachable sample + enough unreachable for the mix.
        n_reach = min(self.config.table_reachable_sample, len(alive_addrs))
        share = self.config.addr_reachable_share
        n_unreach = min(len(pool), round(n_reach * (1 - share) / share))

        rng = self._rng
        addr_policy = self.addr_policy
        for addr, server in self.servers.items():
            if addr in alive_set:
                # Both samples are always drawn (the RNG sequence is
                # policy-independent); the policy only composes them.
                reach_sample = rng.sample(alive_addrs, n_reach)
                unreach_sample = rng.sample(pool, n_unreach)
                if addr_policy is None:
                    table = reach_sample + unreach_sample
                else:
                    table = addr_policy.crawl_gossip(
                        reach_sample, unreach_sample
                    )
                server.set_table(table)
                server.start()
            else:
                server.stop()
        for flooder in self.flooders:
            flooder.start()

        # NAT behaviour of the unreachable world at this instant.  The
        # alive addresses are batched into one mark_* call per pool; the
        # iteration order (hence the mark_silent RNG draw order) is the
        # population order, exactly as the per-record calls produced.
        responsive_alive: List[NetAddr] = []
        for record in self.population.responsive:
            if self.responsive_timeline.alive_at(record.addr, when):
                responsive_alive.append(record.addr)
            else:
                self.nat.mark_offline(record.addr)
        self.nat.mark_responsive(responsive_alive)
        silent_alive: List[NetAddr] = []
        for record in self.population.silent:
            if self.silent_timeline.alive_at(record.addr, when):
                silent_alive.append(record.addr)
            else:
                self.nat.mark_offline(record.addr)
        self.nat.mark_silent(silent_alive)
        self._snapshot_index += 1

    def tier_census(self) -> Dict[str, int]:
        """Count live behaviors per tier (transport's view of the world)."""
        return self.sim.network.tier_census()


# ---------------------------------------------------------------------------
# Protocol-fidelity scenario
# ---------------------------------------------------------------------------


@dataclass
class ProtocolConfig:
    """Sizing of a live protocol network."""

    seed: int = 7
    #: ``"full"`` — the unreachable cloud is raw probe-behavior entries;
    #: ``"hybrid"`` — the cloud is light-tier endpoints with O(1) state
    #: each.  The measured vantage and the reachable network are full
    #: tier in both, and same seed → identical figures; the knob is part
    #: of run-store keys.
    fidelity: str = "full"
    #: Reachable full nodes online at start.
    n_reachable: int = 150
    #: Responsive unreachable addresses (FIN to probes, pollute tables).
    n_responsive: Optional[int] = None
    #: Silent/stale unreachable addresses.
    n_silent: Optional[int] = None
    #: Target ADDR/table composition (reachable share).
    addr_reachable_share: float = cal.ADDR_REACHABLE_SHARE
    #: Reachable addresses each node's initial table holds.
    table_reachable_sample: int = 60
    rst_fraction: float = 0.45
    node_config: NodeConfig = field(default_factory=NodeConfig)
    #: Mining switched on (Fig. 1 / relay experiments need blocks).
    mining: bool = True
    block_interval: float = 600.0
    txs_per_block: int = 10
    #: Historical chain length standing nodes are born with.  Replacement
    #: nodes must download all of it before they count as synchronized —
    #: the compressed analogue of Bitcoin's days-long IBD.
    pre_mined_blocks: int = 0
    #: Transaction generator rate (tx/s); 0 disables.
    tx_rate: float = 0.0
    #: Live churn: departures per 10 minutes (None disables).
    churn_per_10min: Optional[float] = None
    #: Plant protocol-mode malicious flooders.
    flooder_count: int = 0
    #: Optional fault plan compiled onto the run (see ``repro.faults``).
    faults: Optional[FaultPlan] = None
    #: Optional attack plan (see ``repro.adversary``): adversarial peers
    #: compiled onto the run.  Composes with ``faults`` and, like it, is
    #: part of run-store keys.
    attack: Optional[AttackPlan] = None

    def validate(self) -> None:
        if self.faults is not None:
            self.faults.validate()
        if self.attack is not None:
            # Eager, named-field errors (ConfigurationError) — a bad plan
            # must never surface as a mid-run failure.
            self.attack.validate_for(self.n_reachable)
        try:
            validate_fidelity(self.fidelity)
        except ValueError as exc:
            raise ScenarioError(str(exc)) from None
        if self.n_reachable < 2:
            raise ScenarioError("need at least two reachable nodes")
        if not 0 < self.addr_reachable_share < 1:
            raise ScenarioError("addr_reachable_share must be in (0, 1)")

    @property
    def responsive_count(self) -> int:
        if self.n_responsive is not None:
            return self.n_responsive
        # Preserve the measured per-snapshot ratio: ~54K responsive to
        # ~10K reachable.
        return round(
            self.n_reachable
            * cal.RESPONSIVE_PER_SNAPSHOT
            / cal.BITNODES_ADDRS_PER_SNAPSHOT
        )

    @property
    def silent_count(self) -> int:
        if self.n_silent is not None:
            return self.n_silent
        return round(
            self.n_reachable
            * (cal.UNREACHABLE_PER_SNAPSHOT - cal.RESPONSIVE_PER_SNAPSHOT)
            / cal.BITNODES_ADDRS_PER_SNAPSHOT
        )


class ProtocolScenario:
    """A live Bitcoin network with polluted address tables."""

    def __init__(self, config: Optional[ProtocolConfig] = None) -> None:
        self.config = config if config is not None else ProtocolConfig()
        self.config.validate()
        self.sim = Simulator(seed=self.config.seed)
        rng = self.sim.random.stream("scenario")
        self._rng = rng
        self.universe = ASUniverse(rng)
        scale = self.config.n_reachable / cal.BITNODES_ADDRS_PER_SNAPSHOT
        self.population = Population(
            rng,
            self.universe,
            PopulationConfig(
                scale=scale,
                # 3x the standing network: the extra records are the
                # replacement pool live churn draws from before recycling.
                cumulative_reachable=round(
                    3 * self.config.n_reachable / scale
                ),
                cumulative_responsive=round(
                    self.config.responsive_count / scale
                ),
                cumulative_unreachable=round(
                    (self.config.responsive_count + self.config.silent_count)
                    / scale
                ),
            ),
        )
        #: The built policy bundle of the configured variant (shared by
        #: the light cloud; each node builds its own from its config).
        self.policy = build_policies(self.config.node_config.policies)
        #: Hybrid fidelity: the unreachable cloud as light-tier endpoints.
        self.light_cloud: Optional[LightCloud] = None
        if self.config.fidelity == "hybrid":
            self.light_cloud = LightCloud(
                self.sim, light_policy=self.policy.light
            )
        self.nat = NatModel(
            self.sim.network,
            self.sim.random.stream("nat"),
            rst_fraction=self.config.rst_fraction,
            endpoint_factory=(
                self.light_cloud.install if self.light_cloud is not None else None
            ),
        )
        self.nat.mark_responsive(
            record.addr for record in self.population.responsive
        )
        self.nat.mark_silent(
            record.addr for record in self.population.silent
        )
        self.seeder = DnsSeeder(self.sim.random.stream("dns"))
        self.nodes: List[BitcoinNode] = []
        self._next_replacement = 0
        # Seed-table pools, computed once: at paper scale (thousands of
        # reachable nodes, tens of thousands of unreachable records)
        # rebuilding these per node is quadratic.  The cached lists hold
        # exactly what the per-node construction produced — population
        # order — so the ``rng.sample`` draws are unchanged.  Fakes are
        # appended per call in ``_seed_tables`` because malicious nodes
        # mint them while the run is live.
        self._reachable_pool: List[NetAddr] = [
            record.addr
            for record in self.population.reachable[: self.config.n_reachable]
        ]
        self._unreachable_pool: List[NetAddr] = [
            record.addr for record in self.population.responsive
        ]
        self._unreachable_pool.extend(
            record.addr for record in self.population.silent
        )
        # Materialise the standing network.
        standing = self.population.reachable[: self.config.n_reachable]
        self._replacement_pool = self.population.reachable[
            self.config.n_reachable:
        ]
        for record in standing:
            node = self._make_node(record)
            self.nodes.append(node)
            self.seeder.register(record.addr)
        self.mining: Optional[MiningProcess] = None
        if self.config.mining:
            self.mining = MiningProcess(
                self.sim,
                self.running_nodes,
                block_interval=self.config.block_interval,
                txs_per_block=self.config.txs_per_block,
            )
            if self.config.pre_mined_blocks > 0:
                history = self.mining.premine(self.config.pre_mined_blocks)
                for node in self.nodes:
                    for block in history:
                        node.chain.add_block(block)
                    node.tip_history[-1] = (0.0, node.chain.height)
        self.txgen: Optional[TransactionGenerator] = None
        if self.config.tx_rate > 0:
            self.txgen = TransactionGenerator(
                self.sim, self.running_nodes, tx_rate=self.config.tx_rate
            )
        self.churn: Optional[ChurnProcess] = None
        if self.config.churn_per_10min:
            self.churn = ChurnProcess(
                self.sim,
                self.running_nodes,
                self.add_replacement_node,
                departures_per_10min=self.config.churn_per_10min,
            )
        #: Fault injector, when the config carries a plan.  This fidelity
        #: supports every fault kind including crash/restart (the node
        #: provider is the live population).
        self.fault_injector = None
        if self.config.faults is not None:
            self.fault_injector = self.sim.install_faults(
                self.config.faults,
                asn_of=self.universe.asn_of,
                node_provider=self.running_nodes,
            )
        #: Attack force, when the config carries a plan.  Installed last
        #: so eclipse specs can target the standing roster; attackers are
        #: kept off ``self.nodes`` (churn, mining, and the sync metric
        #: see honest nodes only).
        self.attack_force = None
        if self.config.attack is not None:
            from ..adversary.install import install_attack

            self.attack_force = install_attack(self, self.config.attack)

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def _clone_node_config(self) -> NodeConfig:
        base = self.config.node_config
        # Dataclass shallow copy with fresh mutable fields.
        from dataclasses import replace

        return replace(
            base,
            proc_times=dict(base.proc_times),
            policies=replace(base.policies),
        )

    def _make_node(self, record: NodeRecord) -> BitcoinNode:
        node = BitcoinNode(self.sim, record.addr, self._clone_node_config())
        self._seed_tables(node)
        return node

    def _seed_tables(self, node: BitcoinNode) -> None:
        """Pollute the node's addrman with the measured 15/85 mixture."""
        reachable_addrs = [
            addr for addr in self._reachable_pool if addr != node.addr
        ]
        n_reach = min(self.config.table_reachable_sample, len(reachable_addrs))
        share = self.config.addr_reachable_share
        fake = self.population.fake
        if fake:
            unreachable_pool = self._unreachable_pool + [
                record.addr for record in fake
            ]
        else:
            unreachable_pool = self._unreachable_pool
        n_unreach = min(
            len(unreachable_pool), round(n_reach * (1 - share) / share)
        )
        node.bootstrap(
            self._rng.sample(reachable_addrs, n_reach)
            + self._rng.sample(unreachable_pool, n_unreach)
        )

    def pollute_addrman(self, node: BitcoinNode) -> None:
        """Seed an external node's tables with the measured 15/85 mixture.

        Used by the §IV-B experiments to drop an observer node into the
        world with the address-plane state a real 2020 node would have.
        """
        self._seed_tables(node)

    def make_observer_node(
        self, config: Optional[NodeConfig] = None
    ) -> BitcoinNode:
        """Create (but do not start) a fresh measurement node.

        The node gets a fresh address in the reachable hosting profile and
        polluted tables; it is appended to the scenario's node list so
        churn/mining treat it like any other node once started.
        """
        asn = self.universe.sample_asn("reachable", self._rng)
        addr = self.universe.allocate_address(asn)
        node = BitcoinNode(
            self.sim, addr, config if config is not None else self._clone_node_config()
        )
        self._seed_tables(node)
        self.nodes.append(node)
        return node

    def running_nodes(self) -> List[BitcoinNode]:
        return [node for node in self.nodes if node.running]

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, warmup: float = 0.0) -> None:
        """Start every process; optionally run a warm-up period."""
        for node in self.nodes:
            node.start()
        if self.mining is not None:
            self.mining.start()
        if self.txgen is not None:
            self.txgen.start()
        if self.churn is not None:
            self.churn.start()
        if warmup > 0:
            self.sim.run_for(warmup)

    def add_replacement_node(self) -> Optional[BitcoinNode]:
        """A new reachable node joins: fresh chain, polluted tables.

        Replacement tables carry the same 15/85 mixture as the standing
        network — a joiner's addrman fills from its first GETADDR
        exchanges, which are dominated by unreachable gossip (§IV-B), so
        its slot-filling is as slow as everyone else's.  When the unique-
        address pool is exhausted, departed addresses are recycled (nodes
        rejoining, as in Fig. 12).
        """
        if self._next_replacement < len(self._replacement_pool):
            record = self._replacement_pool[self._next_replacement]
            self._next_replacement += 1
            addr = record.addr
        else:
            stopped = [node for node in self.nodes if not node.running]
            if not stopped:
                return None
            old = self._rng.choice(stopped)
            self.nodes.remove(old)
            addr = old.addr
        node = BitcoinNode(self.sim, addr, self._clone_node_config())
        self._seed_tables(node)
        node.start()
        self.nodes.append(node)
        self.seeder.register(addr)
        return node

    # ------------------------------------------------------------------
    # Measurement helpers
    # ------------------------------------------------------------------
    def tier_census(self) -> Dict[str, int]:
        """Count live behaviors per tier (transport's view of the world).

        Calibration metrics (sync fraction, relay delay, attempt logs)
        are drawn only from ``self.nodes`` — all full tier — so the
        census is diagnostic: it shows how much of the world the light
        tier is carrying in hybrid runs.
        """
        return self.sim.network.tier_census()

    @property
    def best_height(self) -> int:
        if self.mining is not None:
            return self.mining.best_height
        return max((node.chain.height for node in self.nodes), default=0)

    def sync_fraction(self) -> float:
        """Share of running reachable nodes holding the best chain."""
        running = self.running_nodes()
        if not running:
            return 0.0
        best = self.best_height
        synced = sum(1 for node in running if node.chain.height >= best)
        return synced / len(running)
