"""The node population: who exists, of what class, hosted where.

The population generator materialises address *records* for the four node
classes the paper distinguishes:

* ``REACHABLE`` — accepts inbound connections; the ~10K-node network
  Bitnodes sees (≈29K unique over 60 days under churn);
* ``RESPONSIVE`` — unreachable but verifiably running Bitcoin (answers the
  VER probe with FIN); ≈54K at any time, ≈163K cumulative;
* ``SILENT`` — unreachable addresses that do not answer probes: departed
  hosts, firewalled nodes, stale gossip; the bulk of the ≈694K;
* ``FAKE`` — addresses fabricated by malicious ADDR flooders (§IV-B);
  created on demand by :mod:`repro.netmodel.malicious`.

Counts follow the paper's calibration scaled by ``scale``; port and
critical-infrastructure flags follow the measured distributions.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ScenarioError
from ..simnet.addresses import DEFAULT_PORT, NetAddr
from . import calibration as cal
from .asmap import ASUniverse


class NodeClass(enum.Enum):
    """The paper's node taxonomy."""

    REACHABLE = "reachable"
    RESPONSIVE = "responsive"
    SILENT = "silent"
    FAKE = "fake"

    @property
    def hosting_profile(self) -> str:
        """Which Table-I hosting distribution this class follows."""
        if self is NodeClass.REACHABLE:
            return "reachable"
        if self is NodeClass.RESPONSIVE:
            return "responsive"
        return "unreachable"

    @property
    def is_unreachable(self) -> bool:
        return self is not NodeClass.REACHABLE


@dataclass(slots=True)
class NodeRecord:
    """One address in the universe and its ground truth.

    Slotted: paper-scale worlds hold tens of thousands of records, and
    the per-instance ``__dict__`` would cost more than the fields.
    """

    addr: NetAddr
    asn: int
    node_class: NodeClass
    #: Belongs to the critical-infrastructure blacklist (§III-A ethics).
    critical: bool = False


@dataclass
class PopulationConfig:
    """Sizing of the population, as fractions of the paper's campaign.

    ``scale=1.0`` reproduces the paper's absolute counts; benchmarks and
    tests run smaller scales and compare ratios, which are scale-free.
    """

    scale: float = 0.1
    campaign_days: float = float(cal.CAMPAIGN_DAYS)
    #: Override absolute counts (pre-scale); None = paper values.
    cumulative_reachable: Optional[int] = None
    cumulative_responsive: Optional[int] = None
    cumulative_unreachable: Optional[int] = None
    critical_fraction: float = cal.EXCLUDED_BITNODES / cal.BITNODES_ADDRS_PER_SNAPSHOT
    reachable_default_port_share: float = cal.REACHABLE_DEFAULT_PORT_SHARE
    unreachable_default_port_share: float = cal.UNREACHABLE_DEFAULT_PORT_SHARE
    #: Distinct non-default ports (scaled down with the population).
    reachable_port_pool: int = cal.REACHABLE_OTHER_PORTS
    unreachable_port_pool: int = cal.UNREACHABLE_OTHER_PORTS

    def validate(self) -> None:
        if self.scale <= 0:
            raise ScenarioError(f"scale must be positive, got {self.scale}")
        if not 0 <= self.critical_fraction < 1:
            raise ScenarioError("critical_fraction must be in [0, 1)")

    def scaled(self, base: int) -> int:
        return max(1, round(base * self.scale))

    @property
    def n_reachable(self) -> int:
        base = self.cumulative_reachable or cal.CUMULATIVE_REACHABLE
        return self.scaled(base)

    @property
    def n_responsive(self) -> int:
        base = self.cumulative_responsive or cal.CUMULATIVE_RESPONSIVE
        return self.scaled(base)

    @property
    def n_silent(self) -> int:
        total = self.cumulative_unreachable or cal.CUMULATIVE_UNREACHABLE
        return max(1, self.scaled(total) - self.n_responsive)

    @property
    def alive_reachable_target(self) -> int:
        """Reachable nodes online at any instant (≈10K at scale 1)."""
        return self.scaled(cal.BITNODES_ADDRS_PER_SNAPSHOT)


class Population:
    """All generated records, indexed for classification."""

    def __init__(
        self,
        rng: random.Random,
        universe: ASUniverse,
        config: Optional[PopulationConfig] = None,
    ) -> None:
        self.config = config if config is not None else PopulationConfig()
        self.config.validate()
        self._rng = rng
        self.universe = universe
        self.reachable: List[NodeRecord] = []
        self.responsive: List[NodeRecord] = []
        self.silent: List[NodeRecord] = []
        self.fake: List[NodeRecord] = []
        self._by_addr: Dict[NetAddr, NodeRecord] = {}
        self._reachable_ports = self._make_port_pool(
            self.config.reachable_port_pool
        )
        self._unreachable_ports = self._make_port_pool(
            self.config.unreachable_port_pool
        )
        self._generate()

    def _make_port_pool(self, size: int) -> List[int]:
        size = max(1, round(size * min(1.0, self.config.scale * 4)))
        pool = set()
        while len(pool) < size:
            port = self._rng.randrange(1024, 65536)
            if port != DEFAULT_PORT:
                pool.add(port)
        return sorted(pool)

    def _pick_port(self, default_share: float, pool: List[int]) -> int:
        if self._rng.random() < default_share:
            return DEFAULT_PORT
        return self._rng.choice(pool)

    def _generate(self) -> None:
        for _ in range(self.config.n_reachable):
            self._make_record(
                NodeClass.REACHABLE,
                self._pick_port(
                    self.config.reachable_default_port_share,
                    self._reachable_ports,
                ),
                critical=self._rng.random() < self.config.critical_fraction,
            )
        for _ in range(self.config.n_responsive):
            self._make_record(
                NodeClass.RESPONSIVE,
                self._pick_port(
                    self.config.unreachable_default_port_share,
                    self._unreachable_ports,
                ),
            )
        for _ in range(self.config.n_silent):
            self._make_record(
                NodeClass.SILENT,
                self._pick_port(
                    self.config.unreachable_default_port_share,
                    self._unreachable_ports,
                ),
            )

    def _make_record(
        self, node_class: NodeClass, port: int, critical: bool = False
    ) -> NodeRecord:
        asn = self.universe.sample_asn(node_class.hosting_profile, self._rng)
        addr = self.universe.allocate_address(asn, port=port)
        record = NodeRecord(
            addr=addr, asn=asn, node_class=node_class, critical=critical
        )
        self._by_addr[addr] = record
        self._bucket(node_class).append(record)
        return record

    def _bucket(self, node_class: NodeClass) -> List[NodeRecord]:
        return {
            NodeClass.REACHABLE: self.reachable,
            NodeClass.RESPONSIVE: self.responsive,
            NodeClass.SILENT: self.silent,
            NodeClass.FAKE: self.fake,
        }[node_class]

    # ------------------------------------------------------------------
    # Fake addresses (malicious flooders mint these lazily)
    # ------------------------------------------------------------------
    def mint_fake_address(self) -> NodeRecord:
        """A fabricated unreachable address advertised by a flooder."""
        return self._make_record(
            NodeClass.FAKE,
            self._pick_port(
                self.config.unreachable_default_port_share,
                self._unreachable_ports,
            ),
        )

    def trim_silent(self, count: int) -> int:
        """Drop ``count`` silent records (and their index entries).

        Scenario builders call this when another source of unreachable
        addresses (malicious flooder pools) is accounted against the same
        calibrated total, so the campaign's cumulative unreachable count
        stays on target.  Returns the number actually removed.
        """
        removed = 0
        while removed < count and len(self.silent) > 1:
            record = self.silent.pop()
            del self._by_addr[record.addr]
            removed += 1
        return removed

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def record(self, addr: NetAddr) -> Optional[NodeRecord]:
        return self._by_addr.get(addr)

    def classify(self, addr: NetAddr) -> Optional[NodeClass]:
        """Ground-truth class of ``addr`` (None if outside the universe)."""
        record = self._by_addr.get(addr)
        return record.node_class if record is not None else None

    def is_reachable_addr(self, addr: NetAddr) -> bool:
        record = self._by_addr.get(addr)
        return record is not None and record.node_class is NodeClass.REACHABLE

    @property
    def unreachable_records(self) -> List[NodeRecord]:
        """Responsive + silent + fake: everything not reachable."""
        return self.responsive + self.silent + self.fake

    def addresses(self, node_class: NodeClass) -> List[NetAddr]:
        return [record.addr for record in self._bucket(node_class)]

    def sample_records(
        self, records: List[NodeRecord], count: int
    ) -> List[NodeRecord]:
        count = min(count, len(records))
        return self._rng.sample(records, count)

    def summary(self) -> Dict[str, int]:
        return {
            "reachable": len(self.reachable),
            "responsive": len(self.responsive),
            "silent": len(self.silent),
            "fake": len(self.fake),
        }
