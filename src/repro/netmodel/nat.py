"""NAT / firewall behaviour of unreachable addresses.

The paper's prober (§III-C) distinguishes unreachable nodes by how they
answer an unsolicited, hand-crafted VER packet:

* **responsive** — the host runs Bitcoin behind NAT; the TCP stack accepts
  and Bitcoin immediately closes, so the probe sees a FIN.  The paper
  validated this with three in-house unreachable nodes.
* **silent** — the host is gone, or a firewall drops unsolicited traffic;
  the probe times out.  (The paper notes this makes the responsive count a
  lower bound.)
* A third behaviour matters for connection *attempts* even though the
  paper does not probe for it: stale addresses whose host is up but no
  longer listens answer with an **RST**, failing attempts quickly rather
  than at the TCP timeout.  The mix of RST vs. silent failures sets the
  pace of the outbound-connection loop (Fig. 7).
"""

from __future__ import annotations

import random
from typing import Callable, Iterable, Optional

from ..simnet.addresses import NetAddr
from ..simnet.transport import Network, ProbeBehavior

#: A scenario-provided hook that installs (or retargets) a light-tier
#: endpoint for an unreachable address instead of a raw table entry.
EndpointFactory = Callable[[NetAddr, ProbeBehavior], None]


class NatModel:
    """Installs per-address probe behaviour on the simulated network.

    In full-fidelity scenarios each unreachable address becomes a raw
    probe-behavior table entry.  Hybrid scenarios pass an
    ``endpoint_factory`` and the same calls install light-tier endpoint
    objects instead; the transport answers connects and probes with
    identical timing either way, and the RNG draw order here (one draw
    per silent-class address) is unchanged, so the two representations
    produce bit-identical runs.
    """

    def __init__(
        self,
        network: Network,
        rng: random.Random,
        rst_fraction: float = 0.45,
        endpoint_factory: Optional[EndpointFactory] = None,
    ):
        if not 0 <= rst_fraction <= 1:
            raise ValueError(f"rst_fraction must be in [0, 1], got {rst_fraction}")
        self.network = network
        self._rng = rng
        #: Share of *silent-class* addresses that actually answer RST
        #: (host up, port closed) rather than dropping silently.
        self.rst_fraction = rst_fraction
        self._endpoint_factory = endpoint_factory

    def _install(self, addr: NetAddr, behavior: ProbeBehavior) -> None:
        if self._endpoint_factory is not None:
            self._endpoint_factory(addr, behavior)
        else:
            self.network.set_probe_behavior(addr, behavior)

    def mark_responsive(self, addrs: Iterable[NetAddr]) -> int:
        """Register addresses as responsive unreachable nodes (FIN)."""
        count = 0
        for addr in addrs:
            self._install(addr, ProbeBehavior.FIN)
            count += 1
        return count

    def mark_silent(self, addrs: Iterable[NetAddr]) -> int:
        """Register non-responsive addresses (RST or silent drop)."""
        count = 0
        for addr in addrs:
            if self._rng.random() < self.rst_fraction:
                self._install(addr, ProbeBehavior.RST)
            else:
                self._install(addr, ProbeBehavior.SILENT)
            count += 1
        return count

    def mark_offline(self, addr: NetAddr) -> None:
        """An address whose host departed entirely: silent from now on."""
        self._install(addr, ProbeBehavior.SILENT)
