"""Lightweight GETADDR responders for longitudinal crawls.

A 60-day crawl campaign does not need full protocol nodes for the ~10K
reachable population — only something that speaks the handshake and
answers GETADDR the way a Bitcoin Core addrman would.  :class:`AddrServer`
is that minimal listener: it holds a materialised address table (a sample
of the currently gossiped address pool) and serves 23%-capped-at-1000
samples of it, always prepending its own address (the paper's §IV-B
malicious-detection heuristic rests on that behaviour).

Message processing is immediate (no round-robin engine): crawl
experiments measure *address content*, not queueing delay.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from ..simnet.addresses import NetAddr, TimestampedAddr
from ..simnet.simulator import Simulator
from ..simnet.transport import Socket
from ..bitcoin import config as cfg
from ..bitcoin.messages import Addr, Message, Verack, Version


class AddrServer:
    """A reachable endpoint that serves addrman samples over GETADDR."""

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        rng: random.Random,
        table: Optional[Sequence[NetAddr]] = None,
        max_inbound: int = cfg.MAX_INBOUND,
        response_max: int = cfg.ADDR_RESPONSE_MAX,
        response_pct: int = cfg.ADDR_RESPONSE_MAX_PCT,
    ) -> None:
        self.sim = sim
        self.addr = addr
        self._rng = rng
        self.table: List[NetAddr] = list(table) if table is not None else []
        self.max_inbound = max_inbound
        self.response_max = response_max
        self.response_pct = response_pct
        self.listening = False
        self._inbound = 0
        self.getaddr_served = 0

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.listening:
            return
        self.sim.network.listen(self.addr, self)
        self.listening = True

    def stop(self) -> None:
        if not self.listening:
            return
        self.sim.network.disconnect_host(self.addr)
        self.listening = False
        self._inbound = 0

    def set_table(self, table: Sequence[NetAddr]) -> None:
        """Re-materialise the served address table (per-snapshot refresh)."""
        self.table = list(table)

    # ------------------------------------------------------------------
    # Transport callbacks
    # ------------------------------------------------------------------
    def on_inbound_connection(self, socket: Socket) -> bool:
        if not self.listening or self._inbound >= self.max_inbound:
            return False
        self._inbound += 1
        socket.handler = self
        return True

    def on_disconnect(self, socket: Socket) -> None:
        self._inbound = max(0, self._inbound - 1)

    def on_message(self, socket: Socket, message: Message) -> None:
        if not socket.open:
            return
        if message.command == "version":
            socket.send(
                Version(
                    sender=self.addr,
                    receiver=socket.remote_addr,
                    start_height=0,
                )
            )
            socket.send(Verack())
        elif message.command == "getaddr":
            self.getaddr_served += 1
            socket.send(Addr(addresses=tuple(self._sample_response())))

    # ------------------------------------------------------------------
    # ADDR response construction
    # ------------------------------------------------------------------
    def _sample_response(self) -> List[TimestampedAddr]:
        limit = 0
        if self.table:
            limit = min(
                self.response_max,
                max(1, len(self.table) * self.response_pct // 100),
            )
        sampled = (
            self._rng.sample(self.table, min(limit, len(self.table)))
            if limit
            else []
        )
        now = self.sim.now
        response = [TimestampedAddr(self.addr, now)]
        response += [TimestampedAddr(a, now) for a in sampled]
        return response[: self.response_max]
