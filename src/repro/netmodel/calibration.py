"""Calibration constants: every number the paper measured.

This module is the single source of truth tying the simulation to the
paper.  Scenario builders read these values (scaled by a ``scale`` factor)
and the benchmark harnesses print them next to the measured values in the
EXPERIMENTS.md comparisons.

All values come from the paper's text, tables, and figures; section
references are given inline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

# ---------------------------------------------------------------------------
# §III-A / Fig. 3 — reachable-address collection
# ---------------------------------------------------------------------------

#: Average IP addresses per snapshot from Bitnodes.
BITNODES_ADDRS_PER_SNAPSHOT = 10_114
#: Average IP addresses per snapshot from the DNS server database.
DNS_ADDRS_PER_SNAPSHOT = 6_637
#: Addresses common to both sources.
COMMON_ADDRS_PER_SNAPSHOT = 6_078
#: Critical-infrastructure exclusions (Bitnodes / DNS / common).
EXCLUDED_BITNODES = 439
EXCLUDED_DNS = 342
EXCLUDED_COMMON = 329
#: Reachable nodes our node connected to, per snapshot.
CONNECTED_PER_SNAPSHOT = 8_270
#: Reachable nodes found only via the DNS database (skipped by Bitnodes).
DNS_ONLY_CONNECTED = 404
#: Unique reachable addresses over the 60-day campaign.
CUMULATIVE_REACHABLE = 28_781
#: Share of reachable nodes on the default 8333 port.
REACHABLE_DEFAULT_PORT_SHARE = 0.9578
#: Distinct non-default ports among reachable nodes.
REACHABLE_OTHER_PORTS = 264

# ---------------------------------------------------------------------------
# §IV-A / Figs. 4-5 — unreachable and responsive nodes
# ---------------------------------------------------------------------------

#: Unique unreachable addresses over 60 days.
CUMULATIVE_UNREACHABLE = 694_696
#: Unreachable addresses harvested per snapshot (approximate).
UNREACHABLE_PER_SNAPSHOT = 195_000
#: Share of unreachable addresses on the default port.
UNREACHABLE_DEFAULT_PORT_SHARE = 0.8854
#: Distinct non-default ports among unreachable addresses.
UNREACHABLE_OTHER_PORTS = 9_414
#: Cumulative responsive (VER-answering) addresses.
CUMULATIVE_RESPONSIVE = 163_496
#: Responsive addresses per snapshot (≈54K, 27.69% of per-snapshot pool).
RESPONSIVE_PER_SNAPSHOT = 54_000
#: Responsive share of all unreachable addresses (cumulative).
RESPONSIVE_SHARE_CUMULATIVE = 0.2354
#: Responsive share per snapshot.
RESPONSIVE_SHARE_PER_SNAPSHOT = 0.2769
#: Ratio of unreachable to reachable network size ("24x").
UNREACHABLE_TO_REACHABLE_RATIO = 24.0
#: Campaign length in days (04 Apr 2020 – 04 Jun 2020).
CAMPAIGN_DAYS = 60

# ---------------------------------------------------------------------------
# §IV-A / Table I — AS hosting
# ---------------------------------------------------------------------------

#: Top-20 ASes hosting reachable nodes: (ASN, percent).
TOP_AS_REACHABLE: List[Tuple[int, float]] = [
    (3320, 8.08), (24940, 5.05), (8881, 4.60), (16509, 3.62), (6805, 2.97),
    (14061, 2.84), (7922, 2.55), (16276, 2.43), (3209, 2.06), (12322, 1.37),
    (7545, 1.33), (15169, 1.03), (3303, 0.99), (6830, 0.95), (12389, 0.94),
    (701, 0.88), (20676, 0.83), (51167, 0.82), (3352, 0.80), (4134, 0.76),
]
#: Top-20 ASes hosting unreachable nodes.
TOP_AS_UNREACHABLE: List[Tuple[int, float]] = [
    (3320, 6.36), (4134, 5.34), (7922, 4.24), (6939, 3.69), (8881, 2.59),
    (4837, 2.28), (12389, 2.04), (6830, 1.89), (3209, 1.65), (16509, 1.54),
    (7018, 1.32), (6805, 1.31), (9009, 1.19), (2856, 1.14), (3215, 0.80),
    (4808, 0.80), (14061, 0.78), (22773, 0.74), (1221, 0.74), (24940, 0.72),
]
#: Top-20 ASes hosting responsive nodes.
TOP_AS_RESPONSIVE: List[Tuple[int, float]] = [
    (4134, 6.18), (3320, 5.90), (12389, 4.03), (4837, 3.77), (9009, 3.28),
    (8881, 3.07), (6805, 2.87), (3209, 2.51), (7922, 1.56), (14061, 1.44),
    (6830, 1.43), (3352, 1.25), (24940, 1.18), (3269, 1.15), (4808, 1.13),
    (60068, 1.12), (209, 1.11), (7545, 1.10), (701, 1.07), (16276, 0.99),
]
#: Distinct ASes hosting each class.
AS_COUNT_REACHABLE = 2_000
AS_COUNT_UNREACHABLE = 8_494
AS_COUNT_RESPONSIVE = 4_453
#: ASes needed to cover 50% of each class.
AS_50PCT_REACHABLE = 25
AS_50PCT_UNREACHABLE = 36
AS_50PCT_RESPONSIVE = 24

# ---------------------------------------------------------------------------
# §IV-B / Figs. 6-8 — addressing protocol
# ---------------------------------------------------------------------------

#: Average share of reachable addresses in an ADDR message.
ADDR_REACHABLE_SHARE = 0.149
#: Average share of unreachable addresses in an ADDR message.
ADDR_UNREACHABLE_SHARE = 0.851
#: Average success rate of outgoing connection attempts.
CONNECTION_SUCCESS_RATE = 0.112
#: Worst observed run: 8 successes out of 137 attempts.
CONNECTION_WORST_RUN = (8, 137)
#: Average outgoing connections observed over the Fig. 6 experiment.
MEAN_OUTGOING_CONNECTIONS = 6.67
#: Fraction of time with fewer than 8 outgoing connections.
TIME_BELOW_8_CONNECTIONS = 0.60
#: Fig. 6 experiment duration (seconds).
CONN_STABILITY_DURATION = 260.0
#: Observed range of outgoing connections (includes 2 feelers).
CONNECTION_RANGE = (2, 10)
#: Malicious ADDR-flooding nodes detected.
MALICIOUS_NODE_COUNT = 73
#: Malicious nodes that sent more than 100K unreachable addresses.
MALICIOUS_OVER_100K = 8
#: Largest per-node flood observed (addresses).
MALICIOUS_MAX_FLOOD = 400_000
#: Share of malicious nodes hosted in AS3320.
MALICIOUS_AS3320_SHARE = 0.59
MALICIOUS_AS3320 = 3320

# ---------------------------------------------------------------------------
# §IV-C / Figs. 10-11 — relaying protocol
# ---------------------------------------------------------------------------

#: Mean / max block relaying time (receipt → relay to last connection).
BLOCK_RELAY_MEAN = 1.39
BLOCK_RELAY_MAX = 17.0
#: Mean / max transaction relaying time.
TX_RELAY_MEAN = 0.45
TX_RELAY_MAX = 8.0
#: The measurement node's connection count (8 outgoing + 17 incoming).
RELAY_NODE_OUTGOING = 8
RELAY_NODE_INCOMING = 17

# ---------------------------------------------------------------------------
# §IV-D / Figs. 12-13 — churn
# ---------------------------------------------------------------------------

#: Reachable nodes leaving (and joining) the network per day.
DAILY_CHURN_NODES = 708
#: Daily churn as a share of the reachable network.
DAILY_CHURN_RATE = 0.086
#: Mean network lifetime of a reachable node (days).
MEAN_NODE_LIFETIME_DAYS = 16.6
#: Nodes that never left during the 60-day campaign.
ALWAYS_ON_NODES = 3_034
#: Time for a restarted node to resync and relay again (11 min 14 s).
RESYNC_TIME_SECONDS = 674.0
#: Synchronized-node departures per 10 minutes, 2019 vs 2020.
SYNC_DEPARTURES_2019 = 3.9
SYNC_DEPARTURES_2020 = 7.6

# ---------------------------------------------------------------------------
# Fig. 1 — network synchronization
# ---------------------------------------------------------------------------

SYNC_MEAN_2019 = 72.02
SYNC_MEDIAN_2019 = 80.38
SYNC_MEAN_2020 = 61.91
SYNC_MEDIAN_2020 = 65.47


@dataclass(frozen=True)
class PaperTargets:
    """A grouped view of the headline targets, for report printing."""

    name: str
    values: Dict[str, float]


def headline_targets() -> List[PaperTargets]:
    """The per-experiment target values, grouped for EXPERIMENTS.md."""
    return [
        PaperTargets(
            "fig1-sync",
            {
                "mean_2019": SYNC_MEAN_2019,
                "median_2019": SYNC_MEDIAN_2019,
                "mean_2020": SYNC_MEAN_2020,
                "median_2020": SYNC_MEDIAN_2020,
            },
        ),
        PaperTargets(
            "fig4-unreachable",
            {
                "cumulative": CUMULATIVE_UNREACHABLE,
                "per_snapshot": UNREACHABLE_PER_SNAPSHOT,
            },
        ),
        PaperTargets(
            "fig5-responsive",
            {
                "cumulative": CUMULATIVE_RESPONSIVE,
                "per_snapshot": RESPONSIVE_PER_SNAPSHOT,
            },
        ),
        PaperTargets(
            "fig7-success",
            {"success_rate": CONNECTION_SUCCESS_RATE},
        ),
        PaperTargets(
            "fig10-block-relay",
            {"mean": BLOCK_RELAY_MEAN, "max": BLOCK_RELAY_MAX},
        ),
        PaperTargets(
            "fig11-tx-relay",
            {"mean": TX_RELAY_MEAN, "max": TX_RELAY_MAX},
        ),
        PaperTargets(
            "fig13-churn",
            {
                "daily_nodes": DAILY_CHURN_NODES,
                "daily_rate": DAILY_CHURN_RATE,
                "mean_lifetime_days": MEAN_NODE_LIFETIME_DAYS,
            },
        ),
    ]
