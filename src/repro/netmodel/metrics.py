"""Topology metrics of a live protocol network.

The paper's §IV-B argument is structural: with 10K reachable nodes at
outdegree 8 a block needs ~5 relay rounds (8^5 > 10K); if the effective
outdegree drops to 2 it needs ~14 (2^14 > 10K).  These helpers extract
the *actual* connection graph from a running
:class:`~repro.netmodel.scenario.ProtocolScenario` and compute the
degree/connectivity statistics that argument rests on.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import networkx as nx

from ..bitcoin.node import BitcoinNode
from ..errors import AnalysisError


def connection_graph(nodes: Sequence[BitcoinNode]) -> "nx.DiGraph":
    """The directed outbound-connection graph of running nodes.

    An edge u→v means u holds an established *outbound* connection to v.
    Only connections between nodes in ``nodes`` are included.
    """
    graph = nx.DiGraph()
    addresses = {node.addr for node in nodes if node.running}
    for node in nodes:
        if not node.running:
            continue
        graph.add_node(node.addr)
        for peer in node.peers.values():
            if (
                peer.established
                and not peer.is_inbound
                and peer.remote_addr in addresses
            ):
                graph.add_edge(node.addr, peer.remote_addr)
    return graph


@dataclass(frozen=True)
class TopologyStats:
    """Degree and connectivity summary of one network snapshot."""

    nodes: int
    edges: int
    mean_outdegree: float
    min_outdegree: int
    max_indegree: int
    #: Fraction of nodes in the largest weakly connected component.
    largest_component_share: float
    #: Diameter of the largest component viewed undirected (None if the
    #: component is trivial).
    diameter: Optional[int]

    @property
    def expected_propagation_rounds(self) -> float:
        """The paper's back-of-envelope: rounds r with d^r >= n."""
        if self.mean_outdegree <= 1 or self.nodes <= 1:
            return float("inf")
        return math.log(self.nodes) / math.log(self.mean_outdegree)


def topology_stats(nodes: Sequence[BitcoinNode]) -> TopologyStats:
    """Compute :class:`TopologyStats` for the running nodes."""
    graph = connection_graph(nodes)
    if graph.number_of_nodes() == 0:
        raise AnalysisError("no running nodes to measure")
    outdegrees = [degree for _node, degree in graph.out_degree()]
    indegrees = [degree for _node, degree in graph.in_degree()]
    undirected = graph.to_undirected()
    components = list(nx.connected_components(undirected))
    largest = max(components, key=len)
    diameter: Optional[int] = None
    if len(largest) > 1:
        subgraph = undirected.subgraph(largest)
        diameter = nx.diameter(subgraph)
    return TopologyStats(
        nodes=graph.number_of_nodes(),
        edges=graph.number_of_edges(),
        mean_outdegree=sum(outdegrees) / len(outdegrees),
        min_outdegree=min(outdegrees),
        max_indegree=max(indegrees) if indegrees else 0,
        largest_component_share=len(largest) / graph.number_of_nodes(),
        diameter=diameter,
    )


def degree_histogram(nodes: Sequence[BitcoinNode]) -> Dict[int, int]:
    """Outdegree histogram: degree → node count."""
    graph = connection_graph(nodes)
    histogram: Dict[int, int] = {}
    for _node, degree in graph.out_degree():
        histogram[degree] = histogram.get(degree, 0) + 1
    return histogram


def pairwise_distances_sample(
    nodes: Sequence[BitcoinNode], sample: int = 200, seed: int = 0
) -> List[int]:
    """Shortest-path lengths for a sample of connected node pairs.

    Used to validate the propagation-rounds estimate: block hops track
    graph distance.
    """
    import random

    graph = connection_graph(nodes).to_undirected()
    addresses = list(graph.nodes)
    if len(addresses) < 2:
        raise AnalysisError("need at least two nodes")
    rng = random.Random(seed)
    lengths: List[int] = []
    attempts = 0
    while len(lengths) < sample and attempts < sample * 10:
        attempts += 1
        a, b = rng.sample(addresses, 2)
        try:
            lengths.append(nx.shortest_path_length(graph, a, b))
        except nx.NetworkXNoPath:
            continue
    if not lengths:
        raise AnalysisError("no connected pairs found")
    return lengths
