"""The Autonomous-System universe and node-to-AS assignment.

The paper's routing-attack analysis (§IV-A, Table I) rests on *where* the
three node classes live: reachable nodes across 2,000 ASes (25 covering
50%), unreachable across 8,494 (36 covering 50%), responsive across 4,453
(24 covering 50%), with partially overlapping top-20 lists.

We reproduce this with a synthetic AS universe whose per-class hosting
distributions take the paper's measured Table-I percentages for the top 20
ASes verbatim, and a calibrated power-law tail over synthetic ASes sized so
the 50%-coverage counts land on the paper's numbers.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ScenarioError
from ..simnet.addresses import NetAddr
from . import calibration as cal

#: First synthetic ASN; real Table-I ASNs are far below this.
_SYNTHETIC_ASN_BASE = 100_000


@dataclass
class HostingProfile:
    """Per-class hosting distribution over ASes."""

    name: str
    #: Paper-measured (ASN, percent) head of the distribution.
    top: List[Tuple[int, float]]
    #: Total distinct ASes hosting this class.
    as_count: int
    #: ASes required to cover 50% of the class (calibration target).
    k50_target: int


#: The three measured hosting profiles from Table I.
PROFILES: Dict[str, HostingProfile] = {
    "reachable": HostingProfile(
        "reachable", cal.TOP_AS_REACHABLE, cal.AS_COUNT_REACHABLE,
        cal.AS_50PCT_REACHABLE,
    ),
    "unreachable": HostingProfile(
        "unreachable", cal.TOP_AS_UNREACHABLE, cal.AS_COUNT_UNREACHABLE,
        cal.AS_50PCT_UNREACHABLE,
    ),
    "responsive": HostingProfile(
        "responsive", cal.TOP_AS_RESPONSIVE, cal.AS_COUNT_RESPONSIVE,
        cal.AS_50PCT_RESPONSIVE,
    ),
}


def _k50(weights: Sequence[float]) -> int:
    """ASes needed to cover half the mass, given unnormalised weights."""
    total = sum(weights)
    ordered = sorted(weights, reverse=True)
    acc = 0.0
    for index, weight in enumerate(ordered, start=1):
        acc += weight
        if acc >= total / 2:
            return index
    return len(ordered)


def build_class_weights(profile: HostingProfile) -> List[Tuple[int, float]]:
    """(ASN, weight) pairs for a class: measured head + calibrated tail.

    The tail is ``1/rank**s`` over synthetic ASes, scaled to the mass the
    head leaves over; ``s`` is found by bisection so the ASes-to-cover-50%
    count matches the paper's.
    """
    head_mass = sum(pct for _asn, pct in profile.top)
    tail_count = profile.as_count - len(profile.top)
    if tail_count <= 0:
        raise ScenarioError(
            f"as_count {profile.as_count} must exceed the top list length"
        )
    remaining = 100.0 - head_mass

    def tail_weights(exponent: float) -> List[float]:
        raw = [1.0 / (rank**exponent) for rank in range(1, tail_count + 1)]
        scale = remaining / sum(raw)
        return [value * scale for value in raw]

    def coverage(exponent: float) -> int:
        head = [pct for _asn, pct in profile.top]
        return _k50(head + tail_weights(exponent))

    # k50 decreases monotonically as the tail steepens; bisect on s.
    low, high = 0.05, 3.0
    for _ in range(48):
        mid = (low + high) / 2
        if coverage(mid) > profile.k50_target:
            low = mid
        else:
            high = mid
    exponent = (low + high) / 2
    tail = tail_weights(exponent)
    pairs = list(profile.top)
    pairs.extend(
        (_SYNTHETIC_ASN_BASE + rank, weight)
        for rank, weight in enumerate(tail, start=1)
    )
    return pairs


class ASUniverse:
    """Allocates addresses inside ASes and assigns nodes to ASes per class.

    Each AS owns one or more /16 prefixes; an address's ``group16`` maps
    back to its AS, which both the latency model (netgroup distance) and
    the routing analysis rely on.
    """

    def __init__(self, rng: random.Random, seed_prefix: int = 1) -> None:
        self._rng = rng
        self._group_to_asn: Dict[int, int] = {}
        self._asn_prefixes: Dict[int, List[int]] = {}
        self._asn_next_host: Dict[int, int] = {}
        self._next_group = max(1, seed_prefix)
        self._class_pairs: Dict[str, List[Tuple[int, float]]] = {}
        self._class_cumweights: Dict[str, List[float]] = {}
        # Per-class shuffled tail order so the classes' AS sets overlap
        # only partially (Table I: just 10 ASes common in the top 20).
        for name, profile in PROFILES.items():
            pairs = build_class_weights(profile)
            head = pairs[: len(profile.top)]
            tail = pairs[len(profile.top):]
            tail_asns = [asn for asn, _w in tail]
            class_rng = random.Random(rng.getrandbits(64))
            class_rng.shuffle(tail_asns)
            pairs = head + [
                (asn, weight)
                for asn, (_old, weight) in zip(tail_asns, tail)
            ]
            self._class_pairs[name] = pairs
            cum: List[float] = []
            acc = 0.0
            for _asn, weight in pairs:
                acc += weight
                cum.append(acc)
            self._class_cumweights[name] = cum

    # ------------------------------------------------------------------
    # AS assignment
    # ------------------------------------------------------------------
    def class_distribution(self, class_name: str) -> List[Tuple[int, float]]:
        """The (ASN, weight) hosting distribution for a node class."""
        if class_name not in self._class_pairs:
            raise ScenarioError(f"unknown node class {class_name!r}")
        return list(self._class_pairs[class_name])

    def sample_asn(self, class_name: str, rng: Optional[random.Random] = None) -> int:
        """Draw the hosting AS for one node of ``class_name``."""
        import bisect

        pairs = self._class_pairs.get(class_name)
        if pairs is None:
            raise ScenarioError(f"unknown node class {class_name!r}")
        cum = self._class_cumweights[class_name]
        draw = (rng or self._rng).random() * cum[-1]
        index = bisect.bisect_left(cum, draw)
        return pairs[min(index, len(pairs) - 1)][0]

    # ------------------------------------------------------------------
    # Address allocation
    # ------------------------------------------------------------------
    def allocate_address(self, asn: int, port: int = 8333) -> NetAddr:
        """A fresh, unused address inside ``asn``."""
        prefixes = self._asn_prefixes.get(asn)
        if not prefixes:
            prefixes = [self._claim_prefix(asn)]
            self._asn_prefixes[asn] = prefixes
            self._asn_next_host[asn] = 1
        host = self._asn_next_host[asn]
        prefix_index, offset = divmod(host, 0xFFFE)
        while prefix_index >= len(prefixes):
            prefixes.append(self._claim_prefix(asn))
        self._asn_next_host[asn] = host + 1
        ip = (prefixes[prefix_index] << 16) | (offset + 1)
        return NetAddr(ip=ip, port=port)

    def _claim_prefix(self, asn: int) -> int:
        group = self._next_group
        self._next_group += 1
        if group > 0xFFFF:
            raise ScenarioError("exhausted the /16 prefix space")
        self._group_to_asn[group] = asn
        return group

    def asn_of(self, addr: NetAddr) -> Optional[int]:
        """The AS owning ``addr``, or None if outside the universe."""
        return self._group_to_asn.get(addr.group16)

    @property
    def allocated_as_count(self) -> int:
        return len(self._asn_prefixes)
