"""repro — a reproduction of *Root Cause Analyses for the Deteriorating
Bitcoin Network Synchronization* (Saad, Chen, Mohaisen; ICDCS 2021).

The library has four layers:

* :mod:`repro.simnet` — a deterministic discrete-event network simulator
  (clock, events, TCP-like transport with NAT semantics, latency model);
* :mod:`repro.bitcoin` — a behavioural rendering of Bitcoin Core v0.20.1:
  addrman, the connection loops, the round-robin message engine, BIP152
  compact blocks, and the paper's §V policy refinements;
* :mod:`repro.netmodel` — the population model calibrated to the paper's
  measurements (node classes, AS hosting, churn, oracles, flooders) plus
  the two scenario builders;
* :mod:`repro.core` — the paper's contribution: the Fig. 2 measurement
  pipeline and the root-cause analyses behind every figure and table.

Quick start::

    from repro.netmodel import ProtocolScenario, ProtocolConfig
    from repro.core import SyncMonitor

    scenario = ProtocolScenario(ProtocolConfig(n_reachable=100, seed=1))
    monitor = SyncMonitor(scenario, period=600.0)
    scenario.start(warmup=1800.0)
    scenario.sim.run_for(2 * 3600.0)
    print(f"mean sync: {sum(monitor.sync_percents()) / len(monitor.sync_percents()):.1f}%")
"""

from . import analysis, bitcoin, core, netmodel, simnet
from .errors import (
    AnalysisError,
    ChainError,
    ClockError,
    ConnectionClosedError,
    HandshakeError,
    ProtocolError,
    ReproError,
    ScenarioError,
    SimulationError,
    TransportError,
)

__version__ = "1.0.0"

__all__ = [
    "AnalysisError",
    "ChainError",
    "ClockError",
    "ConnectionClosedError",
    "HandshakeError",
    "ProtocolError",
    "ReproError",
    "ScenarioError",
    "SimulationError",
    "TransportError",
    "analysis",
    "bitcoin",
    "core",
    "netmodel",
    "simnet",
    "__version__",
]
