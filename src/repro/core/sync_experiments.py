"""The Fig. 1 synchronization campaign: 2019-like vs 2020-like churn.

The paper's headline observation: with the reachable network size flat at
~10K, mean synchronization fell from 72.02% (Sep-Dec 2019) to 61.91%
(Jan-Apr 2020), and the only network parameter that moved was churn among
*synchronized* nodes (3.9 → 7.6 departures per 10 minutes).

This driver runs a live protocol network under a configurable churn rate
and measures synchronization exactly as Bitnodes does — periodic sweeps
with per-node poll staleness — yielding the sample series Fig. 1's kernel
densities are built from.

Time-scale compression: the simulated chain is short, so a replacement
node's catch-up takes minutes instead of days; the churn rate is raised
correspondingly (the dimensionless product churn_rate x catchup_time is
what sets the unsynchronized mass).  The 2019:2020 rate *ratio* is kept
at the paper's ~1:2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from ..adversary.plan import AttackPlan
from ..analysis.kde import DensityEstimate, kde
from ..bitcoin.config import NodeConfig, PolicyConfig
from ..faults.plan import FaultPlan
from ..netmodel.scenario import ProtocolConfig, ProtocolScenario
from .sync_monitor import SyncMonitor


@dataclass
class SyncCampaignConfig:
    """One synchronization measurement campaign."""

    #: Standing reachable network size.
    n_reachable: int = 80
    #: Node-tier fidelity: ``"full"`` or ``"hybrid"`` (light-tier
    #: unreachable cloud; same seed → identical figures, ~20x less
    #: memory per cloud address).  Paper-scale campaigns use hybrid.
    fidelity: str = "full"
    #: Live churn: departures per 10 minutes (compressed; see module doc).
    churn_per_10min: float = 5.0
    block_interval: float = 600.0
    #: Historical chain replacements must download (compressed IBD).
    pre_mined_blocks: int = 600
    #: Bitnodes-style sweep period and per-node poll staleness.
    sample_period: float = 200.0
    poll_spread: float = 320.0
    warmup: float = 900.0
    duration: float = 3 * 3600.0
    seed: int = 21
    #: Optional event-count safety cap on the measurement run; when hit,
    #: the campaign is cut short and the result is marked truncated.
    max_events: Optional[int] = None
    #: Optional fault plan compiled onto the run (see ``repro.faults``).
    #: Fault ``start`` times are relative to the scenario clock, which
    #: includes the warm-up period.
    faults: Optional[FaultPlan] = None
    #: Optional attack plan (see ``repro.adversary``).  Attacker
    #: ``start`` times follow the same scenario-clock convention as
    #: fault windows.  Part of run-store keys through ``asdict``.
    attack: Optional[AttackPlan] = None
    #: Node policies for the honest network (``None`` = defaults): the
    #: §V mitigation knobs — tried-only ADDR responses, shortened tried
    #: horizon — applied when measuring attack mitigations.
    policies: Optional[PolicyConfig] = None


@dataclass
class SyncCampaignResult:
    """The measured synchronization series and its derived statistics."""

    sync_samples: List[float]
    sync_departures_per_10min: float
    total_departures: int
    config: SyncCampaignConfig
    #: True when the event cap stopped the run before ``duration``
    #: elapsed — the sample series is shorter than requested.
    truncated: bool = False
    #: What the fault injector did (``FaultStats.as_dict()``); ``None``
    #: for fault-free campaigns.
    fault_stats: Optional[Dict[str, int]] = None
    #: What the attackers did (``AttackForce.stats()``); ``None`` for
    #: attack-free campaigns.
    attack_stats: Optional[Dict[str, int]] = None

    @property
    def mean(self) -> float:
        return float(np.mean(self.sync_samples))

    @property
    def median(self) -> float:
        return float(np.median(self.sync_samples))

    def density(self, **kwargs) -> DensityEstimate:
        """KDE of the sync samples (one Fig. 1 curve)."""
        return kde(self.sync_samples, **kwargs)


def run_sync_campaign(
    config: Optional[SyncCampaignConfig] = None,
) -> SyncCampaignResult:
    """Run one campaign and return its synchronization distribution."""
    config = config if config is not None else SyncCampaignConfig()
    node_config = (
        NodeConfig() if config.policies is None
        else NodeConfig(policies=config.policies)
    )
    scenario = ProtocolScenario(
        ProtocolConfig(
            seed=config.seed,
            fidelity=config.fidelity,
            n_reachable=config.n_reachable,
            churn_per_10min=config.churn_per_10min,
            block_interval=config.block_interval,
            pre_mined_blocks=config.pre_mined_blocks,
            node_config=node_config,
            faults=config.faults,
            attack=config.attack,
        )
    )
    scenario.start(warmup=config.warmup)
    monitor = SyncMonitor(
        scenario, period=config.sample_period, poll_spread=config.poll_spread
    )
    run = scenario.sim.run_for(config.duration, max_events=config.max_events)
    monitor.stop()
    departures = monitor.departure_stats()
    injector = scenario.fault_injector
    force = scenario.attack_force
    return SyncCampaignResult(
        sync_samples=monitor.sync_percents(),
        sync_departures_per_10min=monitor.departures_per_10min(),
        total_departures=departures.total_departures,
        config=config,
        truncated=run.truncated,
        fault_stats=None if injector is None else injector.stats.as_dict(),
        attack_stats=None if force is None else force.stats(),
    )


def run_2019_vs_2020(
    base: Optional[SyncCampaignConfig] = None,
    churn_2019: float = 5.0,
    churn_2020: float = 14.0,
) -> Dict[str, SyncCampaignResult]:
    """The full Fig. 1 contrast: same network, churn roughly doubled.

    The rates keep the paper's ~1:2 synchronized-departure ratio; the
    *measured* synchronized-departure rates land near the paper's 3.9 and
    7.6 per 10 minutes.
    """
    base = base if base is not None else SyncCampaignConfig()
    results: Dict[str, SyncCampaignResult] = {}
    for label, churn in (("2019", churn_2019), ("2020", churn_2020)):
        config = SyncCampaignConfig(
            n_reachable=base.n_reachable,
            fidelity=base.fidelity,
            churn_per_10min=churn,
            block_interval=base.block_interval,
            pre_mined_blocks=base.pre_mined_blocks,
            sample_period=base.sample_period,
            poll_spread=base.poll_spread,
            warmup=base.warmup,
            duration=base.duration,
            seed=base.seed,
            max_events=base.max_events,
            faults=base.faults,
            attack=base.attack,
            policies=base.policies,
        )
        results[label] = run_sync_campaign(config)
    return results
