"""Algorithm 4: the churn binary matrix and everything derived from it.

Given per-snapshot sets of connected reachable addresses, build the
``M[address, snapshot]`` presence matrix (Fig. 12) and derive:

* daily arrivals and departures (Fig. 13, ~708 nodes / 8.6% per day);
* always-on nodes (3,034 over the paper's campaign);
* per-node lifetimes (mean 16.6 days) and rejoin counts;
* synchronized-departure rates for the 2019-vs-2020 contrast (§IV-D).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Set

import numpy as np

from ..errors import AnalysisError
from ..simnet.addresses import NetAddr


@dataclass
class ChurnMatrix:
    """The Algorithm-4 binary matrix plus the row/column labels."""

    addresses: List[NetAddr]
    times: List[float]
    matrix: np.ndarray  # shape (len(addresses), len(times)), dtype bool

    @property
    def n_addresses(self) -> int:
        return len(self.addresses)

    @property
    def n_snapshots(self) -> int:
        return len(self.times)

    @property
    def snapshot_interval(self) -> float:
        if len(self.times) < 2:
            raise AnalysisError("need at least two snapshots for an interval")
        return (self.times[-1] - self.times[0]) / (len(self.times) - 1)


def build_matrix(
    snapshots: Sequence[Set[NetAddr]], times: Sequence[float]
) -> ChurnMatrix:
    """Algorithm 4: rows are every address ever seen, columns snapshots."""
    if len(snapshots) != len(times):
        raise AnalysisError("snapshots and times must have equal length")
    if not snapshots:
        raise AnalysisError("need at least one snapshot")
    universe: Set[NetAddr] = set()
    for snapshot in snapshots:
        universe |= snapshot
    addresses = sorted(universe)
    index = {addr: row for row, addr in enumerate(addresses)}
    matrix = np.zeros((len(addresses), len(snapshots)), dtype=bool)
    for column, snapshot in enumerate(snapshots):
        for addr in snapshot:
            matrix[index[addr], column] = True
    return ChurnMatrix(addresses=addresses, times=list(times), matrix=matrix)


@dataclass
class ChurnStats:
    """Everything the paper reads off the matrix."""

    unique_nodes: int
    always_on: int
    mean_alive_per_snapshot: float
    #: Per-transition arrival and departure counts (Fig. 13 series).
    arrivals: List[int]
    departures: List[int]
    #: Mean departures per snapshot as a share of mean alive.
    departure_rate: float
    #: First-seen to last-seen span per node, in seconds (lifetime).
    lifetimes: List[float]
    mean_lifetime: float
    #: Nodes that left and reappeared at least once.
    rejoining_nodes: int

    def mean_daily_departures(self, snapshot_interval: float) -> float:
        """Departures per day, given the snapshot spacing in seconds."""
        if not self.departures:
            return 0.0
        per_snapshot = float(np.mean(self.departures))
        return per_snapshot * (86400.0 / snapshot_interval)


def analyze(matrix: ChurnMatrix) -> ChurnStats:
    """Derive the Fig. 12/13 statistics from the presence matrix."""
    presence = matrix.matrix
    if presence.shape[1] < 2:
        raise AnalysisError("need at least two snapshots to measure churn")
    alive_per_snapshot = presence.sum(axis=0)
    diffs = presence[:, 1:].astype(np.int8) - presence[:, :-1].astype(np.int8)
    arrivals = (diffs > 0).sum(axis=0)
    departures = (diffs < 0).sum(axis=0)
    always_on = int(presence.all(axis=1).sum())

    first_seen = presence.argmax(axis=1)
    last_seen = presence.shape[1] - 1 - presence[:, ::-1].argmax(axis=1)
    times = np.asarray(matrix.times)
    lifetimes = (times[last_seen] - times[first_seen]).astype(float)

    # A rejoin is any 0-run strictly inside the [first, last] span.
    gaps_inside = np.zeros(presence.shape[0], dtype=bool)
    for row in range(presence.shape[0]):
        span = presence[row, first_seen[row]: last_seen[row] + 1]
        gaps_inside[row] = not span.all()

    mean_alive = float(alive_per_snapshot.mean())
    mean_departures = float(departures.mean()) if departures.size else 0.0
    return ChurnStats(
        unique_nodes=presence.shape[0],
        always_on=always_on,
        mean_alive_per_snapshot=mean_alive,
        arrivals=[int(v) for v in arrivals],
        departures=[int(v) for v in departures],
        departure_rate=(mean_departures / mean_alive) if mean_alive else 0.0,
        lifetimes=[float(v) for v in lifetimes],
        mean_lifetime=float(lifetimes.mean()) if lifetimes.size else 0.0,
        rejoining_nodes=int(gaps_inside.sum()),
    )


def departures_between(
    previous: Set[NetAddr], current: Set[NetAddr]
) -> Set[NetAddr]:
    """Addresses present in ``previous`` but gone in ``current``."""
    return previous - current


@dataclass
class SyncDepartureStats:
    """§IV-D: how many *synchronized* nodes leave per window."""

    windows: int
    total_departures: int
    synchronized_departures: int

    @property
    def sync_departures_per_window(self) -> float:
        return self.synchronized_departures / self.windows if self.windows else 0.0


def synchronized_departures(
    snapshots: Sequence[Set[NetAddr]],
    heights: Sequence[Dict[NetAddr, int]],
    best_heights: Sequence[int],
) -> SyncDepartureStats:
    """Count synchronized departures across consecutive snapshots.

    ``heights[i]`` maps each address alive in ``snapshots[i]`` to its
    chain height; ``best_heights[i]`` is the network-best height then.  A
    departing node counts as synchronized if it held the best chain at the
    snapshot before it vanished.
    """
    if not (len(snapshots) == len(heights) == len(best_heights)):
        raise AnalysisError("snapshots/heights/best_heights length mismatch")
    if len(snapshots) < 2:
        raise AnalysisError("need at least two snapshots")
    total = 0
    synchronized = 0
    for i in range(len(snapshots) - 1):
        departed = departures_between(snapshots[i], snapshots[i + 1])
        total += len(departed)
        for addr in departed:
            height = heights[i].get(addr)
            if height is not None and height >= best_heights[i]:
                synchronized += 1
    return SyncDepartureStats(
        windows=len(snapshots) - 1,
        total_departures=total,
        synchronized_departures=synchronized,
    )
