"""AS-level hosting and routing-attack analysis (§IV-A.1, Table I).

Given classified address sets and the AS ownership map, compute:

* the Table-I view: top-k ASes per node class with hosting percentages;
* the "k ASes host 50% of nodes" concentration statistic;
* the revisited partitioning attack: which ASes an adversary should
  hijack, and how the preferred targets *change* once unreachable and
  responsive nodes are taken into account (the paper's AS4134 example:
  20th by reachable nodes, 2nd by responsive nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..analysis.stats import k_to_cover
from ..errors import AnalysisError
from ..simnet.addresses import NetAddr


@dataclass(frozen=True)
class ASHostingRow:
    """One row of the Table-I style report."""

    rank: int
    asn: int
    count: int
    percent: float


@dataclass
class HostingReport:
    """Hosting distribution of one node class."""

    node_class: str
    total_nodes: int
    as_counts: Dict[int, int]

    @property
    def distinct_ases(self) -> int:
        return len(self.as_counts)

    def top(self, k: int = 20) -> List[ASHostingRow]:
        ordered = sorted(
            self.as_counts.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            ASHostingRow(
                rank=rank,
                asn=asn,
                count=count,
                percent=100.0 * count / self.total_nodes,
            )
            for rank, (asn, count) in enumerate(ordered[:k], start=1)
        ]

    def k_to_cover_half(self) -> int:
        """ASes needed to host 50% of this class."""
        return k_to_cover(self.as_counts, 0.5)

    def rank_of(self, asn: int) -> Optional[int]:
        """1-based rank of ``asn`` in this class, or None if absent."""
        ordered = sorted(
            self.as_counts.items(), key=lambda item: (-item[1], item[0])
        )
        for rank, (candidate, _count) in enumerate(ordered, start=1):
            if candidate == asn:
                return rank
        return None


def hosting_report(
    node_class: str,
    addrs: Iterable[NetAddr],
    asn_of: Callable[[NetAddr], Optional[int]],
) -> HostingReport:
    """Aggregate addresses into an AS hosting distribution."""
    counts: Dict[int, int] = {}
    total = 0
    for addr in addrs:
        asn = asn_of(addr)
        if asn is None:
            continue
        total += 1
        counts[asn] = counts.get(asn, 0) + 1
    if total == 0:
        raise AnalysisError(f"no addresses mapped to ASes for {node_class!r}")
    return HostingReport(node_class=node_class, total_nodes=total, as_counts=counts)


def common_top_ases(reports: Sequence[HostingReport], k: int = 20) -> Set[int]:
    """ASes present in every class's top-k (the paper found only 10)."""
    if not reports:
        raise AnalysisError("no reports given")
    sets = [
        {row.asn for row in report.top(k)} for report in reports
    ]
    common = sets[0]
    for other in sets[1:]:
        common &= other
    return common


@dataclass(frozen=True)
class HijackPlan:
    """A routing-attack plan: which ASes to take, what it isolates."""

    target_share: float
    hijacked_ases: Tuple[int, ...]
    isolated_nodes: int
    total_nodes: int

    @property
    def isolated_share(self) -> float:
        return self.isolated_nodes / self.total_nodes if self.total_nodes else 0.0


def plan_hijack(report: HostingReport, target_share: float = 0.5) -> HijackPlan:
    """Greedy AS-hijack plan isolating ``target_share`` of a node class.

    This is the attack model of [22] recomputed against our network view:
    hijack the largest hosting ASes until the isolated share is reached.
    """
    if not 0 < target_share <= 1:
        raise AnalysisError("target_share must be in (0, 1]")
    ordered = sorted(
        report.as_counts.items(), key=lambda item: (-item[1], item[0])
    )
    hijacked: List[int] = []
    isolated = 0
    goal = report.total_nodes * target_share
    for asn, count in ordered:
        if isolated >= goal:
            break
        hijacked.append(asn)
        isolated += count
    return HijackPlan(
        target_share=target_share,
        hijacked_ases=tuple(hijacked),
        isolated_nodes=isolated,
        total_nodes=report.total_nodes,
    )


@dataclass(frozen=True)
class TargetShift:
    """How one AS's attractiveness changes across network views."""

    asn: int
    rank_by_reachable: Optional[int]
    rank_by_responsive: Optional[int]


def target_shifts(
    reachable: HostingReport, responsive: HostingReport, k: int = 20
) -> List[TargetShift]:
    """ASes whose attack rank improves when responsive nodes count.

    Reproduces the paper's AS4134 observation: an AS marginal by
    reachable-node count can be a top target once the responsive
    unreachable population is acknowledged.
    """
    shifts: List[TargetShift] = []
    for row in responsive.top(k):
        shifts.append(
            TargetShift(
                asn=row.asn,
                rank_by_reachable=reachable.rank_of(row.asn),
                rank_by_responsive=row.rank,
            )
        )
    return shifts
