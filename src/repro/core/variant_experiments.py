"""The protocol-variant lab: variant × churn × fault × fidelity.

The paper's §V evaluates three refinements against the deteriorating
network it measured; the policy registry (:mod:`repro.bitcoin.policy`)
generalizes those refinements into named variants, and this module runs
the cross-product the ROADMAP calls the protocol-variant lab: every
registered variant of interest under every churn level, fault plan,
and fidelity tier, as one supervised multi-seed campaign matrix.

The headline metric is **sync-fraction retention**: the mean Fig.-1
sync percentage at the *highest* churn level divided by the mean at the
*lowest*, per (variant, fault plan, fidelity) group.  A variant that
holds retention near 1.0 keeps the network synchronized under the
churn the paper identifies as the root cause of deterioration.

Persistence mirrors the attack sweeps: :func:`run_stored_variant_matrix`
keys the whole matrix by content hash (campaign config, the *canonical*
policy configs, the axes, the seeds, the engine), checkpoints the
partial result after every cell, resumes a killed matrix from the last
completed cell, and returns a cached result for a completed key without
simulating.  Variant identity reaches the key through
``config_to_dict`` of each :class:`~repro.bitcoin.config.PolicyConfig`,
so distinct variants/params can never collide and every legacy-boolean
spelling keys identically to its canonical variant.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only; store imports are lazy
    from ..store.manifest import RunManifest
    from ..store.runstore import RunStore

from ..bitcoin.config import PolicyConfig
from ..errors import ConfigurationError, StoreError
from ..faults.plan import FaultPlan
from ..simnet.simulator import resolve_engine
from .parallel import (
    SyncSweepResult,
    _run_sync_config,
    run_multi_seed_supervised,
    seed_range,
)
from .supervisor import SupervisorConfig
from .sync_experiments import SyncCampaignConfig

__all__ = [
    "DEFAULT_CHURN_LEVELS",
    "DEFAULT_VARIANTS",
    "KIND_VARIANT_MATRIX",
    "StoredVariantMatrix",
    "VariantCell",
    "VariantMatrixResult",
    "normalize_variants",
    "run_stored_variant_matrix",
    "run_variant_matrix",
    "variant_matrix_key",
]

#: Default variant axis: the §V pair plus the two PAPERS.md variants.
DEFAULT_VARIANTS = (
    "baseline",
    "improved",
    "unreachable-relay",
    "churn-resilient",
)

#: Default churn axis: the compressed 2019-like and 2020-like rates the
#: Fig. 1 reproduction uses (departures per 10 minutes).
DEFAULT_CHURN_LEVELS = (5.0, 15.0)

#: Test/CI hook: hard-exit after this cell index is durably checkpointed.
CRASH_ENV = "REPRO_CRASH_AFTER_CELL"
CRASH_EXIT_CODE = 42

KIND_VARIANT_MATRIX = "variant-matrix"
_CKPT_KIND = "variant-matrix-partial"
_RESULT_KIND = "variant-matrix-result"


def normalize_variants(
    variants: Sequence[Union[str, PolicyConfig]],
) -> List[PolicyConfig]:
    """Accept variant names and/or configs; return canonical configs.

    Construction canonicalizes (and validates) eagerly, so an unknown
    variant name fails here, before any cell runs.
    """
    if not variants:
        raise ConfigurationError("need at least one policy variant")
    normalized: List[PolicyConfig] = []
    for variant in variants:
        if isinstance(variant, PolicyConfig):
            normalized.append(variant)
        else:
            normalized.append(PolicyConfig(variant=variant))
    return normalized


def _fault_label(plan: Optional[FaultPlan], index: int) -> str:
    if plan is None:
        return "none"
    names = sorted({spec.kind for spec in plan.faults})
    tag = "+".join(names) if names else "empty"
    return f"plan{index}:{tag}"


@dataclass
class VariantCell:
    """One matrix cell: a policy variant under one condition, swept."""

    policies: PolicyConfig
    churn_per_10min: float
    fidelity: str
    fault_label: str
    sweep: SyncSweepResult

    @property
    def variant_label(self) -> str:
        return self.policies.label()

    @property
    def mean_sync(self) -> float:
        return self.sweep.mean


@dataclass
class VariantMatrixResult:
    """The full cross-product, cell by cell in axis order."""

    variants: List[PolicyConfig]
    churn_levels: List[float]
    fault_labels: List[str]
    fidelities: List[str]
    cells: List[VariantCell] = field(default_factory=list)

    def cell(
        self,
        policies: PolicyConfig,
        churn: float,
        fault_label: str,
        fidelity: str,
    ) -> Optional[VariantCell]:
        for candidate in self.cells:
            if (
                candidate.policies == policies
                and candidate.churn_per_10min == churn
                and candidate.fault_label == fault_label
                and candidate.fidelity == fidelity
            ):
                return candidate
        return None

    def retention_table(self) -> List[dict]:
        """Sync retention per (variant, fault plan, fidelity) group.

        One row per group: the mean sync at every churn level plus the
        retention ratio (mean at the highest level / mean at the
        lowest).  Groups whose axis has a single churn level report a
        retention of ``None``.
        """
        low = min(self.churn_levels)
        high = max(self.churn_levels)
        rows: List[dict] = []
        for policies in self.variants:
            for fault_label in self.fault_labels:
                for fidelity in self.fidelities:
                    by_churn: Dict[float, float] = {}
                    for churn in self.churn_levels:
                        found = self.cell(
                            policies, churn, fault_label, fidelity
                        )
                        if found is not None and found.sweep.seeds:
                            by_churn[churn] = found.mean_sync
                    if not by_churn:
                        continue
                    retention: Optional[float] = None
                    if (
                        high > low
                        and low in by_churn
                        and high in by_churn
                        and by_churn[low] > 0
                    ):
                        retention = by_churn[high] / by_churn[low]
                    rows.append(
                        {
                            "variant": policies.label(),
                            "faults": fault_label,
                            "fidelity": fidelity,
                            "mean_sync": {
                                f"{churn:g}": by_churn.get(churn)
                                for churn in self.churn_levels
                            },
                            "retention": retention,
                        }
                    )
        return rows


def _axes(
    variants: Sequence[Union[str, PolicyConfig]],
    churn_levels: Sequence[float],
    fault_plans: Sequence[Optional[FaultPlan]],
    fidelities: Sequence[str],
) -> Tuple[List[PolicyConfig], List[float], List[Optional[FaultPlan]], List[str]]:
    policies = normalize_variants(variants)
    if not churn_levels:
        raise ConfigurationError("need at least one churn level")
    if any(level < 0 for level in churn_levels):
        raise ConfigurationError(
            f"churn levels must be >= 0, got {list(churn_levels)}"
        )
    if not fidelities:
        raise ConfigurationError("need at least one fidelity")
    plans = list(fault_plans) if fault_plans else [None]
    for plan in plans:
        if plan is not None:
            plan.validate()
    return policies, [float(level) for level in churn_levels], plans, list(fidelities)


def _cell_conditions(
    policies: List[PolicyConfig],
    churn_levels: List[float],
    fault_plans: List[Optional[FaultPlan]],
    fidelities: List[str],
) -> List[Tuple[PolicyConfig, float, Optional[FaultPlan], str, str]]:
    """The deterministic cell order: variant → churn → fault → fidelity."""
    conditions = []
    for config in policies:
        for churn in churn_levels:
            for index, plan in enumerate(fault_plans):
                for fidelity in fidelities:
                    conditions.append(
                        (config, churn, plan, _fault_label(plan, index), fidelity)
                    )
    return conditions


def _run_cell(
    base: SyncCampaignConfig,
    policies: PolicyConfig,
    churn: float,
    plan: Optional[FaultPlan],
    fault_label: str,
    fidelity: str,
    seeds: Sequence[int],
    workers: Optional[int],
    supervisor: Optional[SupervisorConfig],
) -> VariantCell:
    cell_base = replace(
        base,
        policies=policies,
        churn_per_10min=churn,
        faults=plan,
        fidelity=fidelity,
    )
    tasks = [replace(cell_base, seed=seed) for seed in seeds]
    run = run_multi_seed_supervised(
        _run_sync_config,
        tasks,
        workers,
        supervisor,
        labels=[config.seed for config in tasks],
    )
    kept = [
        (seed, item)
        for seed, item in zip(seeds, run.results)
        if item is not None
    ]
    sweep = SyncSweepResult(
        seeds=[seed for seed, _ in kept],
        per_seed=[item for _, item in kept],
        failed_seeds=[
            seed for seed, item in zip(seeds, run.results) if item is None
        ],
        retried_seeds=[seeds[position] for position in run.retried_indexes],
    )
    return VariantCell(
        policies=policies,
        churn_per_10min=churn,
        fidelity=fidelity,
        fault_label=fault_label,
        sweep=sweep,
    )


def run_variant_matrix(
    variants: Sequence[Union[str, PolicyConfig]] = DEFAULT_VARIANTS,
    base: Optional[SyncCampaignConfig] = None,
    churn_levels: Sequence[float] = DEFAULT_CHURN_LEVELS,
    fault_plans: Sequence[Optional[FaultPlan]] = (None,),
    fidelities: Sequence[str] = ("full",),
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> VariantMatrixResult:
    """Run the cross-product unstored (tests, small matrices)."""
    base = base if base is not None else SyncCampaignConfig()
    policies, churns, plans, tiers = _axes(
        variants, churn_levels, fault_plans, fidelities
    )
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 3)
    result = VariantMatrixResult(
        variants=policies,
        churn_levels=churns,
        fault_labels=[_fault_label(plan, i) for i, plan in enumerate(plans)],
        fidelities=tiers,
    )
    for config, churn, plan, fault_label, fidelity in _cell_conditions(
        policies, churns, plans, tiers
    ):
        result.cells.append(
            _run_cell(
                base,
                config,
                churn,
                plan,
                fault_label,
                fidelity,
                seeds,
                workers,
                supervisor,
            )
        )
    return result


# ---------------------------------------------------------------------------
# Stored matrices: caching, cell-wise checkpoints, crash-resume
# ---------------------------------------------------------------------------


@dataclass
class StoredVariantMatrix:
    """What a stored matrix handed back: result plus provenance."""

    manifest: "RunManifest"
    result: VariantMatrixResult
    #: True when the result came straight from the store (no simulation).
    cached: bool = False
    #: Cells already complete when execution (re)started.
    resumed_from: Optional[int] = None


def variant_matrix_key(
    base: SyncCampaignConfig,
    variants: Sequence[PolicyConfig],
    churn_levels: Sequence[float],
    fault_plans: Sequence[Optional[FaultPlan]],
    fidelities: Sequence[str],
    seeds: Sequence[int],
) -> str:
    """The run key for a variant-matrix invocation.

    Policy identity enters through ``config_to_dict`` of each canonical
    :class:`PolicyConfig` — ``(variant, params)`` — so two spellings of
    the same behavior share a key and different parameters never do.
    """
    from ..store.manifest import config_to_dict, run_key

    return run_key(
        KIND_VARIANT_MATRIX,
        _matrix_config_dict(
            base, variants, churn_levels, fault_plans, fidelities, seeds
        ),
        seed=base.seed,
        engine=resolve_engine(None),
        snapshots_total=len(variants)
        * len(churn_levels)
        * max(1, len(fault_plans))
        * len(fidelities),
    )


def _matrix_config_dict(
    base: SyncCampaignConfig,
    variants: Sequence[PolicyConfig],
    churn_levels: Sequence[float],
    fault_plans: Sequence[Optional[FaultPlan]],
    fidelities: Sequence[str],
    seeds: Sequence[int],
) -> dict:
    from ..store.manifest import config_to_dict

    return {
        "campaign": config_to_dict(base),
        "variants": [config_to_dict(config) for config in variants],
        "churn_levels": [float(level) for level in churn_levels],
        "faults": [
            plan.to_dict() if plan is not None else None
            for plan in fault_plans
        ],
        "fidelities": list(fidelities),
        "seeds": [int(seed) for seed in seeds],
    }


def variant_matrix_run_id(key: str) -> str:
    """Human-scannable run id derived from the key."""
    return f"{KIND_VARIANT_MATRIX}-{key[:12]}"


def run_stored_variant_matrix(
    store: Union["RunStore", str],
    variants: Sequence[Union[str, PolicyConfig]] = DEFAULT_VARIANTS,
    base: Optional[SyncCampaignConfig] = None,
    churn_levels: Sequence[float] = DEFAULT_CHURN_LEVELS,
    fault_plans: Sequence[Optional[FaultPlan]] = (None,),
    fidelities: Sequence[str] = ("full",),
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
    resume: Optional[str] = None,
    force: bool = False,
) -> StoredVariantMatrix:
    """Run (or resume, or fetch) a variant matrix through the run store.

    Checkpoints the partial result after every cell; re-invoking with
    the same arguments against the same store resumes from the last
    completed cell, and a complete key returns the cached result
    without simulating.  ``resume`` names an existing run id and fails
    loudly on config drift; ``force=True`` re-executes a complete run.
    """
    from ..store.checkpoint import dump_checkpoint, load_checkpoint
    from ..store.manifest import (
        STATUS_COMPLETE,
        STATUS_RUNNING,
        CheckpointRecord,
        RunManifest,
        SnapshotRecord,
        code_version,
    )
    from ..store.runstore import RunStore
    from ..store.wallclock import now as wall_now

    if isinstance(store, (str, os.PathLike)):
        store = RunStore(store)
    base = base if base is not None else SyncCampaignConfig()
    policies, churns, plans, tiers = _axes(
        variants, churn_levels, fault_plans, fidelities
    )
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 3)
    conditions = _cell_conditions(policies, churns, plans, tiers)
    key = variant_matrix_key(base, policies, churns, plans, tiers, seeds)
    run_id = variant_matrix_run_id(key)

    manifest: Optional[RunManifest] = None
    if resume is not None:
        manifest = store.load_manifest(resume)
        if manifest.kind != KIND_VARIANT_MATRIX:
            raise StoreError(f"run {resume!r} is a {manifest.kind!r} run")
        if manifest.key != key:
            raise StoreError(
                f"cannot resume {resume!r}: the supplied config hashes to a "
                f"different run key (config drift between start and resume)"
            )
    elif store.has_run(run_id):
        manifest = store.load_manifest(run_id)

    result: Optional[VariantMatrixResult] = None
    resumed_from: Optional[int] = None
    if manifest is not None:
        if manifest.status == STATUS_COMPLETE and not force:
            if manifest.result_digest is None:
                raise StoreError(
                    f"run {run_id!r} is complete but has no stored result"
                )
            cached = load_checkpoint(
                store.get_blob(manifest.result_digest),
                expect_kind=_RESULT_KIND,
            )
            if not isinstance(cached, VariantMatrixResult):
                raise StoreError(f"run {run_id!r} result blob has wrong type")
            return StoredVariantMatrix(
                manifest=manifest, result=cached, cached=True
            )
        if manifest.checkpoint is not None and not force:
            partial = load_checkpoint(
                store.get_blob(manifest.checkpoint.digest),
                expect_kind=_CKPT_KIND,
            )
            if not isinstance(partial, VariantMatrixResult):
                raise StoreError(
                    f"run {run_id!r} checkpoint blob has wrong type"
                )
            completed = len(partial.cells)
            if completed != manifest.checkpoint.snapshot_index + 1:
                raise StoreError(
                    f"run {run_id!r} checkpoint is inconsistent: contains "
                    f"{completed} cells, manifest says "
                    f"{manifest.checkpoint.snapshot_index + 1}"
                )
            result = partial
            resumed_from = completed
            manifest.snapshots = manifest.snapshots[:completed]
            manifest.status = STATUS_RUNNING
            manifest.result_digest = None

    if result is None:
        result = VariantMatrixResult(
            variants=policies,
            churn_levels=churns,
            fault_labels=[
                _fault_label(plan, i) for i, plan in enumerate(plans)
            ],
            fidelities=tiers,
        )
        manifest = RunManifest(
            run_id=run_id,
            key=key,
            kind=KIND_VARIANT_MATRIX,
            seed=base.seed,
            engine=resolve_engine(None),
            snapshots_total=len(conditions),
            config=_matrix_config_dict(
                base, policies, churns, plans, tiers, seeds
            ),
            status=STATUS_RUNNING,
            code_version=code_version(),
        )
        store.save_manifest(manifest)

    crash_after = os.environ.get(CRASH_ENV)
    crash_index: Optional[int] = None
    if crash_after is not None:
        try:
            crash_index = int(crash_after)
        except ValueError:
            raise ConfigurationError(
                f"{CRASH_ENV} must be an integer cell index, "
                f"got {crash_after!r}"
            ) from None

    start = len(result.cells)
    for index in range(start, len(conditions)):
        config, churn, plan, fault_label, fidelity = conditions[index]
        cell = _run_cell(
            base,
            config,
            churn,
            plan,
            fault_label,
            fidelity,
            seeds,
            workers,
            supervisor,
        )
        result.cells.append(cell)
        # aliasing=False: a matrix resumed mid-axis appends fresh cells
        # onto an unpickled partial result, so its object graph shares
        # substructure differently than a single-process run; the
        # memo-free pickle keeps equal results digest-equal.
        ckpt_digest = store.put_blob(
            dump_checkpoint(
                result,
                kind=_CKPT_KIND,
                meta={"snapshot_index": index, "run_id": run_id},
                aliasing=False,
            )
        )
        manifest.snapshots.append(
            SnapshotRecord(index=index, when=float(index), digest=ckpt_digest)
        )
        manifest.checkpoint = CheckpointRecord(
            digest=ckpt_digest, snapshot_index=index
        )
        manifest.updated_at = wall_now()
        store.save_manifest(manifest)
        if crash_index is not None and index >= crash_index:
            os._exit(CRASH_EXIT_CODE)

    # No run-specific metadata in the result blob: equal results must
    # hash equally across runs, so cache hits can be audited by digest.
    manifest.result_digest = store.put_blob(
        dump_checkpoint(result, kind=_RESULT_KIND, aliasing=False)
    )
    manifest.status = STATUS_COMPLETE
    manifest.updated_at = wall_now()
    store.save_manifest(manifest)
    return StoredVariantMatrix(
        manifest=manifest,
        result=result,
        cached=False,
        resumed_from=resumed_from,
    )
