"""CSV export of experiment results.

Every figure's underlying data can be dumped to plain CSV for external
plotting (the library deliberately has no plotting dependency).  Files
are written with ``csv`` from the standard library; each function returns
the path it wrote.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterable, List, Sequence, Union

from ..analysis.kde import DensityEstimate
from .churn_matrix import ChurnStats
from .malicious_detect import DetectionReport
from .pipeline import CampaignResult
from .relay_experiments import RelayExperimentResult
from .routing import HostingReport
from .sync_experiments import SyncCampaignResult

PathLike = Union[str, Path]


def _write_rows(
    path: PathLike, header: Sequence[str], rows: Iterable[Sequence]
) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(header)
        writer.writerows(rows)
    return path


def export_sync_samples(
    result: SyncCampaignResult, path: PathLike, label: str = ""
) -> Path:
    """Fig. 1 samples: one row per Bitnodes-style sweep."""
    return _write_rows(
        path,
        ("label", "sample_index", "sync_percent"),
        (
            (label, index, value)
            for index, value in enumerate(result.sync_samples)
        ),
    )


def export_density(density: DensityEstimate, path: PathLike) -> Path:
    """A KDE curve: grid point and density value per row."""
    return _write_rows(
        path,
        ("x", "density"),
        zip(density.grid.tolist(), density.density.tolist()),
    )


def export_campaign_series(result: CampaignResult, path: PathLike) -> Path:
    """Figs. 3/4/5 series: one row per snapshot."""
    fig4 = result.fig4_series()
    fig5 = result.fig5_series()
    rows = []
    for index, snap in enumerate(result.snapshots):
        stats = snap.source_stats
        rows.append(
            (
                index,
                snap.when,
                stats.bitnodes_total,
                stats.dns_total,
                stats.common_total,
                stats.provided,
                len(snap.connected),
                snap.dns_only_connected,
                fig4["per_snapshot"][index],
                fig4["cumulative"][index],
                fig5["per_snapshot"][index],
                fig5["cumulative"][index],
                round(snap.addr_composition.mean_reachable_share, 4),
            )
        )
    return _write_rows(
        path,
        (
            "snapshot",
            "time_s",
            "bitnodes",
            "dns",
            "common",
            "targets",
            "connected",
            "dns_only_connected",
            "unreachable",
            "unreachable_cumulative",
            "responsive",
            "responsive_cumulative",
            "addr_reachable_share",
        ),
        rows,
    )


def export_churn(stats: ChurnStats, path: PathLike) -> Path:
    """Fig. 13 series: arrivals and departures per snapshot transition."""
    return _write_rows(
        path,
        ("transition", "arrivals", "departures"),
        (
            (index, arrivals, departures)
            for index, (arrivals, departures) in enumerate(
                zip(stats.arrivals, stats.departures)
            )
        ),
    )


def export_lifetimes(stats: ChurnStats, path: PathLike) -> Path:
    """Fig. 12 derived data: per-node lifetime spans in seconds."""
    return _write_rows(
        path,
        ("node_index", "lifetime_s"),
        ((index, value) for index, value in enumerate(stats.lifetimes)),
    )


def export_detection(report: DetectionReport, path: PathLike) -> Path:
    """Fig. 8: one row per detected flooder."""
    return _write_rows(
        path,
        ("peer", "records_sent", "unique_sent", "addr_messages", "asn"),
        (
            (
                str(finding.peer),
                finding.unreachable_sent,
                finding.unique_sent,
                finding.addr_messages,
                finding.asn if finding.asn is not None else "",
            )
            for finding in report.findings
        ),
    )


def export_hosting(report: HostingReport, path: PathLike, top: int = 50) -> Path:
    """Table I: one row per AS, ranked."""
    return _write_rows(
        path,
        ("rank", "asn", "nodes", "percent"),
        (
            (row.rank, row.asn, row.count, round(row.percent, 4))
            for row in report.top(top)
        ),
    )


def export_relay_times(
    result: RelayExperimentResult, path: PathLike
) -> Path:
    """Figs. 10/11: one row per relayed item."""
    rows: List[Sequence] = [
        ("block", index, round(value, 4))
        for index, value in enumerate(result.block_relay_times)
    ]
    rows.extend(
        ("tx", index, round(value, 4))
        for index, value in enumerate(result.tx_relay_times)
    )
    return _write_rows(path, ("kind", "item_index", "relaying_time_s"), rows)
