"""The §IV-C relay-delay experiments (Figs. 10-11).

Reconstruction of the paper's setup: a reachable measurement node with 8
outgoing and 17 incoming connections, logging (a) when it first receives
each block/transaction and (b) when the relayed copy finishes leaving for
the *last* connection.  The gap is the "relaying time"; round-robin
socket servicing plus request load queued in ``vSendMessage`` stretches
it (paper: blocks mean 1.39 s / max 17 s, transactions mean 0.45 s /
max 8 s).

The 17 inbound peers are dedicated client nodes (several of them
unreachable, as in reality) that also issue periodic GETADDR requests —
the queued traffic blocks sit behind.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional

from ..analysis.stats import Summary, summarize
from ..errors import ScenarioError
from ..simnet.addresses import NetAddr
from ..bitcoin.config import NodeConfig, PolicyConfig, unreachable_config
from ..bitcoin.node import BitcoinNode
from ..netmodel.scenario import ProtocolConfig, ProtocolScenario


@dataclass
class RelayExperimentConfig:
    """Shape of the Fig. 10/11 measurement run."""

    #: Reachable network around the measurement node.
    n_reachable: int = 40
    #: Inbound client connections pinned to the measurement node.
    n_clients: int = 17
    #: Fraction of those clients that are unreachable nodes.
    unreachable_client_share: float = 0.6
    #: How often each client sends GETADDR (the request load).
    client_getaddr_interval: float = 8.0
    #: Mining interval — compressed from 600 s to collect more samples.
    block_interval: float = 300.0
    txs_per_block: int = 25
    #: Transaction arrival rate (tx/s).
    tx_rate: float = 0.4
    #: Measured duration after warm-up.
    duration: float = 4 * 3600.0
    warmup: float = 600.0
    seed: int = 11
    #: The measurement node's (outbound, inbound) tx-trickle means.  The
    #: defaults are compressed relative to Core's 2.5/5 s so the measured
    #: relaying-time distribution matches the paper's (which reflects
    #: their 1-second debug.log methodology); see EXPERIMENTS.md.
    target_tx_trickle: "tuple[float, float]" = (0.25, 0.9)
    #: Fraction of clients negotiating high-bandwidth compact blocks.
    client_hb_fraction: float = 0.9
    #: Every this many seconds one client is replaced by a fresh node
    #: that must download the whole chain through the measurement node —
    #: the uplink congestion behind the paper's 17-second outliers.
    #: 0 disables.
    client_refresh_interval: float = 1800.0
    #: Relay-wave cutoff: sends later than this after first receipt serve
    #: block download, not the relay wave, and are excluded.
    wave_cutoff: float = 30.0

    def validate(self) -> None:
        if self.n_clients < 1 or self.n_reachable < 4:
            raise ScenarioError("experiment too small to be meaningful")
        if not 0 <= self.unreachable_client_share <= 1:
            raise ScenarioError("unreachable_client_share must be in [0, 1]")


@dataclass
class RelayExperimentResult:
    """Measured relaying-time distributions.

    ``quantized=True`` floors each relaying time to whole seconds before
    summarising, reproducing the paper's measurement: the debug.log they
    parsed timestamps events at one-second granularity, so an item
    received and relayed within the same second reads as zero.
    """

    block_relay_times: List[float]
    tx_relay_times: List[float]
    target_addr: NetAddr
    inbound_at_end: int
    outbound_at_end: int
    #: Relay-wave cutoff used when extracting the series (seconds).
    wave_cutoff: float = 30.0

    @staticmethod
    def _maybe_quantize(values: List[float], quantized: bool) -> List[float]:
        return [float(int(v)) for v in values] if quantized else values

    def block_summary(self, quantized: bool = True) -> Summary:
        return summarize(
            self._maybe_quantize(self.block_relay_times, quantized)
        )

    def tx_summary(self, quantized: bool = True) -> Summary:
        return summarize(self._maybe_quantize(self.tx_relay_times, quantized))


def build_relay_scenario(
    config: RelayExperimentConfig,
    policies: Optional[PolicyConfig] = None,
) -> "tuple[ProtocolScenario, BitcoinNode, List[BitcoinNode]]":
    """Construct the world, the measurement node, and its pinned clients.

    ``policies`` selects the measurement node's policy variant (relay
    ordering is what the Fig. 10/11 ablations toggle); the surrounding
    network keeps the default baseline policies either way.
    """
    config.validate()
    scenario = ProtocolScenario(
        ProtocolConfig(
            seed=config.seed,
            n_reachable=config.n_reachable,
            mining=True,
            block_interval=config.block_interval,
            txs_per_block=config.txs_per_block,
            tx_rate=config.tx_rate,
        )
    )
    target_config = NodeConfig(
        max_inbound=config.n_clients,
        track_relay_times=True,
        serve_repeated_getaddr=True,
        tx_inv_interval_outbound=config.target_tx_trickle[0],
        tx_inv_interval_inbound=config.target_tx_trickle[1],
        policies=policies if policies is not None else PolicyConfig(),
    )
    target = scenario.make_observer_node(target_config)

    clients: List[BitcoinNode] = []
    for index in range(config.n_clients):
        unreachable = (
            index < config.n_clients * config.unreachable_client_share
        )
        client = _make_client(scenario, target, config, unreachable)
        clients.append(client)
    return scenario, target, clients


def _make_client(
    scenario: ProtocolScenario,
    target: BitcoinNode,
    config: RelayExperimentConfig,
    unreachable: bool,
) -> BitcoinNode:
    """A node pinned to the measurement target (one outbound slot)."""
    client_config = unreachable_config(
        max_outbound=1,
        getaddr_repeat_interval=config.client_getaddr_interval,
        feelers_enabled=False,
        hb_compact_fraction=config.client_hb_fraction,
    )
    profile = "unreachable" if unreachable else "reachable"
    asn = scenario.universe.sample_asn(
        profile, scenario.sim.random.stream("relay-exp")
    )
    addr = scenario.universe.allocate_address(asn)
    client = BitcoinNode(scenario.sim, addr, client_config)
    client.bootstrap([target.addr])
    scenario.nodes.append(client)
    return client


def _refresh_one_client(
    scenario: ProtocolScenario,
    target: BitcoinNode,
    config: RelayExperimentConfig,
    clients: List[BitcoinNode],
    rng,
) -> None:
    """Replace one random client with a fresh one (churn during relay)."""
    victim = rng.choice(clients)
    clients.remove(victim)
    victim.stop()
    fresh = _make_client(
        scenario, target, config, unreachable=rng.random() < 0.5
    )
    fresh.start()
    clients.append(fresh)


def run_relay_experiment(
    config: Optional[RelayExperimentConfig] = None,
) -> RelayExperimentResult:
    """Run the full Fig. 10/11 measurement and return the distributions."""
    config = config if config is not None else RelayExperimentConfig()
    scenario, target, clients = build_relay_scenario(config)
    scenario.start()
    target.start()
    for client in clients:
        client.start()

    if config.client_refresh_interval > 0:
        refresh_rng = scenario.sim.random.stream("client-refresh")
        scenario.sim.call_every(
            config.client_refresh_interval,
            # partial over a module-level function, not a closure: the
            # callback recurs on the event queue, so it must survive
            # Simulator.snapshot().
            functools.partial(
                _refresh_one_client, scenario, target, config, clients,
                refresh_rng,
            ),
        )

    scenario.sim.run_for(config.warmup)
    # Reset the tracker so warm-up traffic does not contaminate the data.
    target.relay_tracker._records.clear()  # noqa: SLF001 - measurement reset
    scenario.sim.run_for(config.duration)
    tracker = target.relay_tracker
    return RelayExperimentResult(
        block_relay_times=tracker.relaying_times("block", cutoff=config.wave_cutoff),
        tx_relay_times=tracker.relaying_times("tx", cutoff=config.wave_cutoff),
        target_addr=target.addr,
        inbound_at_end=target.inbound_count,
        outbound_at_end=target.outbound_count,
        wave_cutoff=config.wave_cutoff,
    )
