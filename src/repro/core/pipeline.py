"""The end-to-end data-collection workflow (paper Fig. 2).

One :class:`CampaignRunner` drives a
:class:`~repro.netmodel.scenario.LongitudinalScenario` through its
snapshots.  Per snapshot it:

1. pulls the Bitnodes + DNS views and applies the blacklist
   (:mod:`~repro.core.crawler` — Fig. 3 statistics);
2. runs the Algorithm-1 GETADDR crawler against every target
   (:mod:`~repro.core.getaddr` — Figs. 4, 8, ADDR composition);
3. filters source-listed addresses out of the harvest to get the
   unreachable set and fires the Algorithm-2 VER prober at it
   (:mod:`~repro.core.prober` — Fig. 5);
4. records the connected reachable set (Algorithm 4 / Figs. 12-13).

The accumulated :class:`CampaignResult` feeds every longitudinal table
and figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..simnet.addresses import NetAddr
from ..netmodel.scenario import LongitudinalScenario
from .addr_analysis import AddrComposition, composition
from .churn_matrix import ChurnMatrix, ChurnStats, analyze, build_matrix
from .crawler import AddressCrawler, SourceStats
from .getaddr import GetAddrConfig, GetAddrCrawler
from .malicious_detect import DetectionReport, detect_flooders, merge_reports
from .prober import ProbeConfig, VerProber
from .routing import HostingReport, hosting_report

#: The measurement node's own address, outside every hosting profile.
CRAWLER_ADDR = NetAddr.parse("203.0.113.7:8333")


@dataclass
class SnapshotResult:
    """Everything measured in one snapshot."""

    index: int
    when: float
    source_stats: SourceStats
    connected: Set[NetAddr]
    #: Connected via a DNS-only listing (Fig. 3d).
    dns_only_connected: int
    #: Unreachable addresses harvested this snapshot.
    unreachable: Set[NetAddr]
    #: Newly seen unreachable addresses (vs the campaign so far).
    new_unreachable: int
    responsive: Set[NetAddr]
    new_responsive: int
    addr_composition: AddrComposition
    detection: DetectionReport
    #: True when the crawl or probe pass hit its time budget and was cut
    #: short — the snapshot's sets are lower bounds, not full measurements.
    truncated: bool = False


@dataclass
class CampaignResult:
    """Aggregate of a whole crawl campaign."""

    snapshots: List[SnapshotResult] = field(default_factory=list)
    cumulative_reachable: Set[NetAddr] = field(default_factory=set)
    cumulative_unreachable: Set[NetAddr] = field(default_factory=set)
    cumulative_responsive: Set[NetAddr] = field(default_factory=set)

    @property
    def truncated(self) -> bool:
        """True if any snapshot's measurement was cut short."""
        return any(snap.truncated for snap in self.snapshots)

    @property
    def truncated_snapshots(self) -> List[int]:
        """Indices of snapshots whose crawl/probe pass was cut short."""
        return [snap.index for snap in self.snapshots if snap.truncated]

    # ------------------------------------------------------------------
    # Figure series
    # ------------------------------------------------------------------
    def fig3_rows(self) -> List[Dict[str, float]]:
        """Per-snapshot Fig. 3 counters."""
        return [
            {
                "bitnodes": snap.source_stats.bitnodes_total,
                "dns": snap.source_stats.dns_total,
                "common": snap.source_stats.common_total,
                "excluded_bitnodes": snap.source_stats.excluded_bitnodes,
                "excluded_dns": snap.source_stats.excluded_dns,
                "excluded_common": snap.source_stats.excluded_common,
                "connected": len(snap.connected),
                "dns_only_connected": snap.dns_only_connected,
            }
            for snap in self.snapshots
        ]

    def fig4_series(self) -> Dict[str, List[int]]:
        """Per-snapshot unique and cumulative unreachable counts."""
        per_snapshot = [len(snap.unreachable) for snap in self.snapshots]
        cumulative: List[int] = []
        seen: Set[NetAddr] = set()
        for snap in self.snapshots:
            seen |= snap.unreachable
            cumulative.append(len(seen))
        return {"per_snapshot": per_snapshot, "cumulative": cumulative}

    def fig5_series(self) -> Dict[str, List[int]]:
        """Per-snapshot unique and cumulative responsive counts."""
        per_snapshot = [len(snap.responsive) for snap in self.snapshots]
        cumulative: List[int] = []
        seen: Set[NetAddr] = set()
        for snap in self.snapshots:
            seen |= snap.responsive
            cumulative.append(len(seen))
        return {"per_snapshot": per_snapshot, "cumulative": cumulative}

    def churn_matrix(self) -> ChurnMatrix:
        """Algorithm 4 over the connected-reachable snapshots."""
        return build_matrix(
            [snap.connected for snap in self.snapshots],
            [snap.when for snap in self.snapshots],
        )

    def churn_stats(self) -> ChurnStats:
        return analyze(self.churn_matrix())

    def merged_detection(self, asn_of=None) -> DetectionReport:
        return merge_reports(
            [snap.detection for snap in self.snapshots], asn_of=asn_of
        )

    def mean_addr_reachable_share(self) -> float:
        shares = [
            snap.addr_composition.mean_reachable_share
            for snap in self.snapshots
            if snap.addr_composition.total_unique
        ]
        return sum(shares) / len(shares) if shares else 0.0

    def hosting_reports(self, asn_of) -> Dict[str, HostingReport]:
        """Table-I inputs for the three classes."""
        return {
            "reachable": hosting_report(
                "reachable", self.cumulative_reachable, asn_of
            ),
            "unreachable": hosting_report(
                "unreachable", self.cumulative_unreachable, asn_of
            ),
            "responsive": hosting_report(
                "responsive", self.cumulative_responsive, asn_of
            ),
        }


@dataclass
class CampaignConfig:
    """Pipeline knobs."""

    getaddr: GetAddrConfig = field(default_factory=GetAddrConfig)
    probe: ProbeConfig = field(default_factory=ProbeConfig)
    #: Detection threshold, scaled by the scenario's population scale so
    #: "1000 addresses" means the same network fraction at every scale.
    detect_min_addresses: int = 1000
    probe_enabled: bool = True

    def scaled_threshold(self, scale: float) -> int:
        return max(10, round(self.detect_min_addresses * scale))


class CampaignRunner:
    """Drives the Fig. 2 pipeline over a longitudinal scenario."""

    def __init__(
        self,
        scenario: LongitudinalScenario,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        self.scenario = scenario
        self.config = config if config is not None else CampaignConfig()
        self.address_crawler = AddressCrawler(self._is_blacklisted)
        self.result = CampaignResult()

    def _is_blacklisted(self, addr: NetAddr) -> bool:
        record = self.scenario.population.record(addr)
        return record is not None and record.critical

    # ------------------------------------------------------------------
    # Campaign execution
    # ------------------------------------------------------------------
    def run(self, snapshots: Optional[int] = None) -> CampaignResult:
        """Run the whole campaign (or its first ``snapshots`` snapshots)."""
        times = self.scenario.snapshot_times
        if snapshots is not None:
            times = times[:snapshots]
        for index, when in enumerate(times):
            self.run_snapshot(index, when)
        return self.result

    def run_snapshot(self, index: int, when: float) -> SnapshotResult:
        """Execute one full Fig. 2 pass at campaign time ``when``."""
        scenario = self.scenario
        scenario.materialize_snapshot(when)
        # Record the *scenario clock*, not the requested offset: the two
        # agree today (materialize lands the clock exactly on ``when``),
        # but the clock is what a checkpoint serializes, so stamping from
        # it guarantees resumed and fresh runs produce identical rows
        # even if the snapshot scheduling maths ever changes.
        when = scenario.sim.now
        views = scenario.oracles.snapshot(when)
        crawl_input = self.address_crawler.collect(views)

        # Flooders are reachable listeners outside the oracle views; the
        # crawler discovers them like any other reachable peer (they are
        # gossiped), so add them to the target list here.
        flooder_addrs = [f.addr for f in scenario.flooders]
        targets = crawl_input.targets + flooder_addrs

        crawler = GetAddrCrawler(scenario.sim, CRAWLER_ADDR, self.config.getaddr)
        crawl = crawler.run_to_completion(targets)
        truncated = crawler.aborted

        connected = set(crawl.connected_targets)
        dns_only = crawl_input.dns - crawl_input.bitnodes
        reachable_known = (
            crawl_input.known_source_addrs | connected | set(flooder_addrs)
        )
        unreachable = crawl.unreachable_addresses(reachable_known)

        responsive: Set[NetAddr] = set()
        if self.config.probe_enabled:
            prober = VerProber(scenario.sim, CRAWLER_ADDR, self.config.probe)
            probe_result = prober.run_to_completion(unreachable)
            responsive = probe_result.responsive
            truncated = truncated or prober.aborted

        comp = composition(crawl, reachable_known)
        detection = detect_flooders(
            crawl,
            reachable_known,
            min_addresses=self.config.scaled_threshold(
                scenario.config.scale
            ),
            asn_of=scenario.universe.asn_of,
        )

        snapshot = SnapshotResult(
            index=index,
            when=when,
            source_stats=crawl_input.stats,
            connected=connected,
            dns_only_connected=len(connected & dns_only),
            unreachable=unreachable,
            new_unreachable=len(
                unreachable - self.result.cumulative_unreachable
            ),
            responsive=responsive,
            new_responsive=len(
                responsive - self.result.cumulative_responsive
            ),
            addr_composition=comp,
            detection=detection,
            truncated=truncated,
        )
        self.result.snapshots.append(snapshot)
        self.result.cumulative_reachable |= connected
        self.result.cumulative_unreachable |= unreachable
        self.result.cumulative_responsive |= responsive
        return snapshot
