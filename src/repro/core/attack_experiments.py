"""Synchronization degradation under adversarial attack (Fig. 8 revisit).

The paper observed a live 73-node ADDR-flooding attack and asked what it
did to network synchronization; the adversary suite (``repro.adversary``)
lets the question be answered causally: take one Fig. 1 synchronization
campaign and one :class:`~repro.adversary.plan.AttackPlan`, scale the
plan across an attacker-count axis
(:meth:`~repro.adversary.plan.AttackPlan.with_total`), run a multi-seed
sweep per count, and report mean sync % per count — count 0 is the clean
baseline, so every level's degradation is measured against the same
seeds under the same scenario.

Two persistence layers ride on top:

* :func:`run_stored_attack_sweep` runs the sweep through the run store —
  the key is a content hash of (plan, campaign config, counts, seeds,
  engine), a completed key returns the stored result without simulating
  anything, and a partial run checkpoints after every count level so a
  killed sweep resumes from the last completed level.  Setting
  ``REPRO_CRASH_AFTER_LEVEL=k`` hard-exits after level ``k``'s
  checkpoint is durable (the sweep-level analogue of the campaign
  store's crash hook).

* :func:`compare_mitigations` reruns the attacked campaign under a
  hardened policy variant — any name registered with
  :mod:`repro.bitcoin.policy` (default the §V ``improved`` variant) —
  and reports what the hardening buys back.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Union

if TYPE_CHECKING:  # pragma: no cover - typing only; store imports are lazy
    from ..store.manifest import RunManifest
    from ..store.runstore import RunStore

import numpy as np

from ..adversary.plan import AttackPlan
from ..bitcoin.config import PolicyConfig
from ..errors import ConfigurationError, StoreError
from ..simnet.simulator import resolve_engine
from .parallel import (
    SyncSweepResult,
    _run_sync_config,
    run_multi_seed_supervised,
    seed_range,
)
from .supervisor import SupervisorConfig
from .sync_experiments import SyncCampaignConfig

#: Default attacker-count axis: clean baseline to the paper's 73 nodes.
DEFAULT_COUNTS = (0, 18, 36, 73)

#: Test/CI hook: hard-exit after this count level is durably checkpointed.
CRASH_ENV = "REPRO_CRASH_AFTER_LEVEL"
CRASH_EXIT_CODE = 42

KIND_ATTACK_SWEEP = "attack-sweep"
_CKPT_KIND = "attack-sweep-partial"
_RESULT_KIND = "attack-sweep-result"


@dataclass
class AttackSweepLevel:
    """One attacker count: the scaled plan and its multi-seed sweep."""

    count: int
    plan: Optional[AttackPlan]
    sweep: SyncSweepResult

    @property
    def mean_sync(self) -> float:
        return self.sweep.mean

    @property
    def attack_stats(self) -> Dict[str, int]:
        """Summed attacker counters across the level's seeds."""
        totals: Dict[str, int] = {}
        for result in self.sweep.per_seed:
            if result.attack_stats is None:
                continue
            for key, value in result.attack_stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals


@dataclass
class AttackSweepResult:
    """Sync-% degradation vs. attacker count (the adversarial Fig. 1)."""

    plan: AttackPlan
    levels: List[AttackSweepLevel] = field(default_factory=list)

    @property
    def counts(self) -> List[int]:
        return [level.count for level in self.levels]

    @property
    def baseline(self) -> Optional[AttackSweepLevel]:
        """The count-0 level, when the axis includes one."""
        for level in self.levels:
            if level.count == 0:
                return level
        return None

    def degradation_table(self) -> List[dict]:
        """Per-level summary rows: count, mean sync, delta vs. baseline."""
        base = self.baseline
        base_mean = base.mean_sync if base is not None else None
        rows = []
        for level in self.levels:
            rows.append(
                {
                    "attackers": level.count,
                    "mean_sync": level.mean_sync,
                    "median_sync": float(np.median(level.sweep.sync_samples)),
                    "delta_vs_baseline": (
                        level.mean_sync - base_mean
                        if base_mean is not None
                        else None
                    ),
                    "failed_seeds": list(level.sweep.failed_seeds),
                    "retried_seeds": list(level.sweep.retried_seeds),
                }
            )
        return rows


def _level_plan(plan: AttackPlan, count: int) -> Optional[AttackPlan]:
    """The plan scaled to ``count`` attackers; ``None`` below one."""
    if count <= 0:
        return None
    return plan.with_total(count)


def _run_level(
    plan: AttackPlan,
    count: int,
    base: SyncCampaignConfig,
    seeds: Sequence[int],
    workers: Optional[int],
    supervisor: Optional[SupervisorConfig],
) -> AttackSweepLevel:
    scaled = _level_plan(plan, count)
    tasks = [replace(base, seed=seed, attack=scaled) for seed in seeds]
    run = run_multi_seed_supervised(
        _run_sync_config,
        tasks,
        workers,
        supervisor,
        labels=[config.seed for config in tasks],
    )
    kept = [
        (seed, item)
        for seed, item in zip(seeds, run.results)
        if item is not None
    ]
    sweep = SyncSweepResult(
        seeds=[seed for seed, _ in kept],
        per_seed=[item for _, item in kept],
        failed_seeds=[
            seed
            for seed, item in zip(seeds, run.results)
            if item is None
        ],
        retried_seeds=[seeds[position] for position in run.retried_indexes],
    )
    return AttackSweepLevel(count=count, plan=scaled, sweep=sweep)


def run_attack_sweep(
    plan: AttackPlan,
    base: Optional[SyncCampaignConfig] = None,
    counts: Sequence[int] = DEFAULT_COUNTS,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> AttackSweepResult:
    """Measure sync-% degradation as ``plan`` scales across counts."""
    plan.validate()
    if not counts:
        raise ConfigurationError("need at least one attacker count")
    if any(count < 0 for count in counts):
        raise ConfigurationError(
            f"attacker counts must be >= 0, got {list(counts)}"
        )
    base = base if base is not None else SyncCampaignConfig()
    for count in counts:
        level = _level_plan(plan, count)
        if level is not None:
            level.validate_for(base.n_reachable)
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 3)
    result = AttackSweepResult(plan=plan)
    for count in counts:
        result.levels.append(
            _run_level(plan, count, base, seeds, workers, supervisor)
        )
    return result


# ---------------------------------------------------------------------------
# §V mitigation comparison
# ---------------------------------------------------------------------------


@dataclass
class MitigationComparison:
    """Attacked sync under default vs. hardened (§V) node policies."""

    clean: SyncSweepResult
    attacked: SyncSweepResult
    mitigated: SyncSweepResult
    policies: PolicyConfig

    def table(self) -> List[dict]:
        """Three rows: clean baseline, attack, attack + mitigations."""
        base_mean = self.clean.mean
        rows = []
        for label, sweep in (
            ("clean", self.clean),
            ("attacked", self.attacked),
            ("mitigated", self.mitigated),
        ):
            rows.append(
                {
                    "condition": label,
                    "mean_sync": sweep.mean,
                    "median_sync": sweep.median,
                    "delta_vs_clean": sweep.mean - base_mean,
                }
            )
        return rows

    @property
    def recovered(self) -> float:
        """Sync percentage points the mitigations bought back."""
        return self.mitigated.mean - self.attacked.mean


def compare_mitigations(
    plan: AttackPlan,
    base: Optional[SyncCampaignConfig] = None,
    seeds: Optional[Sequence[int]] = None,
    policies: Optional[Union[PolicyConfig, str]] = None,
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> MitigationComparison:
    """Cost a policy variant's hardening against ``plan``'s attack.

    Runs the same seeds three ways — no attack, attack under default
    policies, attack under ``policies`` — and reports the sync
    recovered by hardening.  ``policies`` may be a
    :class:`PolicyConfig` or any registered variant name
    (``repro.bitcoin.policy.variant_names()``); the default is the §V
    ``improved`` variant (tried-only ADDR, 17-day horizon, prioritized
    block relay).
    """
    plan.validate()
    base = base if base is not None else SyncCampaignConfig()
    plan.validate_for(base.n_reachable)
    if policies is None:
        policies = PolicyConfig.improved()
    elif isinstance(policies, str):
        policies = PolicyConfig(variant=policies)
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 3)
    clean = _run_level(plan, 0, base, seeds, workers, supervisor).sweep
    attacked = _run_level(
        plan, plan.total_count, base, seeds, workers, supervisor
    ).sweep
    hardened_base = replace(base, policies=policies)
    mitigated = _run_level(
        plan, plan.total_count, hardened_base, seeds, workers, supervisor
    ).sweep
    return MitigationComparison(
        clean=clean, attacked=attacked, mitigated=mitigated, policies=policies
    )


# ---------------------------------------------------------------------------
# Stored sweeps: caching, level-wise checkpoints, crash-resume
# ---------------------------------------------------------------------------


@dataclass
class StoredAttackSweep:
    """What a stored sweep handed back: result plus provenance."""

    manifest: "RunManifest"
    result: AttackSweepResult
    #: True when the result came straight from the store (no simulation).
    cached: bool = False
    #: Count levels already complete when execution (re)started.
    resumed_from: Optional[int] = None


def attack_sweep_key(
    plan: AttackPlan,
    base: SyncCampaignConfig,
    counts: Sequence[int],
    seeds: Sequence[int],
) -> str:
    """The run key for an attack-sweep invocation."""
    from ..store.manifest import config_to_dict, run_key

    return run_key(
        KIND_ATTACK_SWEEP,
        {
            "plan": plan.to_dict(),
            "campaign": config_to_dict(base),
            "counts": [int(count) for count in counts],
            "seeds": [int(seed) for seed in seeds],
        },
        seed=base.seed,
        engine=resolve_engine(None),
        snapshots_total=len(counts),
    )


def attack_sweep_run_id(key: str) -> str:
    """Human-scannable run id derived from the key."""
    return f"{KIND_ATTACK_SWEEP}-{key[:12]}"


def run_stored_attack_sweep(
    store: Union["RunStore", str],
    plan: AttackPlan,
    base: Optional[SyncCampaignConfig] = None,
    counts: Sequence[int] = DEFAULT_COUNTS,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
    resume: Optional[str] = None,
    force: bool = False,
) -> StoredAttackSweep:
    """Run (or resume, or fetch) an attack sweep through the run store.

    The sweep checkpoints its partial result after every count level;
    re-invoking with the same arguments against the same store resumes
    from the last completed level, and a complete key returns the cached
    result without simulating.  ``resume`` names an existing run id and
    fails loudly on config drift; ``force=True`` re-executes a complete
    run.
    """
    from ..store.checkpoint import dump_checkpoint, load_checkpoint
    from ..store.manifest import (
        STATUS_COMPLETE,
        STATUS_RUNNING,
        CheckpointRecord,
        RunManifest,
        SnapshotRecord,
        code_version,
        config_to_dict,
    )
    from ..store.runstore import RunStore
    from ..store.wallclock import now as wall_now

    if isinstance(store, (str, os.PathLike)):
        store = RunStore(store)
    plan.validate()
    base = base if base is not None else SyncCampaignConfig()
    if not counts:
        raise ConfigurationError("need at least one attacker count")
    for count in counts:
        level = _level_plan(plan, count)
        if level is not None:
            level.validate_for(base.n_reachable)
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 3)
    key = attack_sweep_key(plan, base, counts, seeds)
    run_id = attack_sweep_run_id(key)

    manifest: Optional[RunManifest] = None
    if resume is not None:
        manifest = store.load_manifest(resume)
        if manifest.kind != KIND_ATTACK_SWEEP:
            raise StoreError(f"run {resume!r} is a {manifest.kind!r} run")
        if manifest.key != key:
            raise StoreError(
                f"cannot resume {resume!r}: the supplied config hashes to a "
                f"different run key (config drift between start and resume)"
            )
    elif store.has_run(run_id):
        manifest = store.load_manifest(run_id)

    result: Optional[AttackSweepResult] = None
    resumed_from: Optional[int] = None
    if manifest is not None:
        if manifest.status == STATUS_COMPLETE and not force:
            if manifest.result_digest is None:
                raise StoreError(
                    f"run {run_id!r} is complete but has no stored result"
                )
            cached = load_checkpoint(
                store.get_blob(manifest.result_digest),
                expect_kind=_RESULT_KIND,
            )
            if not isinstance(cached, AttackSweepResult):
                raise StoreError(
                    f"run {run_id!r} result blob has wrong type"
                )
            return StoredAttackSweep(
                manifest=manifest, result=cached, cached=True
            )
        if manifest.checkpoint is not None and not force:
            partial = load_checkpoint(
                store.get_blob(manifest.checkpoint.digest),
                expect_kind=_CKPT_KIND,
            )
            if not isinstance(partial, AttackSweepResult):
                raise StoreError(
                    f"run {run_id!r} checkpoint blob has wrong type"
                )
            completed = len(partial.levels)
            if completed != manifest.checkpoint.snapshot_index + 1:
                raise StoreError(
                    f"run {run_id!r} checkpoint is inconsistent: contains "
                    f"{completed} levels, manifest says "
                    f"{manifest.checkpoint.snapshot_index + 1}"
                )
            result = partial
            resumed_from = completed
            manifest.snapshots = manifest.snapshots[:completed]
            manifest.status = STATUS_RUNNING
            manifest.result_digest = None

    if result is None:
        result = AttackSweepResult(plan=plan)
        manifest = RunManifest(
            run_id=run_id,
            key=key,
            kind=KIND_ATTACK_SWEEP,
            seed=base.seed,
            engine=resolve_engine(None),
            snapshots_total=len(counts),
            config={
                "plan": plan.to_dict(),
                "campaign": config_to_dict(base),
                "counts": [int(count) for count in counts],
                "seeds": [int(seed) for seed in seeds],
            },
            status=STATUS_RUNNING,
            code_version=code_version(),
        )
        store.save_manifest(manifest)

    crash_after = os.environ.get(CRASH_ENV)
    crash_index: Optional[int] = None
    if crash_after is not None:
        try:
            crash_index = int(crash_after)
        except ValueError:
            raise ConfigurationError(
                f"{CRASH_ENV} must be an integer level index, "
                f"got {crash_after!r}"
            ) from None

    start = len(result.levels)
    for index in range(start, len(counts)):
        level = _run_level(
            plan, counts[index], base, seeds, workers, supervisor
        )
        result.levels.append(level)
        # aliasing=False: a sweep resumed mid-axis appends fresh levels
        # onto an unpickled partial result, so its object graph shares
        # substructure differently than a single-process run; the
        # memo-free pickle keeps equal results digest-equal.
        ckpt_digest = store.put_blob(
            dump_checkpoint(
                result,
                kind=_CKPT_KIND,
                meta={"snapshot_index": index, "run_id": run_id},
                aliasing=False,
            )
        )
        manifest.snapshots.append(
            SnapshotRecord(
                index=index, when=float(counts[index]), digest=ckpt_digest
            )
        )
        manifest.checkpoint = CheckpointRecord(
            digest=ckpt_digest, snapshot_index=index
        )
        manifest.updated_at = wall_now()
        store.save_manifest(manifest)
        if crash_index is not None and index >= crash_index:
            os._exit(CRASH_EXIT_CODE)

    # No run-specific metadata in the result blob: equal results must
    # hash equally across runs, so cache hits can be audited by digest.
    manifest.result_digest = store.put_blob(
        dump_checkpoint(result, kind=_RESULT_KIND, aliasing=False)
    )
    manifest.status = STATUS_COMPLETE
    manifest.updated_at = wall_now()
    store.save_manifest(manifest)
    return StoredAttackSweep(
        manifest=manifest,
        result=result,
        cached=False,
        resumed_from=resumed_from,
    )
