"""The §IV-B connection experiments (Figs. 6-7) and the §IV-D resync test.

Three experiments, each dropping a freshly configured observer node into
a warmed-up protocol world whose address plane carries the measured
15/85 reachable/unreachable mixture:

* **Stability** (Fig. 6) — poll the observer's outgoing-connection count
  (feelers included, as the RPC the paper used reports them) once per
  second for 260 seconds.  Paper: oscillates 2-10, mean 6.67, below 8 for
  ~60% of the time.
* **Success rate** (Fig. 7) — five fresh 300-second runs counting outbound
  attempts vs successes.  Paper: 11.2% average, worst run 8/137.
* **Resync** (§IV-D) — stop a synchronized node, restart it, and measure
  the time until it relays a block to a connection again.  Paper: 11 min
  14 s.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import List, Optional

from ..analysis.stats import Summary, summarize
from ..analysis.timeseries import Sampler, Series
from ..errors import ScenarioError
from ..bitcoin.config import NodeConfig
from ..bitcoin.node import BitcoinNode
from ..netmodel.scenario import ProtocolScenario


def _observer_config(base: Optional[NodeConfig] = None) -> NodeConfig:
    config = base if base is not None else NodeConfig()
    config.track_connection_attempts = True
    return config


@dataclass
class StabilityResult:
    """Fig. 6: the outgoing-connection time series of one observer."""

    series: Series
    mean_connections: float
    fraction_below_8: float
    min_connections: int
    max_connections: int


def run_connection_stability(
    scenario: ProtocolScenario,
    duration: float = 260.0,
    poll_period: float = 1.0,
    observer_config: Optional[NodeConfig] = None,
    observer_warmup: float = 600.0,
) -> StabilityResult:
    """Run the Fig. 6 experiment inside a warmed-up scenario.

    ``observer_warmup`` lets the observer reach its operating point before
    polling starts — the paper's node was a standing node with populated
    tables, not a first boot; its Fig. 6 trace *oscillates* around 6-7
    rather than ramping from zero.
    """
    observer = scenario.make_observer_node(_observer_config(observer_config))
    observer.start()
    if observer_warmup > 0:
        scenario.sim.run_for(observer_warmup)
    sampler = Sampler(
        scenario.sim,
        # partial over getattr, not a lambda: the probe lands on the
        # periodic task in the event queue and must stay picklable.
        functools.partial(getattr, observer, "outbound_count_with_feelers"),
        period=poll_period,
        start_delay=poll_period,
    )
    scenario.sim.run_for(duration)
    sampler.stop()
    observer.stop()
    series = sampler.series
    if not series.values:
        raise ScenarioError("stability experiment produced no samples")
    return StabilityResult(
        series=series,
        mean_connections=series.mean(),
        fraction_below_8=series.fraction_where(lambda v: v < 8),
        min_connections=int(min(series.values)),
        max_connections=int(max(series.values)),
    )


@dataclass
class SuccessRun:
    """One Fig. 7 run: totals for a fresh observer."""

    attempts: int
    successes: int

    @property
    def success_rate(self) -> float:
        return self.successes / self.attempts if self.attempts else 0.0


@dataclass
class SuccessResult:
    """Fig. 7: five (by default) restart runs."""

    runs: List[SuccessRun]

    @property
    def overall_rate(self) -> float:
        attempts = sum(run.attempts for run in self.runs)
        successes = sum(run.successes for run in self.runs)
        return successes / attempts if attempts else 0.0

    @property
    def worst_run(self) -> SuccessRun:
        return min(self.runs, key=lambda run: run.success_rate)


def run_connection_success(
    scenario: ProtocolScenario,
    runs: int = 5,
    duration: float = 300.0,
    observer_config: Optional[NodeConfig] = None,
) -> SuccessResult:
    """Run the Fig. 7 experiment: fresh observer per run, count outcomes."""
    results: List[SuccessRun] = []
    for _ in range(runs):
        observer = scenario.make_observer_node(_observer_config(observer_config))
        observer.start()
        scenario.sim.run_for(duration)
        observer.stop()
        attempts = [
            a for a in observer.attempt_log if not a.outcome.startswith("feeler")
        ]
        results.append(
            SuccessRun(
                attempts=len(attempts),
                successes=sum(1 for a in attempts if a.succeeded),
            )
        )
    return SuccessResult(runs=results)


@dataclass
class ResyncResult:
    """§IV-D: restart-to-relay time of a synchronized node."""

    restart_at: float
    first_relay_at: Optional[float]

    @property
    def resync_seconds(self) -> Optional[float]:
        if self.first_relay_at is None:
            return None
        return self.first_relay_at - self.restart_at


def run_resync_experiment(
    scenario: ProtocolScenario,
    node: Optional[BitcoinNode] = None,
    max_wait: float = 3600.0,
) -> ResyncResult:
    """Restart a synchronized node; time until it relays a block again.

    The paper measured 11 min 14 s, dominated by connection
    re-establishment (slow, because of the polluted tables) and catching
    up on the latest block before having anything to relay.
    """
    if node is None:
        candidates = [
            n
            for n in scenario.running_nodes()
            if n.chain.height >= scenario.best_height
        ]
        if not candidates:
            raise ScenarioError("no synchronized node available to restart")
        node = candidates[0]
    node.restart()
    restart_at = scenario.sim.now
    deadline = restart_at + max_wait
    while scenario.sim.now < deadline:
        if (
            node.first_relay_at is not None
            and node.first_relay_at >= restart_at
        ):
            break
        if not scenario.sim.step():
            break
    first = node.first_relay_at
    if first is not None and first < restart_at:
        first = None
    return ResyncResult(restart_at=restart_at, first_relay_at=first)


def summarize_attempt_durations(node: BitcoinNode) -> Summary:
    """Distribution of attempt durations (diagnostic for Fig. 7 pacing)."""
    durations = [
        a.duration
        for a in node.attempt_log
        if not a.outcome.startswith("feeler")
    ]
    return summarize(durations)
