"""Network-synchronization monitoring (Fig. 1, §IV-D).

Samples a live :class:`~repro.netmodel.scenario.ProtocolScenario` the way
Bitnodes samples the real network: at a fixed period, record the fraction
of running reachable nodes whose chain matches the best height, plus the
per-node heights and the alive set (inputs to the synchronized-departure
analysis of §IV-D).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..analysis.timeseries import Series
from ..errors import AnalysisError
from ..simnet.addresses import NetAddr
from ..netmodel.scenario import ProtocolScenario
from .churn_matrix import SyncDepartureStats, synchronized_departures


@dataclass
class SyncSnapshot:
    """One Bitnodes-style sample of the live network."""

    when: float
    best_height: int
    alive: Set[NetAddr]
    heights: Dict[NetAddr, int]

    @property
    def sync_percent(self) -> float:
        if not self.alive:
            return 0.0
        synced = sum(
            1
            for addr in self.alive
            if self.heights.get(addr, -1) >= self.best_height
        )
        return 100.0 * synced / len(self.alive)


class SyncMonitor:
    """Periodic sampler of a protocol scenario's synchronization."""

    def __init__(
        self,
        scenario: ProtocolScenario,
        period: float = 600.0,
        start_delay: Optional[float] = None,
        poll_spread: float = 480.0,
    ) -> None:
        self.scenario = scenario
        self.period = period
        #: Bitnodes does not observe all 10K nodes instantaneously: one
        #: crawl sweep takes minutes, so each node's reported height is
        #: stale by a random amount up to the sweep duration.  This is a
        #: property of the *measurement* the paper's Fig. 1 is built on,
        #: and it contributes a baseline "behind the tip" mass on top of
        #: the genuine churn/propagation effects.  0 = instantaneous.
        self.poll_spread = poll_spread
        self.snapshots: List[SyncSnapshot] = []
        self.sync_series = Series()
        self._rng = scenario.sim.random.stream("sync-monitor")
        self._task = scenario.sim.call_every(
            period, self.sample, start_delay=start_delay
        )

    def sample(self) -> SyncSnapshot:
        """Take one Bitnodes-style sweep now."""
        scenario = self.scenario
        now = scenario.sim.now
        running = scenario.running_nodes()
        heights: Dict[NetAddr, int] = {}
        for node in running:
            poll_age = self._rng.uniform(0.0, self.poll_spread)
            heights[node.addr] = node.height_at(max(0.0, now - poll_age))
        best = max(heights.values(), default=0)
        snapshot = SyncSnapshot(
            when=now,
            best_height=best,
            alive={node.addr for node in running},
            heights=heights,
        )
        self.snapshots.append(snapshot)
        self.sync_series.append(snapshot.when, snapshot.sync_percent)
        return snapshot

    def stop(self) -> None:
        self._task.stop()

    # ------------------------------------------------------------------
    # Derived statistics
    # ------------------------------------------------------------------
    def sync_percents(self) -> List[float]:
        """The Fig. 1 sample series (percent synchronized per snapshot)."""
        return list(self.sync_series.values)

    def departure_stats(self) -> SyncDepartureStats:
        """Synchronized departures across the recorded snapshots (§IV-D)."""
        if len(self.snapshots) < 2:
            raise AnalysisError("need at least two snapshots")
        return synchronized_departures(
            [snap.alive for snap in self.snapshots],
            [snap.heights for snap in self.snapshots],
            [snap.best_height for snap in self.snapshots],
        )

    def departures_per_10min(self) -> float:
        """Synchronized departures normalised to the paper's 10-min window."""
        stats = self.departure_stats()
        windows_per_10min = 600.0 / self.period
        return stats.sync_departures_per_window * windows_per_10min


def best_height_at(history_times: List[float], heights: List[int], when: float) -> int:
    """Network-best height at time ``when`` given the mined-block history."""
    if len(history_times) != len(heights):
        raise AnalysisError("history arrays must have equal length")
    index = bisect.bisect_right(history_times, when)
    return heights[index - 1] if index > 0 else 0
