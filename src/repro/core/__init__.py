"""The paper's contribution: measurement and root-cause-analysis toolkit.

Implements the Fig. 2 data-collection workflow (address crawler, GETADDR
crawler, VER prober), the four root-cause analyses (unreachable network,
addressing protocol, relaying protocol, churn), the malicious-peer
detector, the routing-attack revisit, and the experiment drivers for every
figure in §IV.
"""

from .addr_analysis import AddrComposition, classify_harvest, composition, table_composition
from .churn_matrix import (
    ChurnMatrix,
    ChurnStats,
    SyncDepartureStats,
    analyze,
    build_matrix,
    departures_between,
    synchronized_departures,
)
from .conn_experiments import (
    ResyncResult,
    StabilityResult,
    SuccessResult,
    SuccessRun,
    run_connection_stability,
    run_connection_success,
    run_resync_experiment,
    summarize_attempt_durations,
)
from . import export, figures
from .crawler import AddressCrawler, CrawlInput, SourceStats
from .getaddr import CrawlResult, GetAddrConfig, GetAddrCrawler, PeerHarvest
from .malicious_detect import (
    DetectionMetrics,
    DetectionReport,
    MaliciousFinding,
    detect_flooders,
    merge_reports,
    score_detection,
    time_to_detection,
)
from .attack_experiments import (
    AttackSweepLevel,
    AttackSweepResult,
    MitigationComparison,
    StoredAttackSweep,
    compare_mitigations,
    run_attack_sweep,
    run_stored_attack_sweep,
)
from .fault_experiments import (
    FaultSweepLevel,
    FaultSweepResult,
    run_sync_under_faults,
)
from .variant_experiments import (
    StoredVariantMatrix,
    VariantCell,
    VariantMatrixResult,
    run_stored_variant_matrix,
    run_variant_matrix,
    variant_matrix_key,
)
from .parallel import (
    CampaignSweepResult,
    SyncSweepResult,
    run_2019_vs_2020_sweep,
    run_campaign_sweep,
    run_multi_seed,
    run_multi_seed_supervised,
    run_sync_campaign_sweep,
    seed_range,
)
from .pipeline import (
    CRAWLER_ADDR,
    CampaignConfig,
    CampaignResult,
    CampaignRunner,
    SnapshotResult,
)
from .prober import ProbeCampaignResult, ProbeConfig, VerProber
from .propagation import (
    BlockPropagation,
    PropagationTracker,
    measure_propagation,
)
from .relay_experiments import (
    RelayExperimentConfig,
    RelayExperimentResult,
    build_relay_scenario,
    run_relay_experiment,
)
from .reports import comparison_table, format_table, series_preview
from .routing import (
    ASHostingRow,
    HijackPlan,
    HostingReport,
    TargetShift,
    common_top_ases,
    hosting_report,
    plan_hijack,
    target_shifts,
)
from .sync_experiments import (
    SyncCampaignConfig,
    SyncCampaignResult,
    run_2019_vs_2020,
    run_sync_campaign,
)
from .supervisor import (
    SupervisedRun,
    SupervisorConfig,
    SupervisorEvent,
    run_supervised,
)
from .sync_monitor import SyncMonitor, SyncSnapshot, best_height_at

__all__ = [
    "CRAWLER_ADDR",
    "ASHostingRow",
    "AddrComposition",
    "AddressCrawler",
    "AttackSweepLevel",
    "AttackSweepResult",
    "BlockPropagation",
    "CampaignConfig",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSweepResult",
    "ChurnMatrix",
    "ChurnStats",
    "CrawlInput",
    "CrawlResult",
    "DetectionMetrics",
    "DetectionReport",
    "FaultSweepLevel",
    "FaultSweepResult",
    "GetAddrConfig",
    "GetAddrCrawler",
    "HijackPlan",
    "HostingReport",
    "MaliciousFinding",
    "MitigationComparison",
    "PeerHarvest",
    "ProbeCampaignResult",
    "ProbeConfig",
    "PropagationTracker",
    "RelayExperimentConfig",
    "RelayExperimentResult",
    "ResyncResult",
    "SnapshotResult",
    "SourceStats",
    "StabilityResult",
    "StoredAttackSweep",
    "SuccessResult",
    "SuccessRun",
    "SupervisedRun",
    "SupervisorConfig",
    "SupervisorEvent",
    "SyncCampaignConfig",
    "SyncCampaignResult",
    "SyncDepartureStats",
    "SyncMonitor",
    "SyncSnapshot",
    "SyncSweepResult",
    "TargetShift",
    "StoredVariantMatrix",
    "VariantCell",
    "VariantMatrixResult",
    "VerProber",
    "analyze",
    "best_height_at",
    "build_matrix",
    "build_relay_scenario",
    "classify_harvest",
    "common_top_ases",
    "compare_mitigations",
    "comparison_table",
    "composition",
    "departures_between",
    "detect_flooders",
    "export",
    "figures",
    "format_table",
    "hosting_report",
    "measure_propagation",
    "merge_reports",
    "plan_hijack",
    "run_2019_vs_2020",
    "run_attack_sweep",
    "run_2019_vs_2020_sweep",
    "run_campaign_sweep",
    "run_connection_stability",
    "run_connection_success",
    "run_multi_seed",
    "run_multi_seed_supervised",
    "run_relay_experiment",
    "run_resync_experiment",
    "run_stored_attack_sweep",
    "run_supervised",
    "run_sync_campaign",
    "run_sync_campaign_sweep",
    "run_sync_under_faults",
    "run_stored_variant_matrix",
    "run_variant_matrix",
    "variant_matrix_key",
    "score_detection",
    "seed_range",
    "series_preview",
    "summarize_attempt_durations",
    "synchronized_departures",
    "table_composition",
    "target_shifts",
    "time_to_detection",
]
