"""Block-propagation measurement across the reachable network.

Decker & Wattenhofer (the paper's [5]) measured how long a block takes to
reach a given share of reachable nodes (90% within 12 s in 2013); the
paper's Fig. 1 variance and its §IV-B outdegree argument are both about
this curve stretching.  :class:`PropagationTracker` hooks every node's
tip-advance callback and records, per block, the arrival time at each
node — yielding percentile curves and per-block coverage.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

import numpy as np

from ..errors import AnalysisError
from ..bitcoin.blockchain import Block
from ..bitcoin.node import BitcoinNode
from ..netmodel.scenario import ProtocolScenario


@dataclass
class BlockPropagation:
    """Arrival times of one block across the network."""

    block_id: int
    created_at: float
    #: node address → arrival (tip-advance) time.
    arrivals: Dict = field(default_factory=dict)

    def delay_percentile(self, population: int, percentile: float) -> Optional[float]:
        """Time until ``percentile`` of ``population`` nodes had the block."""
        if not self.arrivals or population <= 0:
            return None
        needed = int(np.ceil(population * percentile / 100.0))
        if len(self.arrivals) < needed:
            return None  # the block never reached that share
        delays = sorted(t - self.created_at for t in self.arrivals.values())
        return delays[needed - 1]

    def coverage(self, population: int) -> float:
        """Share of the population that ever received the block."""
        return len(self.arrivals) / population if population else 0.0


class PropagationTracker:
    """Records per-block arrival times across a protocol scenario.

    Chains onto each node's ``on_tip_advanced`` hook (preserving any
    existing callback) and keeps following nodes added later (churn
    replacements) via :meth:`attach_new_nodes`.
    """

    def __init__(self, scenario: ProtocolScenario) -> None:
        self.scenario = scenario
        self.blocks: Dict[int, BlockPropagation] = {}
        self._attached: set = set()
        self.attach_new_nodes()

    def attach_new_nodes(self) -> int:
        """Hook any nodes not yet instrumented.  Returns # attached."""
        count = 0
        for node in self.scenario.nodes:
            if node.addr in self._attached:
                continue
            self._attached.add(node.addr)
            self._hook(node)
            count += 1
        return count

    def _hook(self, node: BitcoinNode) -> None:
        previous = node.on_tip_advanced

        def on_advance(advancing_node: BitcoinNode, block: Block) -> None:
            self._record(advancing_node, block)
            if previous is not None:
                previous(advancing_node, block)

        node.on_tip_advanced = on_advance

    def _record(self, node: BitcoinNode, block: Block) -> None:
        record = self.blocks.get(block.block_id)
        if record is None:
            record = BlockPropagation(
                block_id=block.block_id, created_at=self.scenario.sim.now
            )
            self.blocks[block.block_id] = record
        record.arrivals.setdefault(node.addr, self.scenario.sim.now)

    # ------------------------------------------------------------------
    # Aggregation
    # ------------------------------------------------------------------
    def completed_blocks(self, min_coverage: float = 0.9) -> List[BlockPropagation]:
        """Blocks that reached at least ``min_coverage`` of the network."""
        population = len(self.scenario.running_nodes())
        return [
            record
            for record in self.blocks.values()
            if record.coverage(population) >= min_coverage
        ]

    def percentile_delays(
        self, percentile: float = 90.0, min_coverage: float = 0.9
    ) -> List[float]:
        """Per-block time-to-``percentile``% delays (Decker-style)."""
        population = len(self.scenario.running_nodes())
        out: List[float] = []
        for record in self.completed_blocks(min_coverage):
            value = record.delay_percentile(population, percentile)
            if value is not None:
                out.append(value)
        return out

    def mean_delay_to(self, percentile: float = 90.0) -> float:
        delays = self.percentile_delays(percentile)
        if not delays:
            raise AnalysisError("no block reached the requested coverage")
        return float(np.mean(delays))


def measure_propagation(
    n_reachable: int = 60,
    max_outbound: int = 8,
    blocks: int = 10,
    block_interval: float = 120.0,
    seed: int = 3,
) -> "tuple[PropagationTracker, ProtocolScenario]":
    """Run a propagation experiment at a given outdegree.

    The §IV-B ablation: rerun with ``max_outbound=2`` and watch the
    90th-percentile delay stretch, exactly as the 8^5-vs-2^14 rounds
    argument predicts.
    """
    from ..bitcoin.config import NodeConfig
    from ..netmodel.scenario import ProtocolConfig

    scenario = ProtocolScenario(
        ProtocolConfig(
            n_reachable=n_reachable,
            seed=seed,
            block_interval=block_interval,
            node_config=NodeConfig(max_outbound=max_outbound),
        )
    )
    scenario.start(warmup=900.0)
    tracker = PropagationTracker(scenario)
    scenario.sim.run_for(blocks * block_interval * 1.2)
    return tracker, scenario
