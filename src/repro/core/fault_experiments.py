"""Synchronization degradation under injected faults.

The paper measures how Bitcoin synchronization deteriorates under churn;
the resilience literature it builds on (Motlagh et al., arXiv:1803.06559)
asks the sharper question of how *gracefully* sync degrades as network
conditions worsen.  This driver answers it in the simulator: take one
Fig. 1 synchronization campaign and one :class:`~repro.faults.plan.FaultPlan`,
scale the plan across an intensity axis
(:meth:`~repro.faults.plan.FaultPlan.scaled`), run a multi-seed sweep
per intensity level, and report mean sync % per level — intensity 0 is
the clean baseline, so every level's degradation is measured against the
same seeds under the same scenario.

All ``len(intensities) x len(seeds)`` campaigns share one supervised
fan-out (a faulted campaign is exactly the kind of run that can wedge or
die, which is why the fault sweep and the supervised runner ship
together).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..faults.plan import FaultPlan
from .parallel import (
    SyncSweepResult,
    _run_sync_config,
    run_multi_seed_supervised,
    seed_range,
)
from .supervisor import SupervisorConfig
from .sync_experiments import SyncCampaignConfig

#: Default intensity axis: clean baseline to double the plan's magnitudes.
DEFAULT_INTENSITIES = (0.0, 0.5, 1.0, 1.5, 2.0)


@dataclass
class FaultSweepLevel:
    """One intensity level: the scaled plan and its multi-seed sweep."""

    intensity: float
    plan: FaultPlan
    sweep: SyncSweepResult

    @property
    def mean_sync(self) -> float:
        return self.sweep.mean

    @property
    def fault_stats(self) -> dict:
        """Summed injector counters across the level's seeds."""
        totals: dict = {}
        for result in self.sweep.per_seed:
            if result.fault_stats is None:
                continue
            for key, value in result.fault_stats.items():
                totals[key] = totals.get(key, 0) + value
        return totals


@dataclass
class FaultSweepResult:
    """Sync-% degradation vs. fault intensity (the chaos Fig. 1)."""

    plan: FaultPlan
    levels: List[FaultSweepLevel] = field(default_factory=list)

    @property
    def intensities(self) -> List[float]:
        return [level.intensity for level in self.levels]

    @property
    def baseline(self) -> Optional[FaultSweepLevel]:
        """The intensity-0 level, when the axis includes one."""
        for level in self.levels:
            if level.intensity == 0:
                return level
        return None

    def degradation_table(self) -> List[dict]:
        """Per-level summary rows: intensity, mean sync, delta vs. baseline."""
        base = self.baseline
        base_mean = base.mean_sync if base is not None else None
        rows = []
        for level in self.levels:
            rows.append(
                {
                    "intensity": level.intensity,
                    "mean_sync": level.mean_sync,
                    "median_sync": float(np.median(level.sweep.sync_samples)),
                    "delta_vs_baseline": (
                        level.mean_sync - base_mean
                        if base_mean is not None
                        else None
                    ),
                    "failed_seeds": list(level.sweep.failed_seeds),
                    "retried_seeds": list(level.sweep.retried_seeds),
                }
            )
        return rows


def run_sync_under_faults(
    plan: FaultPlan,
    base: Optional[SyncCampaignConfig] = None,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> FaultSweepResult:
    """Measure sync-% degradation as ``plan`` scales across intensities."""
    plan.validate()
    if not intensities:
        raise ConfigurationError("need at least one fault intensity")
    base = base if base is not None else SyncCampaignConfig()
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 3)
    levels = [(intensity, plan.scaled(intensity)) for intensity in intensities]
    tasks: List[SyncCampaignConfig] = []
    for _, scaled in levels:
        for seed in seeds:
            tasks.append(replace(base, seed=seed, faults=scaled))
    run = run_multi_seed_supervised(
        _run_sync_config,
        tasks,
        workers,
        supervisor,
        labels=[config.seed for config in tasks],
    )
    result = FaultSweepResult(plan=plan)
    for index, (intensity, scaled) in enumerate(levels):
        low, high = index * len(seeds), (index + 1) * len(seeds)
        chunk = run.results[low:high]
        kept = [
            (seed, item)
            for seed, item in zip(seeds, chunk)
            if item is not None
        ]
        sweep = SyncSweepResult(
            seeds=[seed for seed, _ in kept],
            per_seed=[item for _, item in kept],
            failed_seeds=[
                seed for seed, item in zip(seeds, chunk) if item is None
            ],
            retried_seeds=[
                seeds[position - low]
                for position in run.retried_indexes
                if low <= position < high
            ],
        )
        result.levels.append(
            FaultSweepLevel(intensity=intensity, plan=scaled, sweep=sweep)
        )
    return result
