"""The address crawler: merge Bitnodes + DNS views, drop the blacklist.

This is the left half of the paper's Fig. 2 workflow.  Its outputs are the
Fig. 3 statistics: addresses per source, overlap, critical-infrastructure
exclusions, and the final target list handed to the network crawler.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Set

from ..simnet.addresses import NetAddr
from ..netmodel.seeds import AddressViews


@dataclass(frozen=True)
class SourceStats:
    """Fig. 3a/3b numbers for one snapshot."""

    bitnodes_total: int
    dns_total: int
    common_total: int
    excluded_bitnodes: int
    excluded_dns: int
    excluded_common: int
    provided: int  # addresses handed to the network crawler

    @property
    def union_total(self) -> int:
        return self.bitnodes_total + self.dns_total - self.common_total


@dataclass
class CrawlInput:
    """The target list for one snapshot, plus provenance."""

    when: float
    targets: List[NetAddr]
    stats: SourceStats
    bitnodes: Set[NetAddr]
    dns: Set[NetAddr]
    excluded: Set[NetAddr]

    @property
    def known_source_addrs(self) -> Set[NetAddr]:
        """Everything either source listed (used to filter 'reachable')."""
        return self.bitnodes | self.dns


class AddressCrawler:
    """Merges the two address sources and applies the ethics blacklist."""

    def __init__(self, is_blacklisted: Callable[[NetAddr], bool]) -> None:
        #: Predicate marking critical-infrastructure addresses (§III-A).
        self._is_blacklisted = is_blacklisted

    def collect(self, views: AddressViews) -> CrawlInput:
        """One snapshot's worth of targets and Fig. 3 statistics."""
        common = views.common
        excluded = {
            addr for addr in views.union if self._is_blacklisted(addr)
        }
        targets = sorted(views.union - excluded)
        stats = SourceStats(
            bitnodes_total=len(views.bitnodes),
            dns_total=len(views.dns),
            common_total=len(common),
            excluded_bitnodes=len(views.bitnodes & excluded),
            excluded_dns=len(views.dns & excluded),
            excluded_common=len(common & excluded),
            provided=len(targets),
        )
        return CrawlInput(
            when=views.when,
            targets=targets,
            stats=stats,
            bitnodes=set(views.bitnodes),
            dns=set(views.dns),
            excluded=excluded,
        )
