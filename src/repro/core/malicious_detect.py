"""Malicious-peer detection heuristic (§IV-B, Fig. 8) and its scoring.

The paper's heuristic: every honest ADDR response contains at least one
reachable address, because (1) the sender always includes its own —
reachable — address, and (2) a reachable node is connected to other
reachable nodes whose addresses populate its tried table.  A peer whose
*entire* harvested ADDR output contains no reachable address is therefore
flooding, and the volume of unreachable addresses it pushed measures the
attack (73 nodes; 8 above 100K addresses; one above 400K; 59% in AS3320).

With the adversary suite providing ground truth (``repro.adversary``),
the heuristic itself becomes measurable: :func:`score_detection` turns a
report plus the true attacker/honest address sets into recall,
false-positive rate, and precision, and :func:`time_to_detection` reads
per-attacker first-flag times off a timed report sequence.  The scores
also document the heuristic's blind spot — sync-stallers and inventory
spammers never touch the ADDR plane, so their recall is structurally 0.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..simnet.addresses import NetAddr
from .getaddr import CrawlResult


@dataclass(frozen=True)
class MaliciousFinding:
    """One detected flooder.

    ``unreachable_sent`` counts ADDR *records* the peer sent (the Fig. 8
    y-axis: a flooder serving fresh fabrications across repeated requests
    and snapshots can "send" far more addresses than the network holds —
    the paper's top flooder sent >400K against a 694K unreachable total).
    ``unique_sent`` counts distinct addresses.
    """

    peer: NetAddr
    unreachable_sent: int
    unique_sent: int
    addr_messages: int
    asn: Optional[int] = None


@dataclass
class DetectionReport:
    """The Fig. 8 dataset."""

    findings: List[MaliciousFinding]
    #: Detection threshold actually applied (addresses sent).
    min_addresses: int

    @property
    def count(self) -> int:
        return len(self.findings)

    def count_over(self, threshold: int) -> int:
        """How many flooders sent more than ``threshold`` addresses."""
        return sum(1 for f in self.findings if f.unreachable_sent > threshold)

    @property
    def max_flood(self) -> int:
        return max((f.unreachable_sent for f in self.findings), default=0)

    def as_share_by_asn(self) -> Dict[int, float]:
        """Fraction of flooders per AS (the 59%-in-AS3320 statistic)."""
        if not self.findings:
            return {}
        by_asn: Dict[int, int] = {}
        for finding in self.findings:
            if finding.asn is not None:
                by_asn[finding.asn] = by_asn.get(finding.asn, 0) + 1
        return {
            asn: count / len(self.findings) for asn, count in by_asn.items()
        }

    def flood_volumes(self) -> List[int]:
        """Sorted per-flooder volumes (the Fig. 8 y-series)."""
        return sorted(
            (f.unreachable_sent for f in self.findings), reverse=True
        )


def detect_flooders(
    result: CrawlResult,
    reachable_known: Set[NetAddr],
    min_addresses: int = 1000,
    asn_of: Optional[Callable[[NetAddr], Optional[int]]] = None,
) -> DetectionReport:
    """Apply the heuristic to a crawl pass.

    A peer is flagged when it (a) answered with at least ``min_addresses``
    addresses in total (the paper used 1,000 — one full ADDR response) and
    (b) *none* of them, its own included, was a known reachable address.
    """
    findings: List[MaliciousFinding] = []
    for harvest in result.harvests.values():
        if not harvest.connected or harvest.total_records < min_addresses:
            continue
        if any(addr in reachable_known for addr in harvest.addresses):
            continue
        findings.append(
            MaliciousFinding(
                peer=harvest.target,
                unreachable_sent=harvest.total_records,
                unique_sent=len(harvest.addresses),
                addr_messages=harvest.addr_messages,
                asn=asn_of(harvest.target) if asn_of is not None else None,
            )
        )
    findings.sort(key=lambda f: f.unreachable_sent, reverse=True)
    return DetectionReport(findings=findings, min_addresses=min_addresses)


def merge_reports(
    reports: List[DetectionReport],
    asn_of: Optional[Callable[[NetAddr], Optional[int]]] = None,
) -> DetectionReport:
    """Merge per-snapshot reports into a campaign view.

    A flooder seen in several snapshots is counted once; its sent-record
    volume accumulates across snapshots (each snapshot is a fresh crawl
    session pulling the flooder again), while the unique count takes the
    maximum observed.
    """
    merged: Dict[NetAddr, MaliciousFinding] = {}
    min_addresses = min((r.min_addresses for r in reports), default=1000)
    for report in reports:
        for finding in report.findings:
            existing = merged.get(finding.peer)
            if existing is None:
                merged[finding.peer] = finding
            else:
                merged[finding.peer] = MaliciousFinding(
                    peer=finding.peer,
                    unreachable_sent=existing.unreachable_sent
                    + finding.unreachable_sent,
                    unique_sent=max(existing.unique_sent, finding.unique_sent),
                    addr_messages=existing.addr_messages + finding.addr_messages,
                    asn=existing.asn if existing.asn is not None else finding.asn,
                )
    findings = sorted(
        merged.values(), key=lambda f: f.unreachable_sent, reverse=True
    )
    if asn_of is not None:
        findings = [
            MaliciousFinding(
                peer=f.peer,
                unreachable_sent=f.unreachable_sent,
                unique_sent=f.unique_sent,
                addr_messages=f.addr_messages,
                asn=f.asn if f.asn is not None else asn_of(f.peer),
            )
            for f in findings
        ]
    return DetectionReport(findings=findings, min_addresses=min_addresses)


# ---------------------------------------------------------------------------
# Scoring against ground truth (the adversary suite closes this loop)
# ---------------------------------------------------------------------------


@dataclass
class DetectionMetrics:
    """A detection report scored against known attacker placement.

    ``recall`` is over the attackers the crawl *could* have seen (those
    in ``attackers``); ``false_positive_rate`` is over the honest peers
    the crawl actually harvested.  ``time_to_detection`` holds, per
    detected attacker, the campaign time of the first report flagging it
    (populated by :func:`time_to_detection`).
    """

    detected: List[NetAddr]
    missed: List[NetAddr]
    false_positives: List[NetAddr]
    honest_scored: int
    time_to_detection: Dict[NetAddr, float] = field(default_factory=dict)

    @property
    def recall(self) -> float:
        total = len(self.detected) + len(self.missed)
        return len(self.detected) / total if total else 1.0

    @property
    def false_positive_rate(self) -> float:
        if self.honest_scored == 0:
            return 0.0
        return len(self.false_positives) / self.honest_scored

    @property
    def precision(self) -> float:
        flagged = len(self.detected) + len(self.false_positives)
        return len(self.detected) / flagged if flagged else 1.0

    @property
    def mean_time_to_detection(self) -> Optional[float]:
        if not self.time_to_detection:
            return None
        return sum(self.time_to_detection.values()) / len(
            self.time_to_detection
        )

    def as_dict(self) -> Dict[str, float]:
        """Flat summary for tables/exports."""
        mean_ttd = self.mean_time_to_detection
        return {
            "recall": self.recall,
            "false_positive_rate": self.false_positive_rate,
            "precision": self.precision,
            "detected": float(len(self.detected)),
            "missed": float(len(self.missed)),
            "false_positives": float(len(self.false_positives)),
            "mean_time_to_detection": (
                float("nan") if mean_ttd is None else mean_ttd
            ),
        }


def score_detection(
    report: DetectionReport,
    attackers: Iterable[NetAddr],
    honest: Iterable[NetAddr],
) -> DetectionMetrics:
    """Score ``report`` against ground-truth attacker placement.

    ``attackers`` is the true attacker address set (e.g.
    ``AttackForce.attacker_addrs()`` or the longitudinal flooder list);
    ``honest`` the honest peers the same crawl covered — every flagged
    honest peer is a false positive, every unflagged attacker a miss.
    """
    attacker_set = set(attackers)
    honest_set = set(honest) - attacker_set
    flagged = {finding.peer for finding in report.findings}
    detected = sorted(flagged & attacker_set)
    missed = sorted(attacker_set - flagged)
    false_positives = sorted(flagged & honest_set)
    return DetectionMetrics(
        detected=detected,
        missed=missed,
        false_positives=false_positives,
        honest_scored=len(honest_set),
    )


def time_to_detection(
    timed_reports: Sequence[Tuple[float, DetectionReport]],
    attackers: Iterable[NetAddr],
) -> Dict[NetAddr, float]:
    """First flag time per attacker over a report series.

    ``timed_reports`` pairs each detection pass with its campaign time
    (one entry per crawl snapshot); an attacker never flagged is absent
    from the result.
    """
    attacker_set = set(attackers)
    first_seen: Dict[NetAddr, float] = {}
    for when, report in sorted(timed_reports, key=lambda pair: pair[0]):
        for finding in report.findings:
            if finding.peer in attacker_set and finding.peer not in first_seen:
                first_seen[finding.peer] = when
    return first_seen
