"""Multi-seed campaign execution across worker processes.

Every experiment in the reproduction is a deterministic function of its
seed, which makes seed-level parallelism trivial to make *exactly*
reproducible: fan the seeds out to a process pool, collect per-seed
results **in seed order** (``Pool.map`` preserves input order no matter
which worker finishes first), and merge.  The merged output is therefore
bit-identical to running the same seeds sequentially — there is a test
pinning that.

Workers default to the machine's CPU count (capped by the number of
seeds) and can be forced with ``workers=`` or the ``REPRO_WORKERS``
environment variable; ``workers=1`` executes inline in this process with
no multiprocessing machinery at all, which is also the fallback used
when only one seed is requested.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, replace
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from ..analysis.kde import DensityEstimate, kde
from ..netmodel.scenario import LongitudinalConfig, LongitudinalScenario
from .pipeline import CampaignConfig, CampaignResult, CampaignRunner
from .sync_experiments import (
    SyncCampaignConfig,
    SyncCampaignResult,
    run_sync_campaign,
)

T = TypeVar("T")


def default_workers(n_tasks: int) -> int:
    """Worker count: ``REPRO_WORKERS`` if set, else CPUs, capped by tasks."""
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        return max(1, min(int(env), n_tasks))
    return max(1, min(multiprocessing.cpu_count(), n_tasks))


def seed_range(base_seed: int, count: int) -> List[int]:
    """The consecutive seed list ``base_seed .. base_seed+count-1``."""
    if count < 1:
        raise ValueError(f"need at least one seed, got {count}")
    return list(range(base_seed, base_seed + count))


def run_multi_seed(
    task: Callable[[int], T],
    seeds: Sequence[int],
    workers: Optional[int] = None,
) -> List[T]:
    """Run ``task(seed)`` for every seed; results in seed (input) order.

    ``task`` must be picklable (a module-level function or a
    ``functools.partial`` of one) when more than one worker is used.
    """
    seeds = list(seeds)
    if workers is None:
        workers = default_workers(len(seeds))
    if workers <= 1 or len(seeds) <= 1:
        return [task(seed) for seed in seeds]
    with multiprocessing.Pool(processes=workers) as pool:
        # map (not imap_unordered): output order == seed order, so the
        # merged result cannot depend on worker scheduling.
        return pool.map(task, seeds)


# ---------------------------------------------------------------------------
# Fig. 1 synchronization campaigns
# ---------------------------------------------------------------------------
def _sync_worker(base: SyncCampaignConfig, seed: int) -> SyncCampaignResult:
    return run_sync_campaign(replace(base, seed=seed))


@dataclass
class SyncSweepResult:
    """Multi-seed synchronization campaign, merged in seed order."""

    seeds: List[int]
    per_seed: List[SyncCampaignResult]

    @property
    def sync_samples(self) -> List[float]:
        """All samples, concatenated in seed order (deterministic merge)."""
        merged: List[float] = []
        for result in self.per_seed:
            merged.extend(result.sync_samples)
        return merged

    @property
    def mean(self) -> float:
        return float(np.mean(self.sync_samples))

    @property
    def median(self) -> float:
        return float(np.median(self.sync_samples))

    @property
    def sync_departures_per_10min(self) -> float:
        """Mean synchronized-departure rate across seeds."""
        return float(
            np.mean([r.sync_departures_per_10min for r in self.per_seed])
        )

    @property
    def truncated(self) -> bool:
        """True if any seed's campaign was cut short by its event cap."""
        return any(r.truncated for r in self.per_seed)

    @property
    def truncated_seeds(self) -> List[int]:
        """Seeds whose campaigns were cut short (pooled stats are biased)."""
        return [
            seed
            for seed, result in zip(self.seeds, self.per_seed)
            if result.truncated
        ]

    def density(self, **kwargs) -> DensityEstimate:
        """KDE over the pooled samples (a seed-averaged Fig. 1 curve)."""
        return kde(self.sync_samples, **kwargs)


def run_sync_campaign_sweep(
    base: Optional[SyncCampaignConfig] = None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
) -> SyncSweepResult:
    """Run the Fig. 1 campaign once per seed and merge deterministically."""
    base = base if base is not None else SyncCampaignConfig()
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 4)
    results = run_multi_seed(partial(_sync_worker, base), seeds, workers)
    return SyncSweepResult(seeds=seeds, per_seed=results)


def run_2019_vs_2020_sweep(
    base: Optional[SyncCampaignConfig] = None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    churn_2019: float = 5.0,
    churn_2020: float = 14.0,
) -> Dict[str, SyncSweepResult]:
    """The Fig. 1 contrast with N seeds per churn level.

    All ``2 x len(seeds)`` runs share one worker pool; results are
    regrouped by label, each group ordered by seed.
    """
    base = base if base is not None else SyncCampaignConfig()
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 4)
    labels = (("2019", churn_2019), ("2020", churn_2020))
    tasks: List[SyncCampaignConfig] = []
    for _, churn in labels:
        for seed in seeds:
            tasks.append(replace(base, churn_per_10min=churn, seed=seed))
    results = run_multi_seed(_run_sync_config, tasks, workers)
    out: Dict[str, SyncSweepResult] = {}
    for index, (label, _) in enumerate(labels):
        chunk = results[index * len(seeds) : (index + 1) * len(seeds)]
        out[label] = SyncSweepResult(seeds=list(seeds), per_seed=chunk)
    return out


def _run_sync_config(config: SyncCampaignConfig) -> SyncCampaignResult:
    return run_sync_campaign(config)


# ---------------------------------------------------------------------------
# Fig. 2 crawl campaigns
# ---------------------------------------------------------------------------
def _campaign_worker(
    base: LongitudinalConfig,
    config: Optional[CampaignConfig],
    snapshots: Optional[int],
    store_root: Optional[str],
    seed: int,
) -> CampaignResult:
    seeded = replace(base, seed=seed)
    if store_root is not None:
        # Route through the run store: each seed's campaign becomes a
        # durable, individually resumable run, and re-sweeping the same
        # configs is a per-seed cache hit.  Imported lazily so plain
        # sweeps never load the store package in workers.
        from ..store.campaign import run_stored_campaign

        stored = run_stored_campaign(
            store_root, seeded, campaign_config=config, snapshots=snapshots
        )
        return stored.result
    scenario = LongitudinalScenario(seeded)
    runner = CampaignRunner(scenario, config)
    return runner.run(snapshots=snapshots)


@dataclass
class CampaignSweepResult:
    """Multi-seed crawl campaign, merged in seed order."""

    seeds: List[int]
    per_seed: List[CampaignResult]

    def mean_over_seeds(self, stat: Callable[[CampaignResult], float]) -> float:
        """Average a per-campaign statistic across seeds."""
        return float(np.mean([stat(result) for result in self.per_seed]))

    def pooled_cumulative_unreachable(self) -> int:
        """Unique unreachable addresses across every seed's campaign."""
        seen = set()
        for result in self.per_seed:
            seen |= result.cumulative_unreachable
        return len(seen)

    @property
    def truncated(self) -> bool:
        """True if any seed's campaign contains a cut-short snapshot."""
        return any(result.truncated for result in self.per_seed)

    @property
    def truncated_seeds(self) -> List[int]:
        """Seeds with at least one truncated snapshot (lower bounds only)."""
        return [
            seed
            for seed, result in zip(self.seeds, self.per_seed)
            if result.truncated
        ]


def run_campaign_sweep(
    base: LongitudinalConfig,
    seeds: Sequence[int],
    config: Optional[CampaignConfig] = None,
    snapshots: Optional[int] = None,
    workers: Optional[int] = None,
    store: Optional[str] = None,
) -> CampaignSweepResult:
    """Run the Fig. 2 crawl campaign once per seed and merge.

    ``store`` names a run-store root; when given, every per-seed campaign
    is checkpointed there and completed seeds are served from the cache
    on re-runs (the store root travels to workers as a plain path so the
    task stays picklable).
    """
    seeds = list(seeds)
    task = partial(
        _campaign_worker,
        base,
        config,
        snapshots,
        os.fspath(store) if store is not None else None,
    )
    results = run_multi_seed(task, seeds, workers)
    return CampaignSweepResult(seeds=seeds, per_seed=results)
