"""Multi-seed campaign execution across worker processes.

Every experiment in the reproduction is a deterministic function of its
seed, which makes seed-level parallelism trivial to make *exactly*
reproducible: fan the seeds out to worker processes, collect per-seed
results **in seed (input) order**, and merge.  The merged output is
therefore bit-identical to running the same seeds sequentially — there
is a test pinning that.

Execution goes through the :mod:`~repro.core.supervisor` rather than a
bare ``Pool.map``: crashed workers are detected and retried with
backoff, hung workers can be timed out, and a seed that permanently
fails yields a structured :class:`~repro.errors.SeedTaskError` instead
of poisoning the whole campaign.  :func:`run_multi_seed` keeps the old
all-or-nothing contract (it raises
:class:`~repro.errors.CampaignAbortedError` carrying the partial
results); the sweep drivers run in partial mode and report
``failed_seeds`` / ``retried_seeds`` on their results.

Workers default to the machine's CPU count (capped by the number of
seeds) and can be forced with ``workers=`` or the ``REPRO_WORKERS``
environment variable; ``workers=1`` executes inline in this process with
no multiprocessing machinery at all, which is also the fallback used
when only one seed is requested.
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field, replace
from functools import partial
from typing import Callable, Dict, List, Optional, Sequence, TypeVar

import numpy as np

from ..analysis.kde import DensityEstimate, kde
from ..errors import CampaignAbortedError, ConfigurationError
from ..netmodel.scenario import LongitudinalConfig, LongitudinalScenario
from .pipeline import CampaignConfig, CampaignResult, CampaignRunner
from .supervisor import (
    SupervisedRun,
    SupervisorConfig,
    SupervisorEvent,
    run_supervised,
)
from .sync_experiments import (
    SyncCampaignConfig,
    SyncCampaignResult,
    run_sync_campaign,
)

T = TypeVar("T")


def default_workers(n_tasks: int) -> int:
    """Worker count: ``REPRO_WORKERS`` if set, else CPUs, capped by tasks.

    Values below 1 clamp to 1 (inline execution); a non-integer
    ``REPRO_WORKERS`` raises :class:`~repro.errors.ConfigurationError`.
    """
    env = os.environ.get("REPRO_WORKERS")
    if env is not None:
        try:
            requested = int(env)
        except ValueError:
            raise ConfigurationError(
                f"REPRO_WORKERS must be an integer worker count, "
                f"got {env!r}"
            ) from None
        return max(1, min(requested, n_tasks))
    return max(1, min(multiprocessing.cpu_count(), n_tasks))


def seed_range(base_seed: int, count: int) -> List[int]:
    """The consecutive seed list ``base_seed .. base_seed+count-1``."""
    if count < 1:
        raise ConfigurationError(f"need at least one seed, got {count}")
    return list(range(base_seed, base_seed + count))


def run_multi_seed_supervised(
    task: Callable[[T], object],
    items: Sequence[T],
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
    labels: Optional[Sequence[object]] = None,
    on_event: Optional[Callable[[SupervisorEvent], None]] = None,
) -> SupervisedRun:
    """Run ``task(item)`` per item under supervision; never raises per-seed.

    Results come back in input order with ``None`` holes where items
    permanently failed (see :class:`~repro.core.supervisor.SupervisedRun`).
    ``labels`` names the items in failure reports (defaults to the items
    themselves — pass the seed list when items are config objects).
    ``task`` must be picklable (a module-level function or a
    ``functools.partial`` of one) when more than one worker is used.
    ``on_event`` observes per-item lifecycle transitions
    (:class:`~repro.core.supervisor.SupervisorEvent`) — the serving
    layer's progress stream is fed from exactly this hook.
    """
    items = list(items)
    if workers is None:
        workers = default_workers(len(items))
    return run_supervised(
        task, items, workers, config=supervisor, labels=labels,
        on_event=on_event,
    )


def run_multi_seed(
    task: Callable[[int], T],
    seeds: Sequence[int],
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> List[T]:
    """Run ``task(seed)`` for every seed; results in seed (input) order.

    The strict variant: if any seed fails permanently (after the
    supervisor's retries), raises
    :class:`~repro.errors.CampaignAbortedError` whose ``partial``
    attribute still carries every completed result.
    """
    run = run_multi_seed_supervised(task, seeds, workers, supervisor)
    if not run.ok:
        raise CampaignAbortedError(
            f"{len(run.failures)} of {len(run.results)} seed(s) failed "
            f"permanently: {run.failed_labels}",
            failures=run.failures,
            partial=run.results,
        )
    return run.results


# ---------------------------------------------------------------------------
# Fig. 1 synchronization campaigns
# ---------------------------------------------------------------------------
def _sync_worker(base: SyncCampaignConfig, seed: int) -> SyncCampaignResult:
    return run_sync_campaign(replace(base, seed=seed))


@dataclass
class SyncSweepResult:
    """Multi-seed synchronization campaign, merged in seed order.

    ``seeds``/``per_seed`` hold the campaigns that completed;
    ``failed_seeds`` the seeds the supervisor gave up on (their samples
    are absent from every pooled statistic) and ``retried_seeds`` those
    that needed more than one attempt but completed.
    """

    seeds: List[int]
    per_seed: List[SyncCampaignResult]
    failed_seeds: List[int] = field(default_factory=list)
    retried_seeds: List[int] = field(default_factory=list)

    @property
    def sync_samples(self) -> List[float]:
        """All samples, concatenated in seed order (deterministic merge)."""
        merged: List[float] = []
        for result in self.per_seed:
            merged.extend(result.sync_samples)
        return merged

    @property
    def mean(self) -> float:
        return float(np.mean(self.sync_samples))

    @property
    def median(self) -> float:
        return float(np.median(self.sync_samples))

    @property
    def sync_departures_per_10min(self) -> float:
        """Mean synchronized-departure rate across seeds."""
        return float(
            np.mean([r.sync_departures_per_10min for r in self.per_seed])
        )

    @property
    def truncated(self) -> bool:
        """True if any seed's campaign was cut short by its event cap."""
        return any(r.truncated for r in self.per_seed)

    @property
    def truncated_seeds(self) -> List[int]:
        """Seeds whose campaigns were cut short (pooled stats are biased)."""
        return [
            seed
            for seed, result in zip(self.seeds, self.per_seed)
            if result.truncated
        ]

    def density(self, **kwargs) -> DensityEstimate:
        """KDE over the pooled samples (a seed-averaged Fig. 1 curve)."""
        return kde(self.sync_samples, **kwargs)


def run_sync_campaign_sweep(
    base: Optional[SyncCampaignConfig] = None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> SyncSweepResult:
    """Run the Fig. 1 campaign once per seed and merge deterministically.

    Partial mode: seeds that fail permanently are dropped from the merge
    and reported on ``failed_seeds`` instead of aborting the sweep.
    """
    base = base if base is not None else SyncCampaignConfig()
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 4)
    run = run_multi_seed_supervised(
        partial(_sync_worker, base), seeds, workers, supervisor
    )
    kept = [
        (seed, result)
        for seed, result in zip(seeds, run.results)
        if result is not None
    ]
    return SyncSweepResult(
        seeds=[seed for seed, _ in kept],
        per_seed=[result for _, result in kept],
        failed_seeds=list(run.failed_labels),
        retried_seeds=list(run.retried_labels),
    )


def run_2019_vs_2020_sweep(
    base: Optional[SyncCampaignConfig] = None,
    seeds: Optional[Sequence[int]] = None,
    workers: Optional[int] = None,
    supervisor: Optional[SupervisorConfig] = None,
    churn_2019: float = 5.0,
    churn_2020: float = 14.0,
) -> Dict[str, SyncSweepResult]:
    """The Fig. 1 contrast with N seeds per churn level.

    All ``2 x len(seeds)`` runs share one supervised fan-out; results are
    regrouped by label, each group ordered by seed, with per-label
    ``failed_seeds`` / ``retried_seeds``.
    """
    base = base if base is not None else SyncCampaignConfig()
    seeds = list(seeds) if seeds is not None else seed_range(base.seed, 4)
    labels = (("2019", churn_2019), ("2020", churn_2020))
    tasks: List[SyncCampaignConfig] = []
    for _, churn in labels:
        for seed in seeds:
            tasks.append(replace(base, churn_per_10min=churn, seed=seed))
    run = run_multi_seed_supervised(
        _run_sync_config,
        tasks,
        workers,
        supervisor,
        labels=[config.seed for config in tasks],
    )
    out: Dict[str, SyncSweepResult] = {}
    for index, (label, _) in enumerate(labels):
        low, high = index * len(seeds), (index + 1) * len(seeds)
        chunk = run.results[low:high]
        kept = [
            (seed, result)
            for seed, result in zip(seeds, chunk)
            if result is not None
        ]
        out[label] = SyncSweepResult(
            seeds=[seed for seed, _ in kept],
            per_seed=[result for _, result in kept],
            failed_seeds=[
                seed
                for seed, result in zip(seeds, chunk)
                if result is None
            ],
            retried_seeds=[
                seeds[position - low]
                for position in run.retried_indexes
                if low <= position < high
            ],
        )
    return out


def _run_sync_config(config: SyncCampaignConfig) -> SyncCampaignResult:
    return run_sync_campaign(config)


# ---------------------------------------------------------------------------
# Fig. 2 crawl campaigns
# ---------------------------------------------------------------------------
def _campaign_worker(
    base: LongitudinalConfig,
    config: Optional[CampaignConfig],
    snapshots: Optional[int],
    store_root: Optional[str],
    seed: int,
) -> CampaignResult:
    seeded = replace(base, seed=seed)
    if store_root is not None:
        # Route through the run store: each seed's campaign becomes a
        # durable, individually resumable run, and re-sweeping the same
        # configs is a per-seed cache hit.  Imported lazily so plain
        # sweeps never load the store package in workers.
        from ..store.campaign import run_stored_campaign

        stored = run_stored_campaign(
            store_root, seeded, campaign_config=config, snapshots=snapshots
        )
        return stored.result
    scenario = LongitudinalScenario(seeded)
    runner = CampaignRunner(scenario, config)
    return runner.run(snapshots=snapshots)


@dataclass
class CampaignSweepResult:
    """Multi-seed crawl campaign, merged in seed order.

    Partial-result reporting mirrors :class:`SyncSweepResult`: seeds the
    supervisor gave up on land in ``failed_seeds``, seeds that needed a
    retry but completed in ``retried_seeds``.
    """

    seeds: List[int]
    per_seed: List[CampaignResult]
    failed_seeds: List[int] = field(default_factory=list)
    retried_seeds: List[int] = field(default_factory=list)

    def mean_over_seeds(self, stat: Callable[[CampaignResult], float]) -> float:
        """Average a per-campaign statistic across seeds."""
        return float(np.mean([stat(result) for result in self.per_seed]))

    def pooled_cumulative_unreachable(self) -> int:
        """Unique unreachable addresses across every seed's campaign."""
        seen = set()
        for result in self.per_seed:
            seen |= result.cumulative_unreachable
        return len(seen)

    @property
    def truncated(self) -> bool:
        """True if any seed's campaign contains a cut-short snapshot."""
        return any(result.truncated for result in self.per_seed)

    @property
    def truncated_seeds(self) -> List[int]:
        """Seeds with at least one truncated snapshot (lower bounds only)."""
        return [
            seed
            for seed, result in zip(self.seeds, self.per_seed)
            if result.truncated
        ]


def run_campaign_sweep(
    base: LongitudinalConfig,
    seeds: Sequence[int],
    config: Optional[CampaignConfig] = None,
    snapshots: Optional[int] = None,
    workers: Optional[int] = None,
    store: Optional[str] = None,
    supervisor: Optional[SupervisorConfig] = None,
) -> CampaignSweepResult:
    """Run the Fig. 2 crawl campaign once per seed and merge.

    ``store`` names a run-store root; when given, every per-seed campaign
    is checkpointed there and completed seeds are served from the cache
    on re-runs (the store root travels to workers as a plain path so the
    task stays picklable).  The store also makes supervision cheap: a
    crashed worker's retry resumes from the seed's last checkpoint — and
    a seed that already finished is a pure cache hit — so completed work
    is never recomputed.
    """
    seeds = list(seeds)
    task = partial(
        _campaign_worker,
        base,
        config,
        snapshots,
        os.fspath(store) if store is not None else None,
    )
    run = run_multi_seed_supervised(task, seeds, workers, supervisor)
    kept = [
        (seed, result)
        for seed, result in zip(seeds, run.results)
        if result is not None
    ]
    return CampaignSweepResult(
        seeds=[seed for seed, _ in kept],
        per_seed=[result for _, result in kept],
        failed_seeds=list(run.failed_labels),
        retried_seeds=list(run.retried_labels),
    )
