"""Algorithm 2: detecting responsive unreachable nodes with VER probes.

The paper crafted raw Bitcoin VER packets in Scapy and fired 250 in
parallel at every harvested unreachable address; hosts that answered with
FIN are *responsive* — unreachable, but verifiably running Bitcoin.  The
paper validated the heuristic against three in-house unreachable nodes
and notes it yields a lower bound (firewalled nodes stay silent).

Here the probe uses the transport's raw-probe facility; the NAT model
answers per the ground-truth class, including the firewalled silent case.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, Iterable, List, Optional, Set

from ..errors import ScenarioError
from ..simnet.addresses import NetAddr
from ..simnet.simulator import Simulator
from ..simnet.transport import ProbeResult


@dataclass
class ProbeConfig:
    """Prober parameters (the paper used 250 parallel requests)."""

    concurrency: int = 250
    timeout: float = 5.0

    def validate(self) -> None:
        if self.concurrency < 1:
            raise ScenarioError("concurrency must be >= 1")
        if self.timeout <= 0:
            raise ScenarioError("timeout must be positive")


@dataclass
class ProbeCampaignResult:
    """Classification of every probed address."""

    responsive: Set[NetAddr] = field(default_factory=set)
    silent: Set[NetAddr] = field(default_factory=set)
    rst: Set[NetAddr] = field(default_factory=set)
    #: Addresses that answered like full Bitcoin listeners (reachable
    #: nodes that slipped through the filtering).
    bitcoin: Set[NetAddr] = field(default_factory=set)

    @property
    def probed(self) -> int:
        return (
            len(self.responsive)
            + len(self.silent)
            + len(self.rst)
            + len(self.bitcoin)
        )

    @property
    def responsive_share(self) -> float:
        return len(self.responsive) / self.probed if self.probed else 0.0


class VerProber:
    """Fires VER probes at a target list with bounded concurrency."""

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        config: Optional[ProbeConfig] = None,
    ) -> None:
        self.sim = sim
        self.addr = addr
        self.config = config if config is not None else ProbeConfig()
        self.config.validate()
        self._pending: List[NetAddr] = []
        self._in_flight = 0
        self._result: Optional[ProbeCampaignResult] = None
        self._buckets: Dict[ProbeResult, set] = {}
        self._on_done: Optional[Callable[[ProbeCampaignResult], None]] = None
        self.done = False
        #: True when the last :meth:`run_to_completion` hit its deadline
        #: with probes still outstanding (the classification is partial).
        self.aborted = False

    def probe_all(
        self,
        targets: Iterable[NetAddr],
        on_done: Optional[Callable[[ProbeCampaignResult], None]] = None,
    ) -> ProbeCampaignResult:
        """Start the campaign; the result fills in as the sim runs."""
        if self._result is not None and not self.done:
            raise ScenarioError("a probe campaign is already in progress")
        self.done = False
        self.aborted = False
        self._result = ProbeCampaignResult()
        # Outcome -> result bucket, built once per campaign; _probed runs
        # once per probe and must not rebuild this mapping every time.
        self._buckets = {
            ProbeResult.FIN: self._result.responsive,
            ProbeResult.SILENT: self._result.silent,
            ProbeResult.RST: self._result.rst,
            ProbeResult.BITCOIN: self._result.bitcoin,
        }
        self._on_done = on_done
        self._pending = list(targets)
        self._in_flight = 0
        self._fill()
        self._check_done()
        return self._result

    def run_to_completion(
        self, targets: Iterable[NetAddr], max_seconds: float = 7200.0
    ) -> ProbeCampaignResult:
        """Probe ``targets``, driving the simulator until finished."""
        result = self.probe_all(targets)
        deadline = self.sim.now + max_seconds
        while not self.done and self.sim.now < deadline:
            if not self.sim.step():
                break
        self.aborted = not self.done
        self.done = True
        return result

    def _fill(self) -> None:
        while self._pending and self._in_flight < self.config.concurrency:
            target = self._pending.pop()
            self._in_flight += 1
            self.sim.network.probe(
                self.addr,
                target,
                # partial, not a lambda: pending probes must survive
                # checkpoint pickling (Simulator.snapshot()).
                on_result=partial(self._probed, target),
                timeout=self.config.timeout,
            )

    def _probed(self, target: NetAddr, outcome: ProbeResult) -> None:
        self._buckets[outcome].add(target)
        self._in_flight -= 1
        self._fill()
        self._check_done()

    def _check_done(self) -> None:
        if not self.done and self._in_flight == 0 and not self._pending:
            self.done = True
            if self._on_done is not None:
                self._on_done(self._result)
