"""Plain-text report rendering for experiment harnesses.

Benchmarks print their results as fixed-width tables so the EXPERIMENTS.md
paper-vs-measured records can be pasted straight from the bench output.
No third-party table library is used.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple, Union

Cell = Union[str, int, float]


def _render_cell(value: Cell) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.3g}" if abs(value) < 10 else f"{value:.1f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Cell]],
    title: Optional[str] = None,
) -> str:
    """A fixed-width table with a header rule."""
    rendered = [[_render_cell(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def line(cells: Sequence[str]) -> str:
        return "  ".join(
            cell.rjust(width) for cell, width in zip(cells, widths)
        )

    out: List[str] = []
    if title:
        out.append(title)
    out.append(line(list(headers)))
    out.append(line(["-" * width for width in widths]))
    out.extend(line(row) for row in rendered)
    return "\n".join(out)


def comparison_table(
    rows: Sequence[Tuple[str, Cell, Cell]], title: Optional[str] = None
) -> str:
    """A paper-vs-measured table with a ratio column.

    Each row is ``(metric, paper_value, measured_value)``; the ratio is
    measured/paper where both are numeric, which is the "shape holds"
    check EXPERIMENTS.md records.
    """
    table_rows: List[Sequence[Cell]] = []
    for metric, paper, measured in rows:
        if (
            isinstance(paper, (int, float))
            and isinstance(measured, (int, float))
            and paper
        ):
            ratio: Cell = measured / paper
        else:
            ratio = "-"
        table_rows.append((metric, paper, measured, ratio))
    return format_table(
        ("metric", "paper", "measured", "ratio"), table_rows, title=title
    )


def series_preview(values: Sequence[float], width: int = 60) -> str:
    """A coarse unicode sparkline of a series (for bench logs)."""
    if not values:
        return "(empty)"
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = max(1, len(values) // width)
    sampled = list(values)[::step][:width]
    return "".join(
        blocks[min(len(blocks) - 1, int((v - lo) / span * (len(blocks) - 1)))]
        for v in sampled
    )
