"""ADDR-payload composition analysis (§IV-A.2 / §IV-B).

The paper's headline addressing finding: an average ADDR message carries
14.9% reachable and 85.1% unreachable addresses — i.e. 85.1% of address
gossip provides no connectivity benefit and inflates the outgoing-
connection failure rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, Set

from ..simnet.addresses import NetAddr
from .getaddr import CrawlResult, PeerHarvest


@dataclass(frozen=True)
class AddrComposition:
    """Reachable/unreachable split of harvested address gossip."""

    total_unique: int
    reachable_unique: int
    unreachable_unique: int
    #: Per-peer mean reachable share (the paper's per-message average).
    mean_reachable_share: float

    @property
    def reachable_share(self) -> float:
        return self.reachable_unique / self.total_unique if self.total_unique else 0.0

    @property
    def unreachable_share(self) -> float:
        return 1.0 - self.reachable_share if self.total_unique else 0.0


def classify_harvest(
    harvest: PeerHarvest, reachable_known: Set[NetAddr]
) -> Dict[str, int]:
    """Counts of reachable vs unreachable addresses one peer sent."""
    # C-level set intersection; harvests hold thousands of addresses and
    # every crawl snapshot classifies every harvest.
    reachable = len(harvest.addresses & reachable_known)
    return {
        "reachable": reachable,
        "unreachable": len(harvest.addresses) - reachable,
    }


def composition(
    result: CrawlResult, reachable_known: Set[NetAddr]
) -> AddrComposition:
    """Aggregate ADDR composition over a crawl pass.

    ``reachable_known`` is the crawler's reachable ground view — the
    union of the Bitnodes and DNS source lists, as in the paper.
    """
    all_addrs = result.all_addresses
    reachable_unique = sum(1 for addr in all_addrs if addr in reachable_known)
    per_peer_shares = []
    for harvest in result.harvests.values():
        if not harvest.addresses:
            continue
        counts = classify_harvest(harvest, reachable_known)
        per_peer_shares.append(
            counts["reachable"] / len(harvest.addresses)
        )
    mean_share = (
        sum(per_peer_shares) / len(per_peer_shares) if per_peer_shares else 0.0
    )
    return AddrComposition(
        total_unique=len(all_addrs),
        reachable_unique=reachable_unique,
        unreachable_unique=len(all_addrs) - reachable_unique,
        mean_reachable_share=mean_share,
    )


def table_composition(
    table: Iterable[NetAddr], is_reachable: Callable[[NetAddr], bool]
) -> Dict[str, int]:
    """Reachable/unreachable counts of an addrman table (ablation views)."""
    reachable = 0
    total = 0
    for addr in table:
        total += 1
        if is_reachable(addr):
            reachable += 1
    return {
        "reachable": reachable,
        "unreachable": total - reachable,
        "total": total,
    }
