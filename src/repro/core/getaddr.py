"""Algorithm 1: harvesting addresses over iterative GETADDR requests.

The crawler connects to every target, completes the version handshake,
and sends GETADDR repeatedly.  The paper's stop rule — *"if a new message
contains all IP addresses that were sent in previous ADDR messages, we
stop"* — terminates cleanly against full-table responders but can spin
against samplers, so two rules are offered:

* ``"paper"`` — stop as soon as a response contributes nothing new
  (Algorithm 1 verbatim);
* ``"adaptive"`` — keep requesting while at least ``adaptive_threshold``
  of each response is new, bounded by ``max_rounds``.  This is what a
  practical crawler (and, effectively, the authors' reconnect-and-repeat
  campaign) converges to against Bitcoin Core's 23%-sample responses.

The crawler runs *inside* the simulation as a transport handler, with a
bounded number of concurrent connections, exactly like the measurement
node in Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Callable, Dict, List, Optional, Set

from ..errors import ScenarioError
from ..simnet.addresses import NetAddr
from ..simnet.simulator import Simulator
from ..simnet.transport import Socket
from ..bitcoin.messages import Addr, GetAddr, Message, Version


@dataclass
class GetAddrConfig:
    """Crawler parameters."""

    #: Concurrent connections (the paper's prober used 250 parallel).
    concurrency: int = 64
    stop_rule: str = "adaptive"  # "adaptive" or "paper"
    #: Minimum new-address fraction to keep requesting (adaptive rule).
    adaptive_threshold: float = 0.5
    #: Hard cap on GETADDR rounds per peer.
    max_rounds: int = 200
    #: Per-peer inactivity timeout (handshake or response stall).
    peer_timeout: float = 30.0
    connect_timeout: float = 5.0
    #: Reconnect to each responsive target this many extra times, asking
    #: again.  Bitcoin Core v0.20.1 ignores repeated GETADDR on one
    #: connection; the paper's crawler worked around it by reconnecting,
    #: pulling a fresh 23% sample per session.  0 = single session.
    reconnect_rounds: int = 0

    def validate(self) -> None:
        if self.stop_rule not in ("adaptive", "paper"):
            raise ScenarioError(f"unknown stop rule {self.stop_rule!r}")
        if self.concurrency < 1 or self.max_rounds < 1:
            raise ScenarioError("concurrency and max_rounds must be >= 1")
        if self.reconnect_rounds < 0:
            raise ScenarioError("reconnect_rounds must be >= 0")


@dataclass
class PeerHarvest:
    """Everything collected from one target (input to §IV-B analyses)."""

    target: NetAddr
    connected: bool = False
    #: Completed crawl sessions against this target (reconnects).
    sessions: int = 0
    rounds: int = 0
    addr_messages: int = 0
    total_records: int = 0
    #: Unique addresses this peer sent (excluding none — self included).
    addresses: Set[NetAddr] = field(default_factory=set)
    #: Whether the peer ever advertised its own address (honest behaviour).
    sent_own_addr: bool = False


@dataclass
class CrawlResult:
    """Aggregate of one crawl pass over a target list."""

    harvests: Dict[NetAddr, PeerHarvest] = field(default_factory=dict)

    @property
    def connected_targets(self) -> List[NetAddr]:
        return [h.target for h in self.harvests.values() if h.connected]

    @property
    def all_addresses(self) -> Set[NetAddr]:
        out: Set[NetAddr] = set()
        for harvest in self.harvests.values():
            out |= harvest.addresses
        return out

    def unreachable_addresses(self, reachable_known: Set[NetAddr]) -> Set[NetAddr]:
        """Harvested addresses that no source listed as reachable.

        Mirrors the paper's filtering step: "our node filtered reachable
        addresses from Bitnodes and the DNS server database to obtain the
        unreachable addresses".
        """
        return self.all_addresses - reachable_known


class _PeerSession:
    """Per-connection crawl state machine."""

    __slots__ = ("harvest", "socket", "handshaken", "last_response", "timeout_event")

    def __init__(self, harvest: PeerHarvest) -> None:
        self.harvest = harvest
        self.socket: Optional[Socket] = None
        self.handshaken = False
        self.last_response: Set[NetAddr] = set()
        self.timeout_event = None


class GetAddrCrawler:
    """The network crawler node (Fig. 2 right box, Algorithm 1)."""

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        config: Optional[GetAddrConfig] = None,
    ) -> None:
        self.sim = sim
        self.addr = addr
        self.config = config if config is not None else GetAddrConfig()
        self.config.validate()
        self._sessions: Dict[Socket, _PeerSession] = {}
        self._pending: List[NetAddr] = []
        self._in_flight = 0
        self._result: Optional[CrawlResult] = None
        self._on_done: Optional[Callable[[CrawlResult], None]] = None
        self.done = False
        #: True when the last :meth:`run_to_completion` hit its deadline
        #: and aborted outstanding sessions (the crawl is incomplete).
        self.aborted = False

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def crawl(
        self,
        targets: List[NetAddr],
        on_done: Optional[Callable[[CrawlResult], None]] = None,
    ) -> CrawlResult:
        """Start crawling ``targets``; returns the (live) result object.

        The result fills in as the simulation runs; use
        :meth:`run_to_completion` to drive the simulator until done.
        """
        if self._result is not None and not self.done:
            raise ScenarioError("a crawl is already in progress")
        self.done = False
        self.aborted = False
        self._result = CrawlResult()
        self._on_done = on_done
        self._pending = list(targets)
        self._in_flight = 0
        self._fill_slots()
        self._check_done()
        return self._result

    def run_to_completion(
        self, targets: List[NetAddr], max_seconds: float = 7200.0
    ) -> CrawlResult:
        """Crawl ``targets``, driving the simulator until the crawl ends."""
        result = self.crawl(targets)
        deadline = self.sim.now + max_seconds
        while not self.done and self.sim.now < deadline:
            if not self.sim.step():
                break
        if not self.done:
            self.aborted = True
            self._abort_all()
        return result

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _fill_slots(self) -> None:
        while self._pending and self._in_flight < self.config.concurrency:
            target = self._pending.pop()
            self._in_flight += 1
            harvest = self._result.harvests.get(target)
            if harvest is None:
                harvest = PeerHarvest(target=target)
                self._result.harvests[target] = harvest
            self.sim.network.connect(
                self.addr,
                target,
                handler=self,
                # partial, not a lambda: pending connects must survive
                # checkpoint pickling (Simulator.snapshot()).
                on_result=partial(self._connected, harvest),
                timeout=self.config.connect_timeout,
            )

    def _connected(self, harvest: PeerHarvest, socket: Optional[Socket]) -> None:
        if socket is None:
            self._finish_target()
            return
        harvest.connected = True
        harvest.sessions += 1
        session = _PeerSession(harvest)
        session.socket = socket
        socket.handler = self
        self._sessions[socket] = session
        self._arm_timeout(session)
        socket.send(
            Version(sender=self.addr, receiver=socket.remote_addr, start_height=0)
        )

    def _finish_target(self) -> None:
        self._in_flight -= 1
        self._fill_slots()
        self._check_done()

    def _check_done(self) -> None:
        if not self.done and self._in_flight == 0 and not self._pending:
            self.done = True
            if self._on_done is not None:
                self._on_done(self._result)

    def _abort_all(self) -> None:
        for socket in list(self._sessions):
            self._close_session(socket)
        self._pending.clear()
        self.done = True

    # ------------------------------------------------------------------
    # Timeouts
    # ------------------------------------------------------------------
    def _arm_timeout(self, session: _PeerSession) -> None:
        if session.timeout_event is not None:
            session.timeout_event.cancel()
        session.timeout_event = self.sim.schedule(
            self.config.peer_timeout, self._timed_out, session
        )

    def _timed_out(self, session: _PeerSession) -> None:
        if session.socket is not None and session.socket in self._sessions:
            self._close_session(session.socket)

    # ------------------------------------------------------------------
    # Transport callbacks
    # ------------------------------------------------------------------
    def on_message(self, socket: Socket, message: Message) -> None:
        session = self._sessions.get(socket)
        if session is None:
            return
        if message.command == "verack" and not session.handshaken:
            session.handshaken = True
            self._arm_timeout(session)
            self._send_getaddr(session)
        elif message.command == "addr":
            self._handle_addr(session, message)
        # version / sendcmpct / other chatter is ignored by the crawler.

    def on_disconnect(self, socket: Socket) -> None:
        session = self._sessions.pop(socket, None)
        if session is None:
            return
        if session.timeout_event is not None:
            session.timeout_event.cancel()
        self._finish_target()

    # ------------------------------------------------------------------
    # Algorithm 1 proper
    # ------------------------------------------------------------------
    def _send_getaddr(self, session: _PeerSession) -> None:
        session.harvest.rounds += 1
        session.socket.send(GetAddr())

    def _handle_addr(self, session: _PeerSession, message: Addr) -> None:
        harvest = session.harvest
        harvest.addr_messages += 1
        harvest.total_records += len(message.addresses)
        # Responses carry up to 1000 records and this runs once per ADDR
        # reply across a 60-day crawl, so the record scan stays in C: a
        # set comprehension plus one membership probe, not a Python loop
        # with a per-record equality test.
        response: Set[NetAddr] = {record.addr for record in message.addresses}
        if harvest.target in response:
            harvest.sent_own_addr = True
        new_addrs = response - harvest.addresses
        harvest.addresses |= response
        self._arm_timeout(session)

        if len(message.addresses) <= 1:
            # A bare self-advertisement, not a GETADDR response; wait for
            # the real reply without consuming a round.
            return
        if self._should_stop(harvest, response, new_addrs):
            self._close_session(session.socket)
        else:
            self._send_getaddr(session)

    def _should_stop(
        self,
        harvest: PeerHarvest,
        response: Set[NetAddr],
        new_addrs: Set[NetAddr],
    ) -> bool:
        if harvest.rounds >= self.config.max_rounds:
            return True
        if self.config.stop_rule == "paper":
            # Stop once a response contains no address we have not seen.
            return not new_addrs
        fraction_new = len(new_addrs) / len(response) if response else 0.0
        return fraction_new < self.config.adaptive_threshold

    def _close_session(self, socket: Socket) -> None:
        session = self._sessions.pop(socket, None)
        socket.close()
        if session is None:
            return
        if session.timeout_event is not None:
            session.timeout_event.cancel()
        # Reconnect-and-repeat (the paper's workaround for Core ignoring
        # repeated GETADDR): schedule another session against targets
        # that completed a handshake, up to the configured budget.
        harvest = session.harvest
        if (
            session.handshaken
            and harvest.sessions <= self.config.reconnect_rounds
        ):
            self._pending.append(harvest.target)
        self._finish_target()
