"""Terminal renderings of the paper's figures.

Pure-text plots (no plotting dependency): density curves for Fig. 1,
dual-series lines for Figs. 4/5, histograms for Figs. 7/8/10/11, and a
block-character presence matrix for Fig. 12.  Used by the CLI and the
examples; exact-pixel fidelity is a job for the CSV export + a real
plotting tool.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

import numpy as np

from ..analysis.kde import DensityEstimate
from ..errors import AnalysisError

_BLOCKS = " ▁▂▃▄▅▆▇█"


def _scale_to_blocks(values: Sequence[float], peak: Optional[float] = None) -> str:
    array = np.asarray(values, dtype=float)
    top = peak if peak is not None else (array.max() if array.size else 1.0)
    top = top or 1.0
    return "".join(
        _BLOCKS[min(len(_BLOCKS) - 1, round(v / top * (len(_BLOCKS) - 1)))]
        for v in array
    )


def density_curve(
    density: DensityEstimate, width: int = 64, label: str = ""
) -> str:
    """One KDE rendered as a block-character curve (a Fig. 1 line)."""
    resampled = np.interp(
        np.linspace(density.grid[0], density.grid[-1], width),
        density.grid,
        density.density,
    )
    prefix = f"{label:>6} " if label else ""
    return f"{prefix}{_scale_to_blocks(resampled)}"


def density_overlay(
    curves: Dict[str, DensityEstimate], width: int = 64
) -> str:
    """Several KDEs on a shared peak scale (the Fig. 1 overlay)."""
    if not curves:
        raise AnalysisError("no densities given")
    peak = max(float(d.density.max()) for d in curves.values())
    lines = []
    for label, density in curves.items():
        resampled = np.interp(
            np.linspace(density.grid[0], density.grid[-1], width),
            density.grid,
            density.density,
        )
        lines.append(f"{label:>6} {_scale_to_blocks(resampled, peak)}")
    lo = curves[next(iter(curves))].grid[0]
    hi = curves[next(iter(curves))].grid[-1]
    lines.append(f"{'':>6} {str(round(lo)):<{width // 2}}{round(hi):>{width - width // 2}}")
    return "\n".join(lines)


def dual_series(
    primary: Sequence[float],
    secondary: Sequence[float],
    labels: "tuple[str, str]" = ("per-snapshot", "cumulative"),
    width: int = 60,
) -> str:
    """Two series on a shared scale (the Figs. 4/5 black/red pairs)."""
    if not primary or not secondary:
        raise AnalysisError("series must be non-empty")
    peak = max(max(primary), max(secondary)) or 1.0

    def render(series: Sequence[float]) -> str:
        step = max(1, len(series) // width)
        return _scale_to_blocks(list(series)[::step][:width], peak)

    name_width = max(len(labels[0]), len(labels[1]))
    return "\n".join(
        f"{label:>{name_width}} {render(series)}"
        for label, series in zip(labels, (primary, secondary))
    )


def histogram(
    values: Sequence[float],
    bins: int = 12,
    width: int = 40,
    unit: str = "",
) -> str:
    """A horizontal-bar histogram (Figs. 7/10/11 distributions)."""
    if not values:
        raise AnalysisError("no values to histogram")
    counts, edges = np.histogram(np.asarray(values, dtype=float), bins=bins)
    peak = counts.max() or 1
    lines = []
    for index, count in enumerate(counts):
        bar = "█" * int(count / peak * width)
        lines.append(
            f"{edges[index]:>9.2f}-{edges[index + 1]:<9.2f}{unit} "
            f"|{bar:<{width}} {count}"
        )
    return "\n".join(lines)


def presence_matrix(
    matrix: "np.ndarray", max_rows: int = 40, max_cols: int = 80
) -> str:
    """The Fig. 12 binary image, block characters for presence.

    Rows (addresses) are downsampled by striding; columns (snapshots)
    are grouped and rendered by their presence density.
    """
    if matrix.size == 0:
        raise AnalysisError("empty matrix")
    rows, cols = matrix.shape
    row_step = max(1, -(-rows // max_rows))  # ceil division
    col_step = max(1, -(-cols // max_cols))
    lines = []
    for row_start in range(0, rows, row_step):
        chunk = matrix[row_start: row_start + row_step]
        line = []
        for col_start in range(0, cols, col_step):
            cell = chunk[:, col_start: col_start + col_step]
            density = float(cell.mean()) if cell.size else 0.0
            line.append(
                _BLOCKS[min(len(_BLOCKS) - 1, int(density * (len(_BLOCKS) - 1)))]
            )
        lines.append("".join(line))
    return "\n".join(lines)


def flood_bars(volumes: Sequence[int], width: int = 50, top: int = 20) -> str:
    """Fig. 8: per-flooder volumes, largest first."""
    if not volumes:
        raise AnalysisError("no flooder volumes")
    ordered = sorted(volumes, reverse=True)[:top]
    peak = ordered[0] or 1
    return "\n".join(
        f"#{rank:<3} |{'█' * int(volume / peak * width):<{width}} {volume:,}"
        for rank, volume in enumerate(ordered, start=1)
    )
