"""Supervised process-per-task execution.

``Pool.map`` has a brutal failure mode for multi-hour campaigns: one
OOM-killed or wedged worker poisons the whole pool and every completed
seed's result is lost.  The :class:`Supervisor` replaces it with one
child process per task under an explicit watchdog:

* **crash detection** — a worker that dies without reporting (segfault,
  OOM kill, ``os._exit``) is noticed the moment its pipe closes, and the
  exit code is recorded;
* **hang detection** — an optional per-task timeout; a worker that blows
  past it is terminated (then killed) and treated like a crash;
* **bounded retry with backoff** — crashed and hung tasks are retried up
  to ``retries`` more times, each attempt delayed a little longer.
  Ordinary task *exceptions* are **not** retried: every task here is a
  deterministic function of its input, so a clean exception would simply
  recur (and routing it through the retry loop would triple the cost of
  a reproducible bug);
* **graceful degradation** — with one worker, one task, or a platform
  where processes cannot be spawned, everything runs inline in this
  process (no isolation, but no machinery to fail either);
* **partial results** — the run always completes: results arrive in
  input order with ``None`` holes where tasks permanently failed, and
  the failures themselves are structured
  :class:`~repro.errors.SeedTaskError` records.

Determinism: tasks are pure functions of their items, and results are
assembled by input index, so the merged output is bit-identical to a
sequential run no matter how attempts interleave — same contract the old
``Pool.map`` path had, now crash-proof.

This module is on the repro-lint wall-clock allowlist: the watchdog
necessarily reads host time (``time.monotonic``), but only ever for
*timeouts* of host processes — nothing here touches simulated time.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.connection
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..errors import SeedTaskError

#: Hard cap on how long a terminated worker may take to die before the
#: supervisor escalates from SIGTERM to SIGKILL.
_TERM_GRACE = 5.0

#: Default longest wait between supervision passes (seconds); deadline
#: and backoff edges shorten individual waits below this.
_POLL_INTERVAL = 0.25

#: Progress event kinds, in lifecycle order.
EVENT_SCHEDULED = "scheduled"
EVENT_STARTED = "started"
EVENT_RETRYING = "retrying"
EVENT_COMPLETED = "completed"
EVENT_FAILED = "failed"

#: Kinds after which a task emits nothing further.
TERMINAL_EVENTS = frozenset({EVENT_COMPLETED, EVENT_FAILED})

#: Longest ``detail`` string an event carries (tracebacks are truncated).
_DETAIL_LIMIT = 500


@dataclass(frozen=True)
class SupervisorEvent:
    """One step in a supervised task's lifecycle.

    Per input item the stream follows a fixed grammar::

        scheduled (started retrying?)* started? (completed | failed)

    concretely: exactly one ``scheduled`` first, one ``started`` per
    attempt, a ``retrying`` after every attempt that crashed or hung but
    will be retried, and exactly one terminal ``completed`` / ``failed``
    last — nothing after the terminal event.  Consumers (the serving
    layer's progress stream, progress reporting) rely on that grammar;
    it is pinned by test.
    """

    kind: str
    #: Input index of the item this event describes.
    index: int
    #: The item's label (the seed, for campaign sweeps).
    label: Any
    #: 1-based attempt number (0 on ``scheduled``, which precedes any).
    attempt: int
    #: Cause text for ``retrying``/``failed`` (truncated), else "".
    detail: str = ""

    @property
    def terminal(self) -> bool:
        return self.kind in TERMINAL_EVENTS

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able view (labels must already be JSON-able)."""
        return {
            "kind": self.kind,
            "index": self.index,
            "label": self.label,
            "attempt": self.attempt,
            "detail": self.detail,
        }


@dataclass
class SupervisorConfig:
    """Tuning knobs for supervised execution."""

    #: Per-attempt wall-clock timeout in seconds; ``None`` disables the
    #: watchdog (a hung worker then hangs the campaign, as Pool.map did).
    timeout: Optional[float] = None
    #: Extra attempts after a crash or hang (0 = fail on first crash).
    retries: int = 2
    #: Delay before the first retry, in seconds.
    backoff: float = 0.5
    #: Multiplier applied to the backoff per further retry.
    backoff_factor: float = 2.0

    def validate(self) -> None:
        from ..errors import ConfigurationError

        if self.timeout is not None and self.timeout <= 0:
            raise ConfigurationError(
                f"supervisor timeout must be positive (or None), got {self.timeout}"
            )
        if self.retries < 0:
            raise ConfigurationError(
                f"supervisor retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0:
            raise ConfigurationError(
                f"supervisor backoff must be >= 0, got {self.backoff}"
            )
        if self.backoff_factor < 1.0:
            raise ConfigurationError(
                f"supervisor backoff_factor must be >= 1, got {self.backoff_factor}"
            )


@dataclass
class SupervisedRun:
    """Outcome of a supervised fan-out, in input order throughout."""

    #: One slot per input item; ``None`` where the task permanently failed.
    results: List[Optional[Any]]
    #: Permanent failures, in input order.
    failures: List[SeedTaskError] = field(default_factory=list)
    #: Input indexes of the permanent failures (parallel to ``failures``).
    failed_indexes: List[int] = field(default_factory=list)
    #: Input indexes that needed more than one attempt but succeeded.
    retried_indexes: List[int] = field(default_factory=list)
    #: The per-item labels (seeds, usually) the run was invoked with.
    labels: List[Any] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    @property
    def failed_labels(self) -> List[Any]:
        return [self.labels[index] for index in self.failed_indexes]

    @property
    def retried_labels(self) -> List[Any]:
        return [self.labels[index] for index in self.retried_indexes]

    def completed(self) -> List[Any]:
        """The successful results only, still in input order."""
        return [result for result in self.results if result is not None]


def _child_entry(conn: Any, task: Callable[[Any], Any], item: Any) -> None:
    """Worker body: run the task, report exactly one message, exit."""
    try:
        result = task(item)
    except BaseException as exc:  # noqa: BLE001 - report, don't mask
        payload = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
        try:
            conn.send(("error", payload))
        finally:
            conn.close()
        return
    try:
        conn.send(("ok", result))
    except Exception as exc:  # unpicklable result is a task bug
        conn.send(("error", f"result not picklable: {type(exc).__name__}: {exc}"))
    finally:
        conn.close()


class _Attempt:
    """One queued or running attempt at one input item."""

    __slots__ = ("index", "attempt", "not_before", "process", "conn", "deadline")

    def __init__(self, index: int, attempt: int, not_before: float) -> None:
        self.index = index
        self.attempt = attempt  # 1-based
        self.not_before = not_before
        self.process: Optional[multiprocessing.Process] = None
        self.conn: Any = None
        self.deadline: Optional[float] = None


class Supervisor:
    """Run ``task(item)`` per item under crash/hang supervision."""

    def __init__(
        self,
        task: Callable[[Any], Any],
        items: Sequence[Any],
        workers: int,
        config: Optional[SupervisorConfig] = None,
        labels: Optional[Sequence[Any]] = None,
        on_event: Optional[Callable[[SupervisorEvent], None]] = None,
    ) -> None:
        self.task = task
        self.items = list(items)
        self.workers = max(1, workers)
        self.config = config if config is not None else SupervisorConfig()
        self.config.validate()
        self.on_event = on_event
        self.labels = list(labels) if labels is not None else list(self.items)
        if len(self.labels) != len(self.items):
            from ..errors import ConfigurationError

            raise ConfigurationError(
                f"got {len(self.labels)} labels for {len(self.items)} items"
            )
        self._results: List[Optional[Any]] = [None] * len(self.items)
        self._failures: Dict[int, SeedTaskError] = {}
        self._attempts_used: List[int] = [0] * len(self.items)
        self._pending: List[_Attempt] = []
        self._running: List[_Attempt] = []
        #: Set when process spawning failed once; all further attempts run
        #: inline rather than banging on a broken platform.
        self._degraded = False

    # ------------------------------------------------------------------
    # Public entry points
    # ------------------------------------------------------------------
    def _emit(self, kind: str, index: int, attempt: int, detail: str = "") -> None:
        if self.on_event is None:
            return
        if len(detail) > _DETAIL_LIMIT:
            detail = detail[:_DETAIL_LIMIT] + "..."
        self.on_event(
            SupervisorEvent(
                kind=kind,
                index=index,
                label=self.labels[index],
                attempt=attempt,
                detail=detail,
            )
        )

    def run(self) -> SupervisedRun:
        for index in range(len(self.items)):
            self._emit(EVENT_SCHEDULED, index, 0)
        if self.workers <= 1 or len(self.items) <= 1:
            self._run_all_inline()
        else:
            self._run_supervised()
        failed_indexes = sorted(self._failures)
        retried = [
            index
            for index, used in enumerate(self._attempts_used)
            if used > 1 and index not in self._failures
        ]
        return SupervisedRun(
            results=self._results,
            failures=[self._failures[index] for index in failed_indexes],
            failed_indexes=failed_indexes,
            retried_indexes=retried,
            labels=self.labels,
        )

    # ------------------------------------------------------------------
    # Inline (degraded) execution
    # ------------------------------------------------------------------
    def _run_one_inline(self, index: int) -> None:
        self._attempts_used[index] += 1
        attempt = self._attempts_used[index]
        self._emit(EVENT_STARTED, index, attempt)
        try:
            self._results[index] = self.task(self.items[index])
        except Exception as exc:  # noqa: BLE001 - converted to a record
            cause = f"{type(exc).__name__}: {exc}"
            self._failures[index] = SeedTaskError(
                self.labels[index], attempt, cause
            )
            self._emit(EVENT_FAILED, index, attempt, cause)
            return
        self._emit(EVENT_COMPLETED, index, attempt)

    def _run_all_inline(self) -> None:
        for index in range(len(self.items)):
            self._run_one_inline(index)

    # ------------------------------------------------------------------
    # Supervised execution
    # ------------------------------------------------------------------
    def _run_supervised(self) -> None:
        for index in range(len(self.items)):
            self._pending.append(_Attempt(index, 1, 0.0))
        while self._pending or self._running:
            now = time.monotonic()
            self._launch_ready(now)
            timeout = self._wait_timeout(now)
            ready: List[Any] = []
            if self._running:
                ready = multiprocessing.connection.wait(
                    [attempt.conn for attempt in self._running], timeout
                )
            elif self._pending:
                time.sleep(timeout)
            for conn in ready:
                self._reap(self._attempt_for(conn))
            self._enforce_deadlines(time.monotonic())

    def _attempt_for(self, conn: Any) -> _Attempt:
        for attempt in self._running:
            if attempt.conn is conn:
                return attempt
        raise RuntimeError("connection is not owned by a running attempt")

    def _launch_ready(self, now: float) -> None:
        while self._pending and len(self._running) < self.workers:
            candidate: Optional[_Attempt] = None
            for attempt in self._pending:
                if attempt.not_before <= now:
                    candidate = attempt
                    break
            if candidate is None:
                return
            self._pending.remove(candidate)
            self._launch(candidate, now)

    def _launch(self, attempt: _Attempt, now: float) -> None:
        if self._degraded:
            self._run_one_inline(attempt.index)
            return
        recv_conn, send_conn = multiprocessing.Pipe(duplex=False)
        process = multiprocessing.Process(
            target=_child_entry,
            args=(send_conn, self.task, self.items[attempt.index]),
            daemon=True,
        )
        try:
            process.start()
        except OSError:
            # Platform cannot spawn (fd/process limits): degrade for the
            # rest of the run rather than failing the campaign.
            recv_conn.close()
            send_conn.close()
            self._degraded = True
            self._run_one_inline(attempt.index)
            return
        send_conn.close()  # child's end; parent keeps only the read side
        self._attempts_used[attempt.index] += 1
        attempt.process = process
        attempt.conn = recv_conn
        if self.config.timeout is not None:
            attempt.deadline = now + self.config.timeout
        self._running.append(attempt)
        self._emit(EVENT_STARTED, attempt.index, attempt.attempt)

    def _wait_timeout(self, now: float) -> float:
        edges = [_POLL_INTERVAL]
        for attempt in self._running:
            if attempt.deadline is not None:
                edges.append(attempt.deadline - now)
        if self._pending and len(self._running) < self.workers:
            edges.append(
                min(attempt.not_before for attempt in self._pending) - now
            )
        return max(0.0, min(edges))

    # ------------------------------------------------------------------
    # Attempt outcomes
    # ------------------------------------------------------------------
    def _reap(self, attempt: _Attempt) -> None:
        """A running attempt's pipe is readable: collect its report."""
        try:
            kind, payload = attempt.conn.recv()
        except (EOFError, OSError):
            # The pipe closed with no report: the worker died.
            attempt.process.join(_TERM_GRACE)
            code = attempt.process.exitcode
            self._finish(attempt)
            self._fail_or_retry(attempt, f"worker crashed (exit code {code})")
            return
        self._finish(attempt)
        if kind == "ok":
            self._results[attempt.index] = payload
            self._failures.pop(attempt.index, None)
            self._emit(EVENT_COMPLETED, attempt.index, attempt.attempt)
        else:
            # A clean task exception: deterministic, so never retried.
            self._failures[attempt.index] = SeedTaskError(
                self.labels[attempt.index], attempt.attempt, payload
            )
            self._emit(EVENT_FAILED, attempt.index, attempt.attempt, payload)

    def _enforce_deadlines(self, now: float) -> None:
        expired = [
            attempt
            for attempt in self._running
            if attempt.deadline is not None and now > attempt.deadline
        ]
        for attempt in expired:
            attempt.process.terminate()
            attempt.process.join(_TERM_GRACE)
            if attempt.process.is_alive():
                attempt.process.kill()
                attempt.process.join()
            self._finish(attempt)
            self._fail_or_retry(
                attempt,
                f"worker hung past its {self.config.timeout}s timeout",
            )

    def _finish(self, attempt: _Attempt) -> None:
        self._running.remove(attempt)
        attempt.conn.close()
        attempt.process.join(_TERM_GRACE)

    def _fail_or_retry(self, attempt: _Attempt, cause: str) -> None:
        if attempt.attempt <= self.config.retries:
            delay = self.config.backoff * (
                self.config.backoff_factor ** (attempt.attempt - 1)
            )
            self._pending.append(
                _Attempt(
                    attempt.index,
                    attempt.attempt + 1,
                    time.monotonic() + delay,
                )
            )
            self._emit(EVENT_RETRYING, attempt.index, attempt.attempt, cause)
            return
        self._failures[attempt.index] = SeedTaskError(
            self.labels[attempt.index], attempt.attempt, cause
        )
        self._emit(EVENT_FAILED, attempt.index, attempt.attempt, cause)


def run_supervised(
    task: Callable[[Any], Any],
    items: Sequence[Any],
    workers: int,
    config: Optional[SupervisorConfig] = None,
    labels: Optional[Sequence[Any]] = None,
    on_event: Optional[Callable[[SupervisorEvent], None]] = None,
) -> SupervisedRun:
    """One-shot convenience wrapper around :class:`Supervisor`."""
    return Supervisor(
        task, items, workers, config=config, labels=labels, on_event=on_event
    ).run()
