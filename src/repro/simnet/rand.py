"""Deterministic random-number streams.

Every stochastic component of a simulation (churn, latency, address
selection, ...) draws from its own named stream derived from the master
seed.  Components therefore stay reproducible independently of each other:
adding events to one stream does not perturb the draws seen by another.
"""

from __future__ import annotations

import hashlib
import random
from typing import Iterable, List, Sequence, TypeVar

T = TypeVar("T")


def derive_seed(master_seed: int, *names: str) -> int:
    """Derive a 64-bit child seed from a master seed and a name path.

    The derivation is a SHA-256 hash of the master seed and the names, so
    streams are independent for distinct name paths and stable across runs
    and Python versions (unlike ``hash()``).
    """
    hasher = hashlib.sha256()
    hasher.update(str(int(master_seed)).encode("ascii"))
    for name in names:
        hasher.update(b"/")
        hasher.update(name.encode("utf-8"))
    return int.from_bytes(hasher.digest()[:8], "big")


class RandomStreams:
    """Factory for named, independent ``random.Random`` streams."""

    def __init__(self, master_seed: int) -> None:
        self.master_seed = int(master_seed)
        self._streams: dict = {}

    def stream(self, *names: str) -> random.Random:
        """Return the stream for ``names``, creating it on first use."""
        key = names
        rng = self._streams.get(key)
        if rng is None:
            rng = random.Random(derive_seed(self.master_seed, *names))
            self._streams[key] = rng
        return rng


def weighted_sample_without_replacement(
    rng: random.Random,
    population: Sequence[T],
    weights: Sequence[float],
    k: int,
) -> List[T]:
    """Sample ``k`` distinct items with probability proportional to weight.

    Uses the Efraimidis-Spirakis exponential-key trick, which is O(n log n)
    and exact.  ``k`` larger than the population returns the whole
    population in random order.
    """
    if len(population) != len(weights):
        raise ValueError("population and weights must have equal length")
    keyed = []
    for item, weight in zip(population, weights):
        if weight < 0:
            raise ValueError(f"weights must be non-negative, got {weight}")
        if weight == 0:
            continue
        keyed.append((rng.random() ** (1.0 / weight), item))
    keyed.sort(reverse=True)
    return [item for _key, item in keyed[:k]]


def zipf_weights(n: int, exponent: float) -> List[float]:
    """Weights ``1/rank**exponent`` for ranks 1..n (unnormalised)."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if exponent < 0:
        raise ValueError(f"exponent must be non-negative, got {exponent}")
    return [1.0 / (rank**exponent) for rank in range(1, n + 1)]


def shuffled(rng: random.Random, items: Iterable[T]) -> List[T]:
    """Return a new list with the items in random order."""
    out = list(items)
    rng.shuffle(out)
    return out
