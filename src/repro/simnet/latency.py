"""Propagation-latency model for the simulated internet.

One-way latency between two endpoints is drawn deterministically from the
pair of /16 netgroups (a proxy for AS-to-AS distance), so the same pair of
hosts always sees the same base latency, plus a small per-packet jitter.

The defaults approximate the public-internet latency distribution the paper
leans on ("given the stability of the Internet's latency distribution"):
intra-group RTTs of a few milliseconds, inter-group one-way latencies
between ~10 ms and ~150 ms.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from .addresses import NetAddr
from .rand import derive_seed


@dataclass
class LatencyConfig:
    """Parameters of the pairwise latency model (all seconds)."""

    #: Minimum one-way latency between distinct netgroups.
    min_latency: float = 0.010
    #: Maximum one-way latency between distinct netgroups.
    max_latency: float = 0.150
    #: One-way latency within a netgroup (same /16 → same region).
    local_latency: float = 0.002
    #: Fractional jitter applied per packet (uniform in ±jitter).
    jitter: float = 0.10

    def validate(self) -> None:
        if not 0 < self.min_latency <= self.max_latency:
            raise ValueError(
                "latency bounds must satisfy 0 < min <= max, got "
                f"{self.min_latency}..{self.max_latency}"
            )
        if self.local_latency <= 0:
            raise ValueError("local_latency must be positive")
        if not 0 <= self.jitter < 1:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")


class LatencyModel:
    """Deterministic pairwise one-way latency with per-packet jitter."""

    def __init__(
        self,
        config: LatencyConfig = LatencyConfig(),
        seed: int = 0,
        rng: random.Random = None,
    ) -> None:
        config.validate()
        self.config = config
        self._seed = seed
        self._rng = rng if rng is not None else random.Random(
            derive_seed(seed, "latency-jitter")
        )
        self._base_cache: dict = {}

    def base_latency(self, a: NetAddr, b: NetAddr) -> float:
        """Jitter-free one-way latency between ``a`` and ``b``.

        Symmetric: ``base_latency(a, b) == base_latency(b, a)``.
        """
        ga, gb = a.group16, b.group16
        if ga == gb:
            return self.config.local_latency
        key = (ga, gb) if ga < gb else (gb, ga)
        base = self._base_cache.get(key)
        if base is None:
            span = self.config.max_latency - self.config.min_latency
            fraction = (derive_seed(self._seed, f"lat:{key[0]}:{key[1]}") & 0xFFFF) / 0xFFFF
            base = self.config.min_latency + span * fraction
            self._base_cache[key] = base
        return base

    def sample(self, a: NetAddr, b: NetAddr) -> float:
        """One-way latency for a single packet from ``a`` to ``b``.

        Runs once per delivered message, so the base-latency cache lookup
        is inlined rather than delegated to :meth:`base_latency`, and the
        jitter draw is written as a direct ``random()`` expression —
        algebraically ``uniform(-jitter, jitter)``, consuming the same
        single draw, without the wrapper call.
        """
        config = self.config
        ga = a[0] >> 16  # NetAddr.group16, sans property machinery
        gb = b[0] >> 16
        if ga == gb:
            base = config.local_latency
        else:
            key = (ga, gb) if ga < gb else (gb, ga)
            base = self._base_cache.get(key)
            if base is None:
                span = config.max_latency - config.min_latency
                fraction = (
                    derive_seed(self._seed, f"lat:{key[0]}:{key[1]}") & 0xFFFF  # repro-lint: disable=HOT001 (cache-miss branch: runs once per group pair, then served from _base_cache)
                ) / 0xFFFF
                base = config.min_latency + span * fraction
                self._base_cache[key] = base
        jitter = config.jitter
        if jitter == 0:
            return base
        return base * (1.0 + jitter * (2.0 * self._rng.random() - 1.0))
