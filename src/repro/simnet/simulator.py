"""The top-level discrete-event simulator.

A :class:`Simulator` bundles the clock, the event scheduler, the seeded
random streams, and the simulated network transport.  Everything else in
the library (Bitcoin nodes, churn processes, crawlers) is built on this
object and advances only when :meth:`run_until` / :meth:`run` dispatch
events.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional

from ..errors import SimulationError
from .clock import SimClock
from .events import EventHandle, Scheduler
from .latency import LatencyConfig, LatencyModel
from .rand import RandomStreams
from .transport import Network


class Simulator:
    """Clock + scheduler + RNG streams + network, under one seed."""

    def __init__(
        self,
        seed: int = 0,
        latency_config: Optional[LatencyConfig] = None,
        connect_timeout: float = 5.0,
    ) -> None:
        self.seed = int(seed)
        self.clock = SimClock()
        self.scheduler = Scheduler(self.clock)
        self.random = RandomStreams(self.seed)
        latency = LatencyModel(
            latency_config if latency_config is not None else LatencyConfig(),
            seed=self.seed,
            rng=self.random.stream("latency"),
        )
        self.network = Network(
            self.scheduler, self.clock, latency, connect_timeout=connect_timeout
        )
        #: Named components registered for introspection (nodes, services).
        self.components: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        return self.scheduler.schedule(delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated time ``when``."""
        return self.scheduler.schedule_at(when, callback, *args)

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``interval`` seconds until stopped."""
        return PeriodicTask(self, interval, callback, args, start_delay)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event.  False if none pending."""
        return self.scheduler.run_next()

    def run_until(self, when: float, max_events: Optional[int] = None) -> int:
        """Dispatch events until the clock reaches ``when``.

        Returns the number of events dispatched.  The clock always ends at
        exactly ``when`` even if the heap drains early, so periodic
        measurement code can rely on the final time.
        """
        if when < self.clock.now:
            raise SimulationError(
                f"run_until({when}) but clock is already at {self.clock.now}"
            )
        dispatched = 0
        hit_event_cap = False
        while True:
            if max_events is not None and dispatched >= max_events:
                hit_event_cap = True
                break
            next_time = self.scheduler.next_event_time()
            if next_time is None or next_time > when:
                break
            self.scheduler.run_next()
            dispatched += 1
        # Only land the clock on `when` if every due event was dispatched;
        # advancing past undispatched events would corrupt time ordering.
        if not hit_event_cap:
            self.clock.advance_to(when)
        return dispatched

    def run_for(self, duration: float, max_events: Optional[int] = None) -> int:
        """Dispatch events for ``duration`` seconds of simulated time."""
        return self.run_until(self.clock.now + duration, max_events=max_events)

    def run(self, max_events: int = 10_000_000) -> int:
        """Dispatch events until the heap is empty (bounded by max_events)."""
        dispatched = 0
        while dispatched < max_events and self.scheduler.run_next():
            dispatched += 1
        if dispatched >= max_events:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return dispatched

    # ------------------------------------------------------------------
    # Component registry
    # ------------------------------------------------------------------
    def register(self, name: str, component: Any) -> None:
        """Register a named component (node, seeder, monitor, ...)."""
        if name in self.components:
            raise SimulationError(f"component {name!r} already registered")
        self.components[name] = component

    def __repr__(self) -> str:
        return (
            f"Simulator(seed={self.seed}, now={self.clock.now:.1f}, "
            f"pending={self.scheduler.pending})"
        )


class PeriodicTask:
    """A repeating callback; create via :meth:`Simulator.call_every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        start_delay: Optional[float],
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._stopped = False
        first = interval if start_delay is None else start_delay
        self._handle = sim.schedule(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        if not self._stopped:
            self._handle = self._sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Stop the periodic task.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
