"""The top-level discrete-event simulator.

A :class:`Simulator` bundles the clock, the event scheduler, the seeded
random streams, and the simulated network transport.  Everything else in
the library (Bitcoin nodes, churn processes, crawlers) is built on this
object and advances only when :meth:`run_until` / :meth:`run` dispatch
events.

Engine selection: the default scheduler is the near-wheel/far-heap
hybrid (:class:`~repro.simnet.events.Scheduler`); pass ``engine="heap"``
or set ``REPRO_ENGINE=heap`` to run on the reference single-heap backend
(:class:`~repro.simnet.events.HeapScheduler`).  Both dispatch events in
identical ``(time, seq)`` order, so results are bit-for-bit the same.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

from ..errors import SimulationError
from ..perf import MemorySample, PerfRecorder, perf_enabled_by_env, read_memory
from .clock import SimClock
from .events import EventHandle, HeapScheduler, Scheduler
from .latency import LatencyConfig, LatencyModel
from .rand import RandomStreams
from .transport import Network

_INF = float("inf")


class RunResult(int):
    """Events-dispatched count that also says *why* the run stopped.

    Behaves as a plain ``int`` (the number of dispatched events) so
    existing callers keep working, and carries :attr:`truncated` so new
    callers can distinguish "the world quiesced up to the target time"
    from "the event cap cut the run short and the clock is stale".
    """

    truncated: bool
    memory: Optional[MemorySample]

    def __new__(
        cls,
        dispatched: int,
        truncated: bool,
        memory: Optional[MemorySample] = None,
    ) -> "RunResult":
        obj = super().__new__(cls, dispatched)
        obj.truncated = truncated
        #: Peak-RSS / live-object sample taken as the run returned;
        #: ``None`` unless the simulator runs with perf instrumentation.
        obj.memory = memory
        return obj

    @property
    def dispatched(self) -> int:
        """The number of events dispatched (same as ``int(self)``)."""
        return int(self)

    def __repr__(self) -> str:
        return f"RunResult(dispatched={int(self)}, truncated={self.truncated})"


def resolve_engine(engine: Optional[str]) -> str:
    """The effective engine name: explicit choice, else REPRO_ENGINE."""
    if engine is None:
        engine = os.environ.get("REPRO_ENGINE", "wheel")
    if engine not in ("wheel", "heap"):
        raise SimulationError(
            f"unknown engine {engine!r} (want 'wheel' or 'heap')"
        )
    return engine


def resolve_fast_path(fast_path: Optional[bool]) -> bool:
    """Effective fast-path setting: explicit choice, else REPRO_FAST_PATH.

    The scheduler fast lane is on by default; set ``REPRO_FAST_PATH=0``
    (or pass ``fast_path=False``) to force every light-endpoint answer
    through the regular event queue.  Results are bit-identical either
    way — the toggle exists for the equivalence tests and for bisecting
    engine regressions.
    """
    if fast_path is not None:
        return bool(fast_path)
    return os.environ.get("REPRO_FAST_PATH", "1") != "0"


def _make_scheduler(engine: str, clock: SimClock):
    if engine == "wheel":
        return Scheduler(clock)
    return HeapScheduler(clock)


class Simulator:
    """Clock + scheduler + RNG streams + network, under one seed."""

    def __init__(
        self,
        seed: int = 0,
        latency_config: Optional[LatencyConfig] = None,
        connect_timeout: float = 5.0,
        engine: Optional[str] = None,
        perf: bool = False,
        fast_path: Optional[bool] = None,
    ) -> None:
        self.seed = int(seed)
        #: Resolved scheduler backend name ("wheel" or "heap"); recorded
        #: in run manifests so a resumed run replays on the same engine.
        self.engine = resolve_engine(engine)
        #: Whether light-endpoint answers use the scheduler fast lane.
        self.fast_path = resolve_fast_path(fast_path)
        self.clock = SimClock()
        self.scheduler = _make_scheduler(self.engine, self.clock)
        #: Optional engine instrumentation (``perf=True`` or REPRO_PERF=1).
        self.perf: Optional[PerfRecorder] = None
        if perf or perf_enabled_by_env():
            self.perf = PerfRecorder()
            self.scheduler.perf = self.perf
        self.random = RandomStreams(self.seed)
        latency = LatencyModel(
            latency_config if latency_config is not None else LatencyConfig(),
            seed=self.seed,
            rng=self.random.stream("latency"),
        )
        self.network = Network(
            self.scheduler,
            self.clock,
            latency,
            connect_timeout=connect_timeout,
            fast_path=self.fast_path,
        )
        #: Named components registered for introspection (nodes, services).
        self.components: Dict[str, Any] = {}
        # Fast-path aliases: shadow the class methods with the scheduler's
        # bound methods so the two busiest calls skip a wrapper frame.
        self.schedule = self.scheduler.schedule
        self.schedule_at = self.scheduler.schedule_at

    # ------------------------------------------------------------------
    # Time
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    def schedule(self, delay: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` after ``delay`` simulated seconds."""
        return self.scheduler.schedule(delay, callback, *args)

    def schedule_at(self, when: float, callback: Callable[..., Any], *args: Any) -> EventHandle:
        """Run ``callback(*args)`` at absolute simulated time ``when``."""
        return self.scheduler.schedule_at(when, callback, *args)

    def call_every(
        self,
        interval: float,
        callback: Callable[..., Any],
        *args: Any,
        start_delay: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``callback(*args)`` every ``interval`` seconds until stopped."""
        return PeriodicTask(self, interval, callback, args, start_delay)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the single earliest event.  False if none pending."""
        return self.scheduler.run_next()

    def run_until(self, when: float, max_events: Optional[int] = None) -> RunResult:
        """Dispatch events until the clock reaches ``when``.

        Returns a :class:`RunResult` — the number of events dispatched,
        with ``.truncated`` set when ``max_events`` stopped the run
        early.  Unless truncated, the clock always ends at exactly
        ``when`` even if the heap drains first, so periodic measurement
        code can rely on the final time; a truncated run leaves the
        clock at the last dispatched event because advancing it past
        undispatched events would corrupt time ordering.
        """
        if when < self.clock.now:
            raise SimulationError(
                f"run_until({when}) but clock is already at {self.clock.now}"
            )
        memory: Optional[MemorySample] = None
        if self.perf is not None:
            self.perf.start()
        dispatched, truncated = self.scheduler.run_until(when, max_events)
        if self.perf is not None:
            self.perf.stop()
            memory = read_memory()
        if not truncated:
            self.clock.advance_to(when)
        return RunResult(dispatched, truncated, memory=memory)

    def run_for(self, duration: float, max_events: Optional[int] = None) -> RunResult:
        """Dispatch events for ``duration`` seconds of simulated time."""
        return self.run_until(self.clock.now + duration, max_events=max_events)

    def run(self, max_events: int = 10_000_000) -> int:
        """Dispatch events until the heap is empty (bounded by max_events)."""
        if self.perf is not None:
            self.perf.start()
        dispatched, truncated = self.scheduler.run_until(_INF, max_events)
        if self.perf is not None:
            self.perf.stop()
        if truncated:
            raise SimulationError(
                f"simulation did not quiesce within {max_events} events"
            )
        return dispatched

    # ------------------------------------------------------------------
    # Fault injection
    # ------------------------------------------------------------------
    def install_faults(
        self,
        plan: Any,
        asn_of: Optional[Callable[..., Any]] = None,
        node_provider: Optional[Callable[[], Any]] = None,
    ) -> Any:
        """Compile a :class:`~repro.faults.plan.FaultPlan` onto this run.

        Schedules the plan's activation windows on the ordinary event
        queue, installs the transport hook (when the plan is non-empty),
        and registers the resulting
        :class:`~repro.faults.injector.FaultInjector` as the ``"faults"``
        component so scenario code and reports can read its stats.
        ``asn_of`` enables AS-scoped fault matching; ``node_provider``
        enables crash faults.  Returns the injector.
        """
        # Imported lazily: repro.faults imports from repro.simnet, so a
        # top-level import here would be circular.
        from ..faults.injector import FaultInjector

        injector = FaultInjector(
            self, plan, asn_of=asn_of, node_provider=node_provider
        )
        self.register("faults", injector)
        return injector

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize the complete simulation state to bytes.

        The payload captures everything a deterministic replay needs —
        the event queue (either scheduler backend), the clock, every
        seeded RNG stream at its current position, the network (open
        sockets, listeners, in-flight deliveries), and all registered
        components plus whatever the pending callbacks reach (nodes,
        addrman tables, churn processes).  :meth:`restore` rebuilds a
        simulator that dispatches the exact same event sequence as the
        original — pinned by test on both engine backends.

        The perf recorder is excluded: it holds wall-clock measurements,
        which are not simulation state and would differ per host.
        """
        from ..store.checkpoint import dump_checkpoint

        perf = self.perf
        sched_perf = self.scheduler.perf
        self.perf = None
        self.scheduler.perf = None
        try:
            return dump_checkpoint(
                self,
                kind="simulator",
                meta={
                    "engine": self.engine,
                    "seed": self.seed,
                    "now": self.clock.now,
                    "fired": self.scheduler.fired,
                    "pending": self.scheduler.pending,
                },
            )
        finally:
            self.perf = perf
            self.scheduler.perf = sched_perf

    @classmethod
    def restore(cls, data: bytes) -> "Simulator":
        """Rebuild a simulator from a :meth:`snapshot` payload.

        Validates the checkpoint header (magic, format version, payload
        integrity) before unpickling; raises
        :class:`~repro.errors.SimulationError` on a corrupt or
        wrong-kind payload.
        """
        from ..store.checkpoint import load_checkpoint

        sim = load_checkpoint(data, expect_kind="simulator")
        if not isinstance(sim, cls):
            raise SimulationError(
                f"checkpoint does not contain a {cls.__name__}"
            )
        return sim

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def perf_report(self) -> Optional[Dict[str, Any]]:
        """The perf metrics dict, or ``None`` when instrumentation is off."""
        if self.perf is None:
            return None
        return self.perf.report(self.scheduler)

    # ------------------------------------------------------------------
    # Component registry
    # ------------------------------------------------------------------
    def register(self, name: str, component: Any) -> None:
        """Register a named component (node, seeder, monitor, ...)."""
        if name in self.components:
            raise SimulationError(f"component {name!r} already registered")
        self.components[name] = component

    def __repr__(self) -> str:
        return (
            f"Simulator(seed={self.seed}, now={self.clock.now:.1f}, "
            f"pending={self.scheduler.pending})"
        )


class PeriodicTask:
    """A repeating callback; create via :meth:`Simulator.call_every`."""

    def __init__(
        self,
        sim: Simulator,
        interval: float,
        callback: Callable[..., Any],
        args: tuple,
        start_delay: Optional[float],
    ) -> None:
        if interval <= 0:
            raise SimulationError(f"interval must be positive, got {interval}")
        self._sim = sim
        self.interval = interval
        self._callback = callback
        self._args = args
        self._stopped = False
        first = interval if start_delay is None else start_delay
        self._handle = sim.schedule(first, self._fire)

    def _fire(self) -> None:
        if self._stopped:
            return
        self._callback(*self._args)
        if not self._stopped:
            self._handle = self._sim.schedule(self.interval, self._fire)

    def stop(self) -> None:
        """Stop the periodic task.  Idempotent."""
        self._stopped = True
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None
