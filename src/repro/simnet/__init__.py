"""Discrete-event network simulation substrate.

This subpackage is the foundation every other layer builds on: a
deterministic event loop (:class:`Simulator`), simulated addresses and
TCP-like transport with NAT/firewall semantics, and a pairwise latency
model.  It knows nothing about Bitcoin.
"""

from .addresses import DEFAULT_PORT, NetAddr, TimestampedAddr
from .clock import SimClock
from .events import EventHandle, Scheduler
from .latency import LatencyConfig, LatencyModel
from .rand import (
    RandomStreams,
    derive_seed,
    weighted_sample_without_replacement,
    zipf_weights,
)
from .simulator import PeriodicTask, Simulator
from .transport import (
    DEFAULT_CONNECT_TIMEOUT,
    Network,
    ProbeBehavior,
    ProbeResult,
    Socket,
)

__all__ = [
    "DEFAULT_CONNECT_TIMEOUT",
    "DEFAULT_PORT",
    "EventHandle",
    "LatencyConfig",
    "LatencyModel",
    "NetAddr",
    "Network",
    "PeriodicTask",
    "ProbeBehavior",
    "ProbeResult",
    "RandomStreams",
    "Scheduler",
    "SimClock",
    "Simulator",
    "Socket",
    "TimestampedAddr",
    "derive_seed",
    "weighted_sample_without_replacement",
    "zipf_weights",
]
