"""Simulated TCP transport.

The transport layer provides:

* **listeners** — reachable endpoints register a handler and accept or
  refuse inbound connections;
* **connections** — bidirectional message pipes with per-packet latency
  drawn from the :class:`~repro.simnet.latency.LatencyModel`;
* **probes** — raw single-packet probes (the simulated analogue of the
  paper's Scapy VER probe) answered according to per-address
  :class:`ProbeBehavior`, which is how the NAT/firewall model expresses
  "unreachable but responsive" nodes.

Handlers are duck-typed.  A connection handler needs::

    on_message(socket, message)   # a message arrived on the socket
    on_disconnect(socket)         # the peer (or network) closed the socket

and a listener additionally needs::

    on_inbound_connection(socket) -> bool   # accept (True) or refuse

No real sockets are opened anywhere; "TCP" here means the behaviours the
paper's measurements depend on (connect timeouts vs. fast refusals, FIN
responses to unsolicited packets, in-order delivery per direction).
"""

from __future__ import annotations

import enum
from typing import Any, Callable, Dict, List, Optional

from ..errors import AddressInUseError, ConnectionClosedError, TransportError
from .addresses import NetAddr
from .clock import SimClock
from .events import Scheduler
from .latency import LatencyModel

#: Default TCP connect timeout, matching Bitcoin Core's 5-second default.
DEFAULT_CONNECT_TIMEOUT = 5.0

#: Extra handshake overhead on a successful connect (SYN/SYN-ACK/ACK).
HANDSHAKE_ROUND_TRIPS = 1.5


class ProbeBehavior(enum.Enum):
    """How an address answers unsolicited packets (probes and SYNs)."""

    #: No host, or a firewall that drops silently — probe times out.
    SILENT = "silent"
    #: Host refuses with RST — probe fails fast.
    RST = "rst"
    #: Host accepts the TCP handshake then closes with FIN on the Bitcoin
    #: VER payload.  This is the paper's *responsive unreachable* node.
    FIN = "fin"


class ProbeResult(enum.Enum):
    """Outcome of :meth:`Network.probe` as seen by the prober."""

    SILENT = "silent"
    RST = "rst"
    FIN = "fin"
    #: A full Bitcoin listener answered (the address is reachable).
    BITCOIN = "bitcoin"


class Socket:
    """One endpoint's view of an established connection."""

    __slots__ = (
        "_network",
        "local_addr",
        "remote_addr",
        "is_inbound",
        "handler",
        "_peer",
        "open",
        "opened_at",
        "last_arrival_at",
        "bytes_sent",
        "messages_sent",
        "user_data",
    )

    def __init__(
        self,
        network: "Network",
        local_addr: NetAddr,
        remote_addr: NetAddr,
        is_inbound: bool,
        opened_at: float,
    ) -> None:
        self._network = network
        self.local_addr = local_addr
        self.remote_addr = remote_addr
        self.is_inbound = is_inbound
        self.handler: Any = None
        self._peer: Optional["Socket"] = None
        self.open = True
        self.opened_at = opened_at
        #: Enforces per-direction FIFO delivery (TCP ordering): no packet
        #: arrives before one sent earlier on the same socket.
        self.last_arrival_at = opened_at
        self.bytes_sent = 0
        self.messages_sent = 0
        #: Free slot for protocol state (the Bitcoin layer stores its
        #: per-connection Peer object here).
        self.user_data: Any = None

    def send(self, message: Any, extra_delay: float = 0.0) -> None:
        """Deliver ``message`` to the remote endpoint after latency.

        ``extra_delay`` models sender-side serialization (transmission
        time); the caller computes it because uplink scheduling is the
        node's job, not the network's.
        """
        if not self.open:
            raise ConnectionClosedError(
                f"send on closed socket {self.local_addr}->{self.remote_addr}"
            )
        self._network._deliver(self, message, extra_delay)
        self.bytes_sent += getattr(message, "wire_size", 100)
        self.messages_sent += 1

    def close(self) -> None:
        """Close the connection.  The peer learns after one latency."""
        if not self.open:
            return
        self.open = False
        self._network._close_initiated(self)

    def __repr__(self) -> str:
        direction = "in" if self.is_inbound else "out"
        state = "open" if self.open else "closed"
        return f"Socket({self.local_addr}->{self.remote_addr}, {direction}, {state})"


class Network:
    """The simulated internet: listeners, connections, probes, NAT."""

    def __init__(
        self,
        scheduler: Scheduler,
        clock: SimClock,
        latency: LatencyModel,
        connect_timeout: float = DEFAULT_CONNECT_TIMEOUT,
        fast_path: bool = True,
    ) -> None:
        self._scheduler = scheduler
        self._clock = clock
        self.latency = latency
        self.connect_timeout = connect_timeout
        #: Whether light-endpoint answers ride the scheduler's no-cancel
        #: fast lane.  Dispatch order is identical either way (the lane
        #: shares the global sequence counter); the toggle exists so the
        #: equivalence tests can pin that claim.
        self.fast_path = fast_path
        self._listeners: Dict[NetAddr, Any] = {}
        self._probe_behavior: Dict[NetAddr, ProbeBehavior] = {}
        #: Tier-aware endpoint registry: non-listening behaviors (light
        #: nodes) keyed by address.  An endpoint only needs a
        #: ``probe_behavior`` attribute; connects and probes honor it
        #: with exactly the timing of the raw ``_probe_behavior`` table,
        #: so a scenario can swap the statistical NAT table for live
        #: light-tier objects without moving a single event.
        self._endpoints: Dict[NetAddr, Any] = {}
        self._sockets_by_addr: Dict[NetAddr, List[Socket]] = {}
        # Monotone counters for whole-run accounting.
        self.connects_attempted = 0
        self.connects_succeeded = 0
        self.connects_refused = 0
        self.connects_timed_out = 0
        self.messages_delivered = 0
        self.probes_sent = 0
        # Pre-bound hot-path callables: _deliver runs once per message, so
        # it must not re-create the bound method / re-walk the attribute
        # chain on every send.
        self._schedule_at = scheduler.schedule_at
        self._arrive_cb = self._arrive
        # The light-endpoint answer path: one heap push per answer, no
        # EventHandle / closure allocation.  With the fast path disabled
        # the same (fire, payload) pairs go through the regular queue.
        self._lane = (
            scheduler.lane_schedule if fast_path else self._lane_fallback
        )
        # Message arrivals are never cancelled (a packet to a closed
        # socket is dropped at fire time), so they ride the lane too —
        # they are the majority of all events at paper scale, and the
        # lane spares each one an EventHandle and batch-drains bursts.
        self._lane_at = (
            scheduler.lane_schedule_at if fast_path else self._lane_at_fallback
        )
        self._arrive_pair_cb = self._arrive_pair
        #: Optional fault-injection hook (see ``repro.faults``).  ``None``
        #: keeps the hot path fault-free at the cost of one identity check.
        self._fault_hook: Any = None

    def _lane_fallback(self, delay: float, fire: Any, payload: Any) -> None:
        """Fast path disabled: the answer takes the regular event queue."""
        self._scheduler.schedule(delay, fire, payload)

    def _lane_at_fallback(self, when: float, fire: Any, payload: Any) -> None:
        """Fast path disabled: the arrival takes the regular event queue."""
        self._schedule_at(when, fire, payload)

    def install_fault_hook(self, hook: Any) -> None:
        """Attach a fault injector consulted on every message/connect/probe.

        The hook needs ``message_fate(src, dst) -> (copies, extra_delay)``,
        ``blocks_connect(src, dst)`` and ``blocks_probe(src, dst)``.  Only
        one hook may be installed per network.
        """
        if self._fault_hook is not None:
            raise TransportError("a fault hook is already installed")
        self._fault_hook = hook

    # ------------------------------------------------------------------
    # Listeners
    # ------------------------------------------------------------------
    def listen(self, addr: NetAddr, handler: Any) -> None:
        """Register ``handler`` to accept inbound connections on ``addr``."""
        if addr in self._listeners:
            raise AddressInUseError(f"{addr} already has a listener")
        self._listeners[addr] = handler

    def stop_listening(self, addr: NetAddr) -> None:
        """Remove the listener on ``addr`` (no-op if absent)."""
        self._listeners.pop(addr, None)

    def is_listening(self, addr: NetAddr) -> bool:
        return addr in self._listeners

    # ------------------------------------------------------------------
    # NAT / firewall behaviour for non-listening addresses
    # ------------------------------------------------------------------
    def set_probe_behavior(self, addr: NetAddr, behavior: ProbeBehavior) -> None:
        """Define how the non-listening ``addr`` answers unsolicited packets."""
        if behavior is ProbeBehavior.SILENT:
            self._probe_behavior.pop(addr, None)
        else:
            self._probe_behavior[addr] = behavior

    def probe_behavior(self, addr: NetAddr) -> ProbeBehavior:
        return self._behavior_at(addr)

    def _behavior_at(self, addr: NetAddr) -> ProbeBehavior:
        """Effective unsolicited-packet behavior of a non-listener."""
        behavior = self._probe_behavior.get(addr)
        if behavior is not None:
            return behavior
        endpoint = self._endpoints.get(addr)
        if endpoint is not None:
            return endpoint.probe_behavior
        return ProbeBehavior.SILENT

    # ------------------------------------------------------------------
    # Tier-aware endpoint registry (light nodes)
    # ------------------------------------------------------------------
    def register_endpoint(self, addr: NetAddr, endpoint: Any) -> None:
        """Attach a non-listening behavior object (light tier) to ``addr``.

        The endpoint's ``probe_behavior`` attribute governs how connects
        and probes answer.  Listening behaviors (full nodes, light
        listeners) use :meth:`listen` instead; the registry is for the
        unreachable cloud, which is observed but never accepts.
        """
        if addr in self._endpoints:
            raise AddressInUseError(f"{addr} already has an endpoint")
        self._endpoints[addr] = endpoint

    def unregister_endpoint(self, addr: NetAddr) -> None:
        """Remove the endpoint on ``addr`` (no-op if absent)."""
        self._endpoints.pop(addr, None)

    def endpoint(self, addr: NetAddr) -> Any:
        """The registered endpoint on ``addr``, or ``None``."""
        return self._endpoints.get(addr)

    def tier_census(self) -> Dict[str, int]:
        """How many behaviors of each tier the transport currently hosts.

        Listeners default to the full tier unless they carry a
        ``fidelity`` attribute saying otherwise; registered endpoints
        default to light.
        """
        census = {"full": 0, "light": 0}
        for handler in self._listeners.values():
            tier = getattr(handler, "fidelity", "full")
            census[tier if tier in census else "full"] += 1
        for endpoint in self._endpoints.values():
            tier = getattr(endpoint, "fidelity", "light")
            census[tier if tier in census else "light"] += 1
        return census

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------
    def connect(
        self,
        local_addr: NetAddr,
        remote_addr: NetAddr,
        handler: Any,
        on_result: Callable[[Optional[Socket]], None],
        timeout: Optional[float] = None,
    ) -> None:
        """Attempt a TCP connection from ``local_addr`` to ``remote_addr``.

        ``on_result`` is invoked exactly once: with the outbound
        :class:`Socket` on success, or ``None`` on refusal/timeout.  The
        failure *timing* differs — an RST refusal fails after one RTT, a
        silent drop only after ``timeout`` — because that difference is
        what makes unreachable-address-polluted addrman tables so costly
        (paper §IV-B).
        """
        self.connects_attempted += 1
        if timeout is None:
            timeout = self.connect_timeout
        if self._fault_hook is not None and self._fault_hook.blocks_connect(
            local_addr, remote_addr
        ):
            # Partitioned: the SYN vanishes, so the attempt times out
            # exactly like a silent drop (the slow failure mode).
            self._scheduler.schedule(timeout, self._timeout_connect, on_result)
            return
        rtt = 2.0 * self.latency.sample(local_addr, remote_addr)

        listener = self._listeners.get(remote_addr)
        if listener is not None:
            delay = rtt * HANDSHAKE_ROUND_TRIPS / 2.0 * 2.0  # ≈ 1.5 RTT
            self._scheduler.schedule(
                delay,
                self._complete_connect,
                local_addr,
                remote_addr,
                handler,
                on_result,
            )
            return

        behavior = self._behavior_at(remote_addr)
        if behavior in (ProbeBehavior.RST, ProbeBehavior.FIN):
            # FIN-behaviour hosts accept the TCP handshake but close as
            # soon as Bitcoin speaks; either way the *connection attempt*
            # fails quickly rather than timing out.
            self._lane(rtt, self._refuse_connect, on_result)
        else:
            self._lane(timeout, self._timeout_connect, on_result)

    def _complete_connect(
        self,
        local_addr: NetAddr,
        remote_addr: NetAddr,
        handler: Any,
        on_result: Callable[[Optional[Socket]], None],
    ) -> None:
        listener = self._listeners.get(remote_addr)
        if listener is None:
            # Listener vanished mid-handshake (node departed).
            self.connects_timed_out += 1
            on_result(None)
            return
        now = self._clock.now
        out_sock = Socket(self, local_addr, remote_addr, False, now)
        in_sock = Socket(self, remote_addr, local_addr, True, now)
        out_sock._peer = in_sock
        in_sock._peer = out_sock
        out_sock.handler = handler
        accepted = listener.on_inbound_connection(in_sock)
        if not accepted:
            self.connects_refused += 1
            out_sock.open = False
            in_sock.open = False
            on_result(None)
            return
        if in_sock.handler is None:
            in_sock.handler = listener
        self.connects_succeeded += 1
        self._sockets_by_addr.setdefault(local_addr, []).append(out_sock)
        self._sockets_by_addr.setdefault(remote_addr, []).append(in_sock)
        on_result(out_sock)

    def _refuse_connect(self, on_result: Callable[[Optional[Socket]], None]) -> None:
        self.connects_refused += 1
        on_result(None)

    def _timeout_connect(self, on_result: Callable[[Optional[Socket]], None]) -> None:
        self.connects_timed_out += 1
        on_result(None)

    # ------------------------------------------------------------------
    # Message delivery
    # ------------------------------------------------------------------
    def _deliver(self, sender: Socket, message: Any, extra_delay: float) -> None:
        peer = sender._peer
        if peer is None:
            raise TransportError("socket has no peer")
        if self._fault_hook is not None:
            copies, fault_extra = self._fault_hook.message_fate(
                sender.local_addr, sender.remote_addr
            )
            if copies == 0:
                return  # dropped or blackholed by a partition
            extra_delay += fault_extra
            # Duplicates each take their own latency sample (and the FIFO
            # clamp below), so a duplicate may land well after the original.
            for _ in range(copies - 1):
                self._schedule_arrival(sender, peer, message, extra_delay)
        delay = self.latency.sample(sender.local_addr, sender.remote_addr)
        arrive_at = self._clock._now + delay + extra_delay
        # TCP delivers in order per direction: jitter must not let a later
        # send overtake an earlier one (a VERACK arriving before its
        # VERSION would wedge the handshake).
        if arrive_at < peer.last_arrival_at:
            arrive_at = peer.last_arrival_at
        peer.last_arrival_at = arrive_at
        self._lane_at(arrive_at, self._arrive_pair_cb, (peer, message))

    def _schedule_arrival(
        self, sender: Socket, peer: Socket, message: Any, extra_delay: float
    ) -> None:
        delay = self.latency.sample(sender.local_addr, sender.remote_addr)
        arrive_at = self._clock._now + delay + extra_delay
        if arrive_at < peer.last_arrival_at:
            arrive_at = peer.last_arrival_at
        peer.last_arrival_at = arrive_at
        self._lane_at(arrive_at, self._arrive_pair_cb, (peer, message))

    def _arrive(self, receiver: Socket, message: Any) -> None:
        if not receiver.open:
            return  # packets to a closed socket are dropped
        self.messages_delivered += 1
        receiver.handler.on_message(receiver, message)

    def _arrive_pair(self, pair: tuple) -> None:
        """Lane-shaped :meth:`_arrive`: one payload slot, so the socket
        and message travel as a pair."""
        receiver = pair[0]
        if not receiver.open:
            return  # packets to a closed socket are dropped
        self.messages_delivered += 1
        receiver.handler.on_message(receiver, pair[1])

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _close_initiated(self, closer: Socket) -> None:
        self._forget(closer)
        peer = closer._peer
        if peer is not None and peer.open:
            delay = self.latency.sample(closer.local_addr, closer.remote_addr)
            self._scheduler.schedule(delay, self._peer_closed, peer)

    def _peer_closed(self, sock: Socket) -> None:
        if not sock.open:
            return
        sock.open = False
        self._forget(sock)
        if sock.handler is not None:
            sock.handler.on_disconnect(sock)

    def _forget(self, sock: Socket) -> None:
        socks = self._sockets_by_addr.get(sock.local_addr)
        if socks is not None:
            try:
                socks.remove(sock)
            except ValueError:
                pass
            if not socks:
                del self._sockets_by_addr[sock.local_addr]

    def disconnect_host(self, addr: NetAddr) -> int:
        """Abruptly take ``addr`` off the network (node departure).

        Closes every open socket bound to ``addr`` and removes its
        listener.  Returns the number of closed sockets.
        """
        self.stop_listening(addr)
        socks = list(self._sockets_by_addr.get(addr, ()))
        for sock in socks:
            sock.close()
        return len(socks)

    def open_sockets(self, addr: NetAddr) -> List[Socket]:
        """The currently open sockets bound to ``addr``."""
        return list(self._sockets_by_addr.get(addr, ()))

    # ------------------------------------------------------------------
    # Probing (the Scapy substitute)
    # ------------------------------------------------------------------
    def probe(
        self,
        local_addr: NetAddr,
        remote_addr: NetAddr,
        on_result: Callable[[ProbeResult], None],
        timeout: Optional[float] = None,
    ) -> None:
        """Send a single crafted VER packet and report what answers.

        Reachable addresses answer like Bitcoin nodes; non-listening
        addresses answer per their :class:`ProbeBehavior`.  The FIN result
        is the paper's *responsive* signal (§III-C).
        """
        self.probes_sent += 1
        if timeout is None:
            timeout = self.connect_timeout
        if self._fault_hook is not None and self._fault_hook.blocks_probe(
            local_addr, remote_addr
        ):
            # The probe packet is lost in the partition; the prober sees
            # silence, indistinguishable from a firewalled host.
            self._scheduler.schedule(timeout, on_result, ProbeResult.SILENT)
            return
        rtt = 2.0 * self.latency.sample(local_addr, remote_addr)
        if remote_addr in self._listeners:
            self._scheduler.schedule(rtt, on_result, ProbeResult.BITCOIN)
            return
        behavior = self._behavior_at(remote_addr)
        if behavior is ProbeBehavior.FIN:
            self._lane(rtt, on_result, ProbeResult.FIN)
        elif behavior is ProbeBehavior.RST:
            self._lane(rtt, on_result, ProbeResult.RST)
        else:
            self._lane(timeout, on_result, ProbeResult.SILENT)
