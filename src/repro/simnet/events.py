"""Event scheduling for the discrete-event simulator.

Two scheduler backends share one contract — events fire in strict
``(time, sequence)`` order, which makes whole simulations reproducible
from a seed:

* :class:`Scheduler` (the default) is a *near-wheel / far-heap hybrid*
  tuned for the protocol workload: short-lived timers (handshake
  timeouts, pings, trickle timers) land in a timer wheel of small
  per-slot heaps, everything beyond the wheel horizon goes to a single
  binary heap.  All heap entries are ``(when, seq, handle)`` tuples so
  comparisons run in C instead of calling ``EventHandle.__lt__``.
* :class:`HeapScheduler` is the original single-binary-heap engine,
  kept as the reference implementation; the determinism test suite
  cross-validates the two backends against each other.

Cancellation is *lazy* in both backends: a cancelled event stays where
it is and is skipped when it reaches the head of its heap.  This keeps
``cancel`` O(1), which matters because protocol timers are cancelled far
more often than they fire.  The hybrid scheduler additionally compacts
its structures when dead entries outnumber live ones, so a cancel-heavy
workload cannot grow the heaps without bound, and both backends maintain
a live-event counter so :attr:`pending` reports live events only (the
raw heap size stays available as :attr:`pending_raw`).

Both backends additionally carry a **fast lane** for the homogeneous
light-tier traffic the transport emits in bulk (connect refusals and
timeouts, probe answers): :meth:`_SchedulerBase.lane_schedule` stores a
bare ``(when, seq, fire, payload)`` tuple — no :class:`EventHandle`
allocation, no cancellation support — and the dispatch loops merge the
lane against the regular queue by ``(when, seq)``.  Lane entries draw
from the same global sequence counter as regular events, so enabling the
lane changes *where* an event is stored but never *when* it fires: the
merged dispatch order is bit-identical to scheduling the same callbacks
on the regular queue (pinned by the fast-path equivalence tests).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError
from .clock import SimClock

_INF = float("inf")

#: Wheel geometry defaults: 1024 slots of 50 ms cover a 51.2 s horizon,
#: spanning the connect timeout (5 s), trickle timers (~5 s) and message
#: deliveries (tens of ms); pings and connection lifetimes go to the far
#: heap.
DEFAULT_WHEEL_SLOTS = 1024
DEFAULT_WHEEL_GRANULARITY = 0.05

#: Compact once at least this many cancelled entries are stored *and*
#: they outnumber the live ones.
DEFAULT_COMPACT_MIN = 64


class EventHandle:
    """A scheduled callback; returned by :meth:`Scheduler.schedule_at`.

    Hold on to the handle to :meth:`cancel` the event before it fires.
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled", "_sched")

    def __init__(
        self,
        when: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        #: Owning scheduler while the event is stored there; cleared on
        #: dispatch so a late ``cancel`` cannot corrupt the live counter.
        self._sched: Optional["_SchedulerBase"] = None

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        if self.cancelled:
            return
        self.cancelled = True
        # Drop references early so cancelled timers do not pin objects
        # (connections, nodes) in memory until they drain from the heap.
        self.callback = _noop
        self.args = ()
        sched = self._sched
        if sched is not None:
            # Counter bookkeeping inlined: cancel is one of the hottest
            # engine entry points (timers are cancelled far more often
            # than they fire).
            self._sched = None
            sched._live -= 1
            sched.cancelled_total += 1
            dead = sched._dead + 1
            sched._dead = dead
            threshold = sched._compact_min
            if threshold is not None and dead >= threshold and dead > sched._live:
                sched._compact()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(when={self.when:.3f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed on cancellation."""


class _SchedulerBase:
    """Counter bookkeeping shared by both scheduler backends."""

    _clock: SimClock
    _live: int
    _dead: int
    _fired: int
    _seq: int
    _compact_min: Optional[int]
    scheduled_total: int
    #: The no-cancel fast lane: ``(when, seq, fire, payload)`` tuples.
    _lane_heap: List[tuple]

    #: Optional :class:`repro.perf.PerfRecorder`; when ``None`` the
    #: dispatch loops take the uninstrumented fast path.
    perf = None

    def lane_schedule(
        self, delay: float, fire: Callable[[Any], Any], payload: Any
    ) -> None:
        """Schedule ``fire(payload)`` on the no-cancel fast lane.

        The lane carries the light-tier answer traffic (connect refusals
        and timeouts, probe results), which is never cancelled, so the
        entry is a bare tuple instead of an :class:`EventHandle`.  The
        sequence number comes from the shared counter, which is what
        guarantees the merged dispatch order matches the regular queue.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(
            self._lane_heap, (self._clock._now + delay, seq, fire, payload)
        )
        self._live += 1
        self.scheduled_total += 1

    def lane_schedule_at(
        self, when: float, fire: Callable[[Any], Any], payload: Any
    ) -> None:
        """:meth:`lane_schedule` with an absolute fire time.

        The transport computes arrival times directly (latency plus the
        per-direction FIFO clamp), so the lane must take the exact float
        rather than a delay — ``now + (when - now)`` can differ in the
        last ulp, which would make fast-path runs drift from the regular
        queue.  Callers guarantee ``when >= now``, as the regular
        ``schedule_at`` would otherwise have raised.
        """
        seq = self._seq
        self._seq = seq + 1
        heapq.heappush(self._lane_heap, (when, seq, fire, payload))
        self._live += 1
        self.scheduled_total += 1

    @property
    def fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled, not yet fired) events."""
        return self._live

    @property
    def cancelled_pending(self) -> int:
        """Cancelled entries still occupying the heaps."""
        return self._dead

    def _compact(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Generic conveniences expressed via the backend's fused loop
    # ------------------------------------------------------------------
    def run_next(self) -> bool:
        """Pop and execute the earliest event.

        Returns ``True`` if an event was executed, ``False`` if no live
        event remains.
        """
        return self.run_until(_INF, 1)[0] > 0

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending (non-cancelled) event, or ``None``."""
        entry = self._next_entry()
        return entry[0] if entry is not None else None

    def _next_entry(self):  # pragma: no cover - overridden
        raise NotImplementedError


class Scheduler(_SchedulerBase):
    """Deterministic near-wheel / far-heap hybrid driving a :class:`SimClock`.

    Events within ``slots`` wheel slots of *now* are bucketed by
    ``int(when / granularity)`` into per-slot mini-heaps; later events go
    to the far heap.  The absolute slot numbers occupied by wheel entries
    always span less than one wheel revolution (inserts beyond that go to
    the far heap and ``when >= now`` is enforced), so a slot index never
    mixes two revolutions and a forward scan from the slot containing
    *now* visits pending events in slot order.  Within a slot — and
    between the wheel and the far heap — ``(when, seq)`` tuples decide,
    so the dispatch order is bit-for-bit the order the single-heap
    backend produces.
    """

    def __init__(
        self,
        clock: SimClock,
        *,
        slots: int = DEFAULT_WHEEL_SLOTS,
        granularity: float = DEFAULT_WHEEL_GRANULARITY,
        compact_min: Optional[int] = DEFAULT_COMPACT_MIN,
    ) -> None:
        if slots < 2:
            raise SimulationError(f"wheel needs at least 2 slots, got {slots}")
        if granularity <= 0:
            raise SimulationError(
                f"granularity must be positive, got {granularity}"
            )
        self._clock = clock
        self._slots = slots
        self._granularity = granularity
        self._inv_granularity = 1.0 / granularity
        self._wheel: List[List[tuple]] = [[] for _ in range(slots)]
        self._wheel_size = 0
        self._far: List[tuple] = []
        self._lane_heap = []
        #: Absolute slot number the next wheel scan resumes from; pulled
        #: back whenever an insert lands behind it.
        self._cursor = 0
        self._seq = 0
        self._fired = 0
        self._live = 0
        self._dead = 0
        self._compact_min = compact_min
        # Whole-run accounting (always on; one integer add per op).
        self.scheduled_total = 0
        self.cancelled_total = 0
        self.compactions = 0

    @property
    def pending_raw(self) -> int:
        """Stored entries including lazily cancelled ones (heap size)."""
        return self._wheel_size + len(self._far) + len(self._lane_heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        now = self._clock._now
        if when < now:
            raise SimulationError(
                f"cannot schedule event at {when:.3f}, now is {now:.3f}"
            )
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(when, seq, callback, args)
        handle._sched = self
        inv_g = self._inv_granularity
        slot_abs = int(when * inv_g)
        if slot_abs - int(now * inv_g) < self._slots:
            heapq.heappush(
                self._wheel[slot_abs % self._slots], (when, seq, handle)
            )
            self._wheel_size += 1
            if slot_abs < self._cursor:
                self._cursor = slot_abs
        else:
            heapq.heappush(self._far, (when, seq, handle))
        self._live += 1
        self.scheduled_total += 1
        return handle

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now.

        Body duplicates :meth:`schedule_at` rather than delegating: this
        is the single busiest engine entry point, and ``delay >= 0``
        already guarantees the event is not in the past.
        """
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        now = self._clock._now
        when = now + delay
        seq = self._seq
        self._seq = seq + 1
        handle = EventHandle(when, seq, callback, args)
        handle._sched = self
        inv_g = self._inv_granularity
        slot_abs = int(when * inv_g)
        if slot_abs - int(now * inv_g) < self._slots:
            heapq.heappush(
                self._wheel[slot_abs % self._slots], (when, seq, handle)
            )
            self._wheel_size += 1
            if slot_abs < self._cursor:
                self._cursor = slot_abs
        else:
            heapq.heappush(self._far, (when, seq, handle))
        self._live += 1
        self.scheduled_total += 1
        return handle

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_until(
        self, when: float, max_events: Optional[int] = None
    ) -> Tuple[int, bool]:
        """Fused dispatch loop: fire every live event with time <= ``when``.

        Returns ``(dispatched, truncated)`` where ``truncated`` is True
        iff the loop stopped because ``max_events`` was reached.  The
        clock is advanced to each event's time but is *not* moved to
        ``when`` afterwards — that is the Simulator's job, because only
        the caller knows whether landing the clock there is meaningful.
        """
        if self.perf is not None:
            return self._run_until_instrumented(when, max_events)
        clock = self._clock
        far = self._far  # stable: compaction rewrites it in place
        lane = self._lane_heap
        wheel = self._wheel
        n = self._slots
        inv_g = self._inv_granularity
        heappop = heapq.heappop
        cap = -1 if max_events is None else max_events
        dispatched = 0
        while dispatched != cap:
            # --- locate the earliest live entry, cleaning dead heads ---
            while far and far[0][2].cancelled:
                heappop(far)
                self._dead -= 1
            entry = None
            slot = None
            if self._wheel_size:
                cursor = self._cursor
                base = int(clock._now * inv_g)
                if cursor < base:
                    cursor = base
                limit = cursor + n
                while cursor <= limit:
                    s = wheel[cursor % n]
                    while s and s[0][2].cancelled:
                        heappop(s)
                        self._dead -= 1
                        self._wheel_size -= 1
                    if s:
                        entry = s[0]
                        slot = s
                        break
                    if not self._wheel_size:
                        break
                    cursor += 1
                else:  # pragma: no cover - counter corruption guard
                    raise SimulationError(
                        "timer wheel scan overran one revolution"
                    )
                self._cursor = cursor
            if far and (entry is None or far[0] < entry):
                entry = far[0]
                slot = None
            if lane and lane[0][0] <= when and (entry is None or lane[0] < entry):
                # --- batch-drain the fast lane ---
                # Every lane entry ahead of the located regular head can
                # fire without re-scanning the wheel, UNLESS a lane
                # callback schedules new work: a fresh event may land
                # before the stale bound, so the drain re-locates as soon
                # as ``scheduled_total`` moves (the dirty check).
                sched_mark = self.scheduled_total
                while lane:
                    lentry = lane[0]
                    if lentry[0] > when or (
                        entry is not None and entry < lentry
                    ):
                        break
                    heappop(lane)
                    clock._now = lentry[0]
                    self._fired += 1
                    self._live -= 1
                    lentry[2](lentry[3])
                    dispatched += 1
                    if dispatched == cap or self.scheduled_total != sched_mark:
                        break
                continue
            if entry is None:
                break
            event_time = entry[0]
            if event_time > when:
                break
            # --- pop and dispatch ---
            if slot is None:
                heappop(far)
            else:
                heappop(slot)
                self._wheel_size -= 1
            handle = entry[2]
            # Heap order guarantees monotone event times, so write the
            # clock directly instead of re-validating per event.
            clock._now = event_time
            handle._sched = None
            self._fired += 1
            self._live -= 1
            handle.callback(*handle.args)
            dispatched += 1
        else:
            return dispatched, True
        return dispatched, False

    def _run_until_instrumented(
        self, when: float, max_events: Optional[int]
    ) -> Tuple[int, bool]:
        """Slow-path twin of :meth:`run_until` feeding :attr:`perf`."""
        perf = self.perf
        clock = self._clock
        cap = -1 if max_events is None else max_events
        dispatched = 0
        while dispatched != cap:
            entry = self._next_entry()
            if entry is None or entry[0] > when:
                break
            self._pop_entry(entry)
            clock._now = entry[0]
            self._fired += 1
            self._live -= 1
            if len(entry) == 4:  # lane entry: (when, seq, fire, payload)
                perf.dispatch(entry[2], (entry[3],), self.pending_raw)
            else:
                handle = entry[2]
                handle._sched = None
                perf.dispatch(handle.callback, handle.args, self.pending_raw)
            dispatched += 1
        else:
            return dispatched, True
        return dispatched, False

    # ------------------------------------------------------------------
    # Peek / pop helpers (introspection and the instrumented path)
    # ------------------------------------------------------------------
    def _next_entry(self) -> Optional[tuple]:
        far = self._far
        heappop = heapq.heappop
        while far and far[0][2].cancelled:
            heappop(far)
            self._dead -= 1
        entry = None
        if self._wheel_size:
            wheel = self._wheel
            n = self._slots
            cursor = self._cursor
            base = int(self._clock._now * self._inv_granularity)
            if cursor < base:
                cursor = base
            limit = cursor + n
            while cursor <= limit:
                s = wheel[cursor % n]
                while s and s[0][2].cancelled:
                    heappop(s)
                    self._dead -= 1
                    self._wheel_size -= 1
                if s:
                    entry = s[0]
                    break
                if not self._wheel_size:
                    break
                cursor += 1
            else:  # pragma: no cover - counter corruption guard
                raise SimulationError("timer wheel scan overran one revolution")
            self._cursor = cursor
        if far and (entry is None or far[0] < entry):
            entry = far[0]
        lane = self._lane_heap
        if lane and (entry is None or lane[0] < entry):
            return lane[0]
        return entry

    def _pop_entry(self, entry: tuple) -> None:
        """Remove ``entry`` — must be the tuple `_next_entry` returned."""
        lane = self._lane_heap
        if lane and lane[0] is entry:
            heapq.heappop(lane)
            return
        far = self._far
        if far and far[0] is entry:
            heapq.heappop(far)
        else:
            heapq.heappop(self._wheel[self._cursor % self._slots])
            self._wheel_size -= 1

    # ------------------------------------------------------------------
    # Compaction
    # ------------------------------------------------------------------
    def _compact(self) -> None:
        """Drop stored cancelled entries, rebuilding the heaps in place."""
        far = self._far
        live_far = [e for e in far if not e[2].cancelled]
        if len(live_far) != len(far):
            far[:] = live_far
            heapq.heapify(far)
        wheel_size = 0
        for slot in self._wheel:
            if not slot:
                continue
            live = [e for e in slot if not e[2].cancelled]
            if len(live) != len(slot):
                slot[:] = live
                heapq.heapify(slot)
            wheel_size += len(slot)
        self._wheel_size = wheel_size
        self._dead = 0
        self.compactions += 1


class HeapScheduler(_SchedulerBase):
    """The original single-binary-heap engine (reference backend).

    Kept verbatim in behaviour: one heap of :class:`EventHandle` objects
    ordered by ``__lt__``, lazy cancellation, head-dropping on peek/pop.
    The determinism suite asserts its dispatch order matches the hybrid
    :class:`Scheduler` event for event.  Compaction is off by default to
    stay faithful to the seed engine; pass ``compact_min`` to enable it.
    """

    def __init__(
        self, clock: SimClock, *, compact_min: Optional[int] = None
    ) -> None:
        self._clock = clock
        self._heap: List[EventHandle] = []
        self._lane_heap = []
        self._seq = 0
        self._fired = 0
        self._live = 0
        self._dead = 0
        self._compact_min = compact_min
        self.scheduled_total = 0
        self.cancelled_total = 0
        self.compactions = 0

    @property
    def pending_raw(self) -> int:
        """Stored entries including lazily cancelled ones (heap size)."""
        return len(self._heap) + len(self._lane_heap)

    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        if when < self._clock.now:
            raise SimulationError(
                f"cannot schedule event at {when:.3f}, now is "
                f"{self._clock.now:.3f}"
            )
        handle = EventHandle(when, self._seq, callback, args)
        handle._sched = self
        self._seq += 1
        heapq.heappush(self._heap, handle)
        self._live += 1
        self.scheduled_total += 1
        return handle

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._clock.now + delay, callback, *args)

    def run_until(
        self, when: float, max_events: Optional[int] = None
    ) -> Tuple[int, bool]:
        """Seed-style loop: peek the head, then pop-and-dispatch it."""
        clock = self._clock
        lane = self._lane_heap
        cap = -1 if max_events is None else max_events
        dispatched = 0
        while dispatched != cap:
            self._drop_cancelled_head()
            heap = self._heap
            if lane and (
                not heap
                or lane[0][0] < heap[0].when
                or (lane[0][0] == heap[0].when and lane[0][1] < heap[0].seq)
            ):
                lentry = lane[0]
                if lentry[0] > when:
                    break
                heapq.heappop(lane)
                clock.advance_to(lentry[0])
                self._fired += 1
                self._live -= 1
                if self.perf is not None:
                    self.perf.dispatch(
                        lentry[2], (lentry[3],), len(heap) + len(lane)
                    )
                else:
                    lentry[2](lentry[3])
                dispatched += 1
                continue
            if not heap or heap[0].when > when:
                break
            event = heapq.heappop(heap)
            clock.advance_to(event.when)
            event._sched = None
            self._fired += 1
            self._live -= 1
            if self.perf is not None:
                self.perf.dispatch(event.callback, event.args, len(heap))
            else:
                event.callback(*event.args)
            dispatched += 1
        else:
            return dispatched, True
        return dispatched, False

    def run_next(self) -> bool:
        """Pop and execute the earliest event (seed-faithful hot path)."""
        if self._lane_heap:
            return self.run_until(_INF, 1)[0] > 0
        self._drop_cancelled_head()
        heap = self._heap
        if not heap:
            return False
        event = heapq.heappop(heap)
        self._clock.advance_to(event.when)
        event._sched = None
        self._fired += 1
        self._live -= 1
        event.callback(*event.args)
        return True

    def _next_entry(self) -> Optional[tuple]:
        self._drop_cancelled_head()
        entry: Optional[tuple] = None
        if self._heap:
            head = self._heap[0]
            entry = (head.when, head.seq, head)
        lane = self._lane_heap
        if lane and (entry is None or lane[0] < entry):
            return lane[0]
        return entry

    def _drop_cancelled_head(self) -> None:
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
            self._dead -= 1

    def _compact(self) -> None:
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._dead = 0
        self.compactions += 1
