"""Event scheduling for the discrete-event simulator.

The scheduler keeps a binary heap of pending events ordered by
``(time, sequence)``.  The sequence number makes ordering deterministic for
events scheduled at the same instant: they fire in scheduling order, which
keeps whole simulations reproducible from a seed.

Cancellation is *lazy*: a cancelled event stays in the heap but is skipped
when popped.  This keeps ``cancel`` O(1), which matters because protocol
timers (handshake timeouts, pings) are cancelled far more often than they
fire.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional

from ..errors import SimulationError
from .clock import SimClock


class EventHandle:
    """A scheduled callback; returned by :meth:`Scheduler.schedule_at`.

    Hold on to the handle to :meth:`cancel` the event before it fires.
    """

    __slots__ = ("when", "seq", "callback", "args", "cancelled")

    def __init__(
        self,
        when: float,
        seq: int,
        callback: Callable[..., Any],
        args: tuple,
    ) -> None:
        self.when = when
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent."""
        self.cancelled = True
        # Drop references early so cancelled timers do not pin objects
        # (connections, nodes) in memory until they drain from the heap.
        self.callback = _noop
        self.args = ()

    def __lt__(self, other: "EventHandle") -> bool:
        return (self.when, self.seq) < (other.when, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "pending"
        return f"EventHandle(when={self.when:.3f}, seq={self.seq}, {state})"


def _noop(*_args: Any) -> None:
    """Placeholder callback installed on cancellation."""


class Scheduler:
    """Deterministic event heap driving a :class:`SimClock`."""

    def __init__(self, clock: SimClock) -> None:
        self._clock = clock
        self._heap: List[EventHandle] = []
        self._seq = 0
        self._fired = 0

    @property
    def pending(self) -> int:
        """Number of events in the heap, including lazily cancelled ones."""
        return len(self._heap)

    @property
    def fired(self) -> int:
        """Total number of events executed so far."""
        return self._fired

    def schedule_at(
        self, when: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` to run at absolute time ``when``."""
        if when < self._clock.now:
            raise SimulationError(
                f"cannot schedule event at {when:.3f}, now is "
                f"{self._clock.now:.3f}"
            )
        handle = EventHandle(when, self._seq, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, handle)
        return handle

    def schedule(
        self, delay: float, callback: Callable[..., Any], *args: Any
    ) -> EventHandle:
        """Schedule ``callback(*args)`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"delay must be non-negative, got {delay}")
        return self.schedule_at(self._clock.now + delay, callback, *args)

    def next_event_time(self) -> Optional[float]:
        """Time of the earliest pending (non-cancelled) event, or ``None``."""
        self._drop_cancelled_head()
        return self._heap[0].when if self._heap else None

    def run_next(self) -> bool:
        """Pop and execute the earliest event.

        Returns ``True`` if an event was executed, ``False`` if the heap is
        empty (after discarding cancelled events).
        """
        self._drop_cancelled_head()
        if not self._heap:
            return False
        event = heapq.heappop(self._heap)
        self._clock.advance_to(event.when)
        self._fired += 1
        event.callback(*event.args)
        return True

    def _drop_cancelled_head(self) -> None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
