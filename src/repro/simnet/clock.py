"""Simulated wall clock.

The clock is advanced only by the event scheduler; user code reads it via
:attr:`SimClock.now`.  Keeping the clock separate from the scheduler lets
protocol code depend on "what time is it" without being able to advance
time on its own.
"""

from __future__ import annotations

from ..errors import ClockError


class SimClock:
    """Monotonically non-decreasing simulated time, in seconds."""

    __slots__ = ("_now",)

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance_to(self, when: float) -> None:
        """Move the clock forward to ``when``.

        Raises :class:`ClockError` if ``when`` lies in the past; the
        discrete-event loop must never re-order time.
        """
        if when < self._now:
            raise ClockError(
                f"cannot move clock backwards from {self._now} to {when}"
            )
        self._now = when

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.3f})"
