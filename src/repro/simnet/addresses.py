"""Network addresses for the simulated internet.

Addresses are IPv4-like ``(ip, port)`` pairs.  The ``ip`` is stored as a
32-bit integer, which keeps :class:`NetAddr` hashable and cheap — whole
simulations hold hundreds of thousands of them (the paper observed ~694K
unique unreachable addresses).

``group16`` reproduces Bitcoin Core's notion of a *netgroup* (the /16
prefix), which drives addrman bucketing and outbound-diversity rules.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bitcoin's default P2P port; 95.78% of reachable nodes in the paper's
#: measurement used it.
DEFAULT_PORT = 8333


@dataclass(frozen=True, order=True)
class NetAddr:
    """An (ip, port) endpoint in the simulated network."""

    ip: int
    port: int = DEFAULT_PORT

    def __post_init__(self) -> None:
        if not 0 <= self.ip <= 0xFFFFFFFF:
            raise ValueError(f"ip must fit in 32 bits, got {self.ip}")
        if not 0 < self.port <= 0xFFFF:
            raise ValueError(f"port must be in 1..65535, got {self.port}")

    @property
    def group16(self) -> int:
        """The /16 netgroup of the address (upper 16 bits of the IP)."""
        return self.ip >> 16

    @property
    def dotted(self) -> str:
        """Dotted-quad rendering of the IP."""
        ip = self.ip
        return f"{ip >> 24 & 0xFF}.{ip >> 16 & 0xFF}.{ip >> 8 & 0xFF}.{ip & 0xFF}"

    @classmethod
    def parse(cls, text: str) -> "NetAddr":
        """Parse ``"a.b.c.d"`` or ``"a.b.c.d:port"`` into a :class:`NetAddr`.

        >>> NetAddr.parse("10.0.0.1:8333").dotted
        '10.0.0.1'
        """
        host, sep, port_text = text.partition(":")
        port = int(port_text) if sep else DEFAULT_PORT
        parts = host.split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted-quad address: {text!r}")
        ip = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range in {text!r}")
            ip = (ip << 8) | octet
        return cls(ip=ip, port=port)

    def __str__(self) -> str:
        return f"{self.dotted}:{self.port}"


@dataclass(frozen=True)
class TimestampedAddr:
    """An address plus the freshness timestamp carried in ADDR messages.

    Bitcoin nodes gossip ``(address, last-seen-time)`` pairs; the timestamp
    influences relay decisions and addrman eviction.
    """

    addr: NetAddr
    timestamp: float

    def __str__(self) -> str:
        return f"{self.addr}@{self.timestamp:.0f}"
