"""Network addresses for the simulated internet.

Addresses are IPv4-like ``(ip, port)`` pairs.  The ``ip`` is stored as a
32-bit integer, which keeps :class:`NetAddr` hashable and cheap — whole
simulations hold hundreds of thousands of them (the paper observed ~694K
unique unreachable addresses).

Both record types are tuple subclasses rather than dataclasses: an
address is hashed/compared millions of times per run (every dict/set of
peers, addrman tables, latency cache), and a tuple gets C-level
``__hash__``/``__eq__``/field access.  The hash VALUE is identical to
the frozen-dataclass ``hash((ip, port))`` these classes replaced —
set/dict iteration order feeds deterministic figure outputs, so the
representation change is observable only as speed.

``group16`` reproduces Bitcoin Core's notion of a *netgroup* (the /16
prefix), which drives addrman bucketing and outbound-diversity rules.
"""

from __future__ import annotations

from collections import namedtuple
from typing import NamedTuple

#: Bitcoin's default P2P port; 95.78% of reachable nodes in the paper's
#: measurement used it.
DEFAULT_PORT = 8333

_tuple_new = tuple.__new__


class NetAddr(namedtuple("_NetAddrBase", ("ip", "port"))):
    """An (ip, port) endpoint in the simulated network."""

    __slots__ = ()

    def __new__(cls, ip: int, port: int = DEFAULT_PORT) -> "NetAddr":
        if not 0 <= ip <= 0xFFFFFFFF:
            raise ValueError(f"ip must fit in 32 bits, got {ip}")
        if not 0 < port <= 0xFFFF:
            raise ValueError(f"port must be in 1..65535, got {port}")
        return _tuple_new(cls, (ip, port))

    @property
    def group16(self) -> int:
        """The /16 netgroup of the address (upper 16 bits of the IP)."""
        return self[0] >> 16

    @property
    def dotted(self) -> str:
        """Dotted-quad rendering of the IP."""
        ip = self[0]
        return f"{ip >> 24 & 0xFF}.{ip >> 16 & 0xFF}.{ip >> 8 & 0xFF}.{ip & 0xFF}"

    @classmethod
    def parse(cls, text: str) -> "NetAddr":
        """Parse ``"a.b.c.d"`` or ``"a.b.c.d:port"`` into a :class:`NetAddr`.

        Parsed addresses are interned through a bounded cache: repeated
        parses of the same text (config files, exported CSVs, fault-plan
        targets) return the *same* object, so large address sets loaded
        from disk share storage instead of duplicating tuples.

        >>> NetAddr.parse("10.0.0.1:8333").dotted
        '10.0.0.1'
        """
        cached = _parse_cache.get(text)
        if cached is not None:
            return cached
        host, sep, port_text = text.partition(":")
        port = int(port_text) if sep else DEFAULT_PORT
        parts = host.split(".")
        if len(parts) != 4:
            raise ValueError(f"not a dotted-quad address: {text!r}")
        ip = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet out of range in {text!r}")
            ip = (ip << 8) | octet
        addr = cls(ip=ip, port=port)
        if len(_parse_cache) >= _PARSE_CACHE_MAX:
            # Evict oldest insertions (FIFO): parse workloads are bursts
            # of distinct addresses, so plain insertion age is as good as
            # LRU here and needs no per-hit bookkeeping.
            for stale in list(_parse_cache)[: _PARSE_CACHE_MAX // 2]:
                del _parse_cache[stale]
        _parse_cache[text] = addr
        return addr

    def __str__(self) -> str:
        return f"{self.dotted}:{self.port}"


#: Bounded intern cache for :meth:`NetAddr.parse` (text -> NetAddr).
_PARSE_CACHE_MAX = 65536
_parse_cache: dict = {}


class TimestampedAddr(NamedTuple):
    """An address plus the freshness timestamp carried in ADDR messages.

    Bitcoin nodes gossip ``(address, last-seen-time)`` pairs; the timestamp
    influences relay decisions and addrman eviction.
    """

    addr: NetAddr
    timestamp: float

    def __str__(self) -> str:
        return f"{self.addr}@{self.timestamp:.0f}"
