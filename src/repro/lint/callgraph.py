"""Project-wide symbol table, call graph, and taint propagation (pass 3).

The per-file passes in :mod:`repro.lint.visitor` deliberately stop at
file boundaries: determinism hazards (a ``time.time()`` call, a set
iteration) are visible at their source line.  Concurrency hazards are
not — a request handler that looks innocent blocks the event loop three
calls down, inside the store.  This module gives the engine the
project-wide view those rules need:

1. **Symbol pass** — every module is indexed once: functions and
   methods by dotted qualname, classes with their base classes and the
   inferred types of ``self.*`` attributes (from constructor calls,
   parameter annotations, ``Path``-division, and attribute aliasing),
   imports with relative-import resolution.

2. **Body pass** — every function body is walked once more, resolving
   each call to a dotted target: module functions, ``self`` methods
   (through project base classes), methods on attributes or locals of
   inferred type, aliased imports, ``functools.partial`` wrappers, and
   class constructors.  Loop-safe dispatch points
   (``run_in_executor`` / ``asyncio.to_thread`` / executor ``submit`` /
   ``Thread(target=...)`` / ``call_soon_threadsafe``) are *barriers*:
   the dispatched callable produces no call edge, but is recorded as a
   thread entry point (except ``call_soon_threadsafe``, whose target
   runs on the loop — that is the sanctioned bridge ASYNC004 checks
   for).

3. **Propagation** — three fixpoints over the edge set, all worklist
   based and cycle-safe:

   * *may-block* taint flows **up** the graph from blocking roots
     (``time.sleep``, file/socket/subprocess I/O, ``pathlib.Path``
     methods, configured extras) to every sync function that can reach
     one;
   * *hotness* flows **down** from functions named in
     ``[tool.repro-lint] hot-paths`` or marked ``# repro-lint: hot`` to
     everything they call;
   * *thread context* flows **down** from callables handed to executors
     and threads.

The analysis is best-effort by design: an unresolvable call (dynamic
dispatch, ``getattr``, a callable in a data structure) simply produces
no edge, so every finding traces to a concrete resolved chain the
message can print.  False negatives are accepted; false positives are
suppressible with a rationale.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .config import LintConfig, normalize_path
from .findings import Finding
from .visitor import Rule

# ---------------------------------------------------------------------------
# Function markers
# ---------------------------------------------------------------------------

#: ``# repro-lint: hot`` / ``# repro-lint: loop-owned`` on (or directly
#: above) a ``def`` line.
_MARKER = re.compile(r"#\s*repro-lint:\s*(hot|loop-owned)\b")


def _marker_for(lines: Sequence[str], lineno: int) -> Optional[str]:
    """The marker on the def line or the line above it, if any."""
    for candidate in (lineno, lineno - 1):
        if 1 <= candidate <= len(lines):
            match = _MARKER.search(lines[candidate - 1])
            if match is not None:
                return match.group(1)
    return None


# ---------------------------------------------------------------------------
# Blocking roots
# ---------------------------------------------------------------------------

#: Callables that block the calling thread, by resolved dotted name.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "sleeps the calling thread",
    "open": "file I/O",
    "io.open": "file I/O",
    "os.fdopen": "file I/O",
    "os.open": "file I/O",
    "os.read": "file I/O",
    "os.write": "file I/O",
    "os.fsync": "file I/O",
    "os.close": "file I/O",
    "os.replace": "file I/O",
    "os.rename": "file I/O",
    "os.remove": "file I/O",
    "os.unlink": "file I/O",
    "os.makedirs": "file I/O",
    "os.mkdir": "file I/O",
    "os.rmdir": "file I/O",
    "os.listdir": "file I/O",
    "os.scandir": "file I/O",
    "os.stat": "file I/O",
    "tempfile.mkstemp": "file I/O",
    "tempfile.mkdtemp": "file I/O",
    "tempfile.NamedTemporaryFile": "file I/O",
    "tempfile.TemporaryDirectory": "file I/O",
    "shutil.copy": "file I/O",
    "shutil.copy2": "file I/O",
    "shutil.copyfile": "file I/O",
    "shutil.copytree": "file I/O",
    "shutil.move": "file I/O",
    "shutil.rmtree": "file I/O",
    "subprocess.run": "waits on a child process",
    "subprocess.call": "waits on a child process",
    "subprocess.check_call": "waits on a child process",
    "subprocess.check_output": "waits on a child process",
    "subprocess.Popen": "spawns a child process",
    "socket.create_connection": "network I/O",
    "socket.getaddrinfo": "synchronous DNS resolution",
    "socket.gethostbyname": "synchronous DNS resolution",
    "urllib.request.urlopen": "network I/O",
    "requests.get": "network I/O",
    "requests.post": "network I/O",
    "requests.request": "network I/O",
}

#: Blocking methods by inferred receiver type tag.
BLOCKING_METHODS: Dict[str, Dict[str, str]] = {
    "pathlib.Path": {
        method: "file I/O"
        for method in (
            "read_text", "read_bytes", "write_text", "write_bytes",
            "open", "unlink", "mkdir", "rmdir", "touch", "rename",
            "replace", "glob", "rglob", "iterdir", "stat", "lstat",
            "exists", "is_file", "is_dir", "samefile", "symlink_to",
            "hardlink_to", "chmod", "resolve",
        )
    },
    "socket.socket": {
        method: "socket I/O"
        for method in (
            "recv", "recv_into", "recvfrom", "recvfrom_into", "send",
            "sendall", "sendto", "accept", "connect", "connect_ex",
            "listen", "makefile", "shutdown",
        )
    },
    "_file": {
        method: "file I/O"
        for method in (
            "read", "readline", "readlines", "write", "writelines",
            "flush", "close", "seek", "truncate",
        )
    },
}

#: Constructors / factory calls whose result carries a tracked type tag.
_TYPE_CONSTRUCTORS: Dict[str, str] = {
    "pathlib.Path": "pathlib.Path",
    "socket.socket": "socket.socket",
    "open": "_file",
    "io.open": "_file",
    "os.fdopen": "_file",
    "concurrent.futures.ThreadPoolExecutor": "_executor",
    "concurrent.futures.ProcessPoolExecutor": "_executor",
}

#: Annotation dotted names mapped to type tags (project classes keep
#: their dotted name and are looked up in the class table instead).
_ANNOTATION_TAGS: Dict[str, str] = {
    "pathlib.Path": "pathlib.Path",
    "socket.socket": "socket.socket",
    "concurrent.futures.ThreadPoolExecutor": "_executor",
    "concurrent.futures.ProcessPoolExecutor": "_executor",
}

#: Loop-safe dispatch attributes.  The dispatched callable crosses an
#: execution boundary, so taint must not flow through the call site.
_BARRIER_ATTRS = frozenset(
    {"run_in_executor", "to_thread", "call_soon_threadsafe"}
)

#: Keyword arguments whose value is invoked from a non-loop thread
#: (``threading.Thread(target=...)``, the supervisor's ``on_event``).
_THREAD_KWARGS = frozenset({"target", "on_event"})

#: Stdlib module roots resolvable without an import statement, so a
#: pasted ``time.sleep(...)`` in a scratch checkout still resolves (the
#: CI canary relies on this, mirroring the per-file analyzer).
_STDLIB_ROOTS = frozenset(
    {
        "time", "os", "io", "socket", "subprocess", "tempfile", "shutil",
        "asyncio", "threading", "functools", "urllib", "requests",
        "pathlib", "concurrent",
    }
)

#: Attribute names treated as ``asyncio.create_task``-shaped no matter
#: what the receiver is (``loop.create_task``, ``asyncio.create_task``).
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})


# ---------------------------------------------------------------------------
# Data model
# ---------------------------------------------------------------------------


@dataclass
class CallSite:
    """One resolved call inside a function body."""

    lineno: int
    col: int
    #: Dotted target: a project function key, a ``<tag>.<method>``
    #: typed-method target, or an external dotted name.
    target: str
    #: "call" | "constructor" | "partial" | "create_task"
    kind: str = "call"
    awaited: bool = False


@dataclass
class AllocSite:
    """One allocation-bearing construct (HOT001 raw material)."""

    lineno: int
    col: int
    what: str


@dataclass
class FunctionInfo:
    """One function or method, keyed ``module.Qualname``."""

    key: str
    module: str
    qualname: str
    path: str
    lineno: int
    col: int
    is_async: bool
    class_key: Optional[str] = None
    marker: Optional[str] = None
    #: Resolved return-annotation type tag (drives local inference).
    returns: Optional[str] = None
    #: Parameter name -> type tag from annotations.
    params: Dict[str, str] = field(default_factory=dict)
    calls: List[CallSite] = field(default_factory=list)
    #: Calls whose value is discarded (``Expr`` statements) — the raw
    #: material for ASYNC002/ASYNC003.
    bare_calls: List[CallSite] = field(default_factory=list)
    allocs: List[AllocSite] = field(default_factory=list)

    @property
    def display(self) -> str:
        return self.qualname


@dataclass
class ClassInfo:
    """One class: bases, methods, and inferred ``self.*`` types."""

    key: str
    module: str
    bases: List[str] = field(default_factory=list)
    methods: Dict[str, str] = field(default_factory=dict)
    attr_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class BlockCause:
    """Why a function is may-block: the first blocking call inside it."""

    site: CallSite
    #: Root reason when ``site.target`` is external; empty when the
    #: taint arrived transitively (follow the chain instead).
    reason: str = ""


@dataclass
class _ModuleInfo:
    """Per-module context shared between the two passes."""

    name: str
    path: str
    lines: Sequence[str]
    tree: ast.AST
    is_package: bool
    imports: Dict[str, str] = field(default_factory=dict)
    #: Names defined at module top level (classes, functions, aliases).
    top_level: Set[str] = field(default_factory=set)


class CallGraph:
    """The project graph plus the three propagated properties."""

    def __init__(self) -> None:
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.lines: Dict[str, Sequence[str]] = {}
        self.modules: Dict[str, _ModuleInfo] = {}
        #: function key -> first blocking call inside it.
        self.may_block: Dict[str, BlockCause] = {}
        #: function key -> human-readable origin of its hotness.
        self.hot: Dict[str, str] = {}
        #: function key -> how it ends up on a non-loop thread.
        self.thread_ctx: Dict[str, str] = {}
        #: functions marked ``# repro-lint: loop-owned``.
        self.loop_owned: Set[str] = set()
        #: (target dotted, description, entry kind) thread/loop entries.
        self._entries: List[Tuple[str, str]] = []

    # -- resolution ----------------------------------------------------
    def resolve_function(self, target: str) -> Optional[FunctionInfo]:
        """A project function for ``target``, walking class bases and
        mapping constructor targets to ``__init__``."""
        direct = self.functions.get(target)
        if direct is not None:
            return direct
        if target in self.classes:
            return self._resolve_method(target, "__init__")
        if "." in target:
            prefix, method = target.rsplit(".", 1)
            if prefix in self.classes:
                return self._resolve_method(prefix, method)
        return None

    def _resolve_method(
        self, class_key: str, method: str
    ) -> Optional[FunctionInfo]:
        seen: Set[str] = set()
        queue = [class_key]
        while queue:
            current = queue.pop(0)
            if current in seen:
                continue
            seen.add(current)
            info = self.classes.get(current)
            if info is None:
                continue
            func_key = info.methods.get(method)
            if func_key is not None:
                return self.functions.get(func_key)
            queue.extend(info.bases)
        return None

    def blocking_reason(self, target: str) -> Optional[str]:
        """Why ``target`` blocks, if it is a known external root."""
        reason = BLOCKING_CALLS.get(target)
        if reason is not None:
            return reason
        if "." in target:
            prefix, method = target.rsplit(".", 1)
            methods = BLOCKING_METHODS.get(prefix)
            if methods is not None and method in methods:
                return methods[method]
        return None

    def chain(self, key: str, limit: int = 6) -> List[str]:
        """The blocking call chain from ``key`` down to its root."""
        parts: List[str] = []
        seen: Set[str] = set()
        current: Optional[str] = key
        while current is not None and current not in seen and len(parts) < limit:
            seen.add(current)
            func = self.functions.get(current)
            parts.append(func.display if func is not None else current)
            cause = self.may_block.get(current)
            if cause is None:
                break
            if cause.reason:
                parts.append(cause.site.target)
                break
            resolved = self.resolve_function(cause.site.target)
            current = resolved.key if resolved is not None else None
            if current is None:
                parts.append(cause.site.target)
        return parts

    def source_line(self, path: str, lineno: int) -> str:
        lines = self.lines.get(path, ())
        if 1 <= lineno <= len(lines):
            return lines[lineno - 1].strip()
        return ""


# ---------------------------------------------------------------------------
# Module naming and imports
# ---------------------------------------------------------------------------


def module_name_for(label: str) -> Tuple[str, bool]:
    """``(dotted module name, is_package)`` for a repo-relative label."""
    norm = normalize_path(label)
    if norm.endswith(".py"):
        norm = norm[: -len(".py")]
    parts = [part for part in norm.split("/") if part not in (".", "")]
    if parts and parts[0] in ("src", "lib"):
        parts = parts[1:]
    is_package = False
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
        is_package = True
    return ".".join(parts), is_package


def _resolve_import_from(
    module: str, is_package: bool, node: ast.ImportFrom
) -> Optional[str]:
    """The absolute module an ``ImportFrom`` refers to, or ``None``."""
    if node.level == 0:
        return node.module
    # Package of the importing module: the module itself if it is a
    # package (__init__), else everything up to the last dot.
    if is_package:
        package_parts = module.split(".") if module else []
    else:
        package_parts = module.split(".")[:-1]
    ascend = node.level - 1
    if ascend > len(package_parts):
        return None
    base = package_parts[: len(package_parts) - ascend]
    if node.module:
        base = base + node.module.split(".")
    return ".".join(base) if base else None


# ---------------------------------------------------------------------------
# Pass A: symbols, classes, attribute types
# ---------------------------------------------------------------------------


class _SymbolCollector(ast.NodeVisitor):
    """Index one module's functions, classes, imports, and attr types."""

    def __init__(self, info: _ModuleInfo, graph: CallGraph) -> None:
        self.info = info
        self.graph = graph
        self._scope: List[Tuple[str, str]] = []  # (kind, name)
        self._class_stack: List[ClassInfo] = []
        for stmt in getattr(info.tree, "body", []):
            if isinstance(
                stmt, (ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                self.info.top_level.add(stmt.name)
            elif isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name):
                        self.info.top_level.add(target.id)

    # -- naming --------------------------------------------------------
    def _qualname(self, name: str) -> str:
        return ".".join([part for _, part in self._scope] + [name])

    def _key(self, name: str) -> str:
        qual = self._qualname(name)
        return f"{self.info.name}.{qual}" if self.info.name else qual

    # -- dotted resolution ---------------------------------------------
    def resolve_dotted(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        return self.resolve_parts(parts)

    def resolve_parts(self, parts: List[str]) -> Optional[str]:
        root, rest = parts[0], parts[1:]
        if root in self.info.imports:
            return ".".join([self.info.imports[root]] + rest)
        if root in self.info.top_level:
            prefix = f"{self.info.name}.{root}" if self.info.name else root
            return ".".join([prefix] + rest)
        if root in _STDLIB_ROOTS:
            return ".".join([root] + rest)
        if not rest and root == "open":
            return "open"
        return None

    def annotation_tag(self, node: Optional[ast.AST]) -> Optional[str]:
        """A type tag (or project-class dotted name) for an annotation."""
        if node is None:
            return None
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            text = node.value.split("[", 1)[0].strip().strip("'\"")
            if not text:
                return None
            dotted = self.resolve_parts(text.split("."))
        elif isinstance(node, ast.Subscript):
            head = node.value
            head_name = None
            if isinstance(head, ast.Name):
                head_name = head.id
            elif isinstance(head, ast.Attribute):
                head_name = head.attr
            if head_name == "Optional":
                return self.annotation_tag(node.slice)
            return None
        elif isinstance(node, (ast.Name, ast.Attribute)):
            dotted = self.resolve_dotted(node)
        else:
            return None
        if dotted is None:
            return None
        return _ANNOTATION_TAGS.get(dotted, dotted)

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".", 1)[0]
            self.info.imports[name] = (
                alias.name if alias.asname else alias.name.split(".", 1)[0]
            )
            if not self._scope:
                self.info.top_level.add(name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        base = _resolve_import_from(
            self.info.name, self.info.is_package, node
        )
        for alias in node.names:
            name = alias.asname or alias.name
            if base is not None:
                self.info.imports[name] = f"{base}.{alias.name}"
            if not self._scope:
                self.info.top_level.add(name)

    # -- classes and functions -----------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        key = self._key(node.name)
        info = ClassInfo(key=key, module=self.info.name)
        for base in node.bases:
            resolved = self.resolve_dotted(base)
            if resolved is not None:
                info.bases.append(resolved)
        self.graph.classes[key] = info
        self._scope.append(("class", node.name))
        self._class_stack.append(info)
        self.generic_visit(node)
        self._class_stack.pop()
        self._scope.pop()

    def _visit_function(self, node, is_async: bool) -> None:
        key = self._key(node.name)
        in_class = bool(self._scope) and self._scope[-1][0] == "class"
        params: Dict[str, str] = {}
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            tag = self.annotation_tag(arg.annotation)
            if tag is not None:
                params[arg.arg] = tag
        func = FunctionInfo(
            key=key,
            module=self.info.name,
            qualname=self._qualname(node.name),
            path=self.info.path,
            lineno=node.lineno,
            col=node.col_offset,
            is_async=is_async,
            class_key=self._class_stack[-1].key if in_class else None,
            marker=_marker_for(self.info.lines, node.lineno),
            returns=self.annotation_tag(node.returns),
            params=params,
        )
        self.graph.functions[key] = func
        if func.marker == "loop-owned":
            self.graph.loop_owned.add(key)
        if in_class:
            self._class_stack[-1].methods[node.name] = key
        self._scope.append(("function", node.name))
        if in_class:
            self._collect_attr_types(node, params)
        self.generic_visit(node)
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, is_async=False)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, is_async=True)

    # -- self.* type inference -----------------------------------------
    def _collect_attr_types(self, node, params: Dict[str, str]) -> None:
        """Infer ``self.attr`` types from this method's assignments.

        Statements are scanned in source order, so later assignments may
        use attributes typed by earlier ones (``self.runs_dir =
        self.root / "runs"``).
        """
        cls = self._class_stack[-1]
        for stmt in ast.walk(node):
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1:
                target, value = stmt.targets[0], stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.target is not None:
                target, value = stmt.target, stmt.value
                if self._is_self_attr(target):
                    tag = self.annotation_tag(stmt.annotation)
                    if tag is not None:
                        cls.attr_types[target.attr] = tag  # type: ignore[union-attr]
                        continue
            else:
                continue
            if not self._is_self_attr(target):
                continue
            tag = self._value_tag(value, params, cls)
            if tag is not None:
                cls.attr_types[target.attr] = tag  # type: ignore[union-attr]

    @staticmethod
    def _is_self_attr(target: ast.AST) -> bool:
        return (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        )

    def _value_tag(
        self,
        value: Optional[ast.AST],
        params: Dict[str, str],
        cls: ClassInfo,
    ) -> Optional[str]:
        if value is None:
            return None
        if isinstance(value, ast.Call):
            dotted = self.resolve_dotted(value.func)
            if dotted is None:
                return None
            if dotted in _TYPE_CONSTRUCTORS:
                return _TYPE_CONSTRUCTORS[dotted]
            head = dotted.rsplit(".", 1)[-1]
            if head[:1].isupper():  # looks like a constructor
                return dotted
            return None
        if isinstance(value, ast.Name):
            return params.get(value.id)
        if self._is_self_attr(value):
            return cls.attr_types.get(value.attr)  # type: ignore[union-attr]
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Div):
            left = self._value_tag(value.left, params, cls)
            if left == "pathlib.Path":
                return "pathlib.Path"
        return None


# ---------------------------------------------------------------------------
# Pass B: call edges, allocations, thread entries
# ---------------------------------------------------------------------------


class _Frame:
    __slots__ = ("func", "locals", "local_defs")

    def __init__(self, func: FunctionInfo) -> None:
        self.func = func
        self.locals: Dict[str, str] = dict(func.params)
        self.local_defs: Dict[str, str] = {}


class _BodyCollector(ast.NodeVisitor):
    """Collect call edges and allocation sites for one module."""

    def __init__(self, info: _ModuleInfo, graph: CallGraph) -> None:
        self.info = info
        self.graph = graph
        self._scope: List[Tuple[str, str]] = []
        self._frames: List[_Frame] = []
        self._await_value: Optional[ast.AST] = None
        self._stmt_call: Optional[ast.AST] = None
        self._raise_depth = 0

    # -- naming / resolution -------------------------------------------
    def _qualname(self, name: str) -> str:
        return ".".join([part for _, part in self._scope] + [name])

    def _key(self, name: str) -> str:
        qual = self._qualname(name)
        return f"{self.info.name}.{qual}" if self.info.name else qual

    def _class_key(self) -> Optional[str]:
        parts: List[str] = []
        for kind, name in self._scope:
            parts.append(name)
            if kind == "class":
                continue
        for index in range(len(self._scope) - 1, -1, -1):
            if self._scope[index][0] == "class":
                names = [name for _, name in self._scope[: index + 1]]
                joined = ".".join(names)
                return (
                    f"{self.info.name}.{joined}" if self.info.name else joined
                )
        return None

    def resolve_parts(self, parts: List[str]) -> Optional[str]:
        root, rest = parts[0], parts[1:]
        frame = self._frames[-1] if self._frames else None
        if frame is not None:
            if root in frame.local_defs and not rest:
                return frame.local_defs[root]
            tag = frame.locals.get(root)
            if tag is not None:
                if tag.startswith("_partial:") and not rest:
                    return tag
                if len(rest) == 1:
                    return f"{tag}.{rest[0]}"
                if rest:
                    return None
        if root == "self":
            class_key = self._class_key()
            if class_key is not None:
                if len(rest) == 1:
                    attrs = self.graph.classes[class_key].attr_types
                    if rest[0] in attrs:
                        return None  # attribute load, not the method
                    return f"{class_key}.{rest[0]}"
                if len(rest) == 2:
                    attrs = self.graph.classes[class_key].attr_types
                    tag = attrs.get(rest[0])
                    if tag is not None:
                        return f"{tag}.{rest[1]}"
            return None
        if root in self.info.imports:
            return ".".join([self.info.imports[root]] + rest)
        if root in self.info.top_level:
            prefix = f"{self.info.name}.{root}" if self.info.name else root
            return ".".join([prefix] + rest)
        if root in _STDLIB_ROOTS:
            return ".".join([root] + rest)
        if root == "open" and not rest:
            return "open"
        return None

    def resolve(self, node: ast.AST) -> Optional[str]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        return self.resolve_parts(parts)

    def _extract_callable(self, node: ast.AST) -> Optional[str]:
        """The dotted target a callable expression refers to.

        Handles names, attributes, and ``functools.partial(...)``
        wrappers (recursively, for ``partial(partial(f, a), b)``).
        """
        if isinstance(node, ast.Call):
            dotted = self.resolve(node.func)
            if dotted in ("functools.partial", "partial") and node.args:
                return self._extract_callable(node.args[0])
            return None
        resolved = self.resolve(node)
        if resolved is not None and resolved.startswith("_partial:"):
            return resolved[len("_partial:"):]
        return resolved

    # -- scope tracking ------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._scope.append(("class", node.name))
        self.generic_visit(node)
        self._scope.pop()

    def _visit_function(self, node) -> None:
        key = self._key(node.name)
        func = self.graph.functions.get(key)
        if self._frames and self._raise_depth == 0:
            self._alloc(node, "nested function (closure)")
        if self._frames:
            # A call to the nested def's name resolves to the nested
            # function, so taint can flow through local helpers.
            self._frames[-1].local_defs[node.name] = key
        self._scope.append(("function", node.name))
        if func is not None:
            self._frames.append(_Frame(func))
            for stmt in node.body:
                self.visit(stmt)
            self._frames.pop()
        self._scope.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)

    # -- allocation sites ----------------------------------------------
    def _alloc(self, node: ast.AST, what: str) -> None:
        if self._frames and self._raise_depth == 0:
            self._frames[-1].func.allocs.append(
                AllocSite(
                    lineno=getattr(node, "lineno", 1),
                    col=getattr(node, "col_offset", 0),
                    what=what,
                )
            )

    def visit_Raise(self, node: ast.Raise) -> None:
        # Error paths are cold by definition (the raise itself
        # allocates); HOT001 ignores allocations feeding a raise.
        self._raise_depth += 1
        self.generic_visit(node)
        self._raise_depth -= 1

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._alloc(node, "lambda")
        # The body runs later, in an unknown context: no edges.

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._alloc(node, "list comprehension")
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self._alloc(node, "set comprehension")
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._alloc(node, "dict comprehension")
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self._alloc(node, "generator expression")
        self.generic_visit(node)

    def visit_Dict(self, node: ast.Dict) -> None:
        self._alloc(node, "dict literal")
        self.generic_visit(node)

    def visit_List(self, node: ast.List) -> None:
        if isinstance(node.ctx, ast.Load):
            self._alloc(node, "list literal")
        self.generic_visit(node)

    def visit_Set(self, node: ast.Set) -> None:
        self._alloc(node, "set literal")
        self.generic_visit(node)

    def visit_JoinedStr(self, node: ast.JoinedStr) -> None:
        self._alloc(node, "f-string")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # Annotations are not evaluated at call time; only the target
        # and value matter.
        self.visit(node.target)
        if node.value is not None:
            self.visit(node.value)

    # -- statements ----------------------------------------------------
    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Call):
            self._stmt_call = node.value
        self.generic_visit(node)
        self._stmt_call = None

    def visit_Await(self, node: ast.Await) -> None:
        previous = self._await_value
        self._await_value = node.value
        self.generic_visit(node)
        self._await_value = previous

    def visit_Assign(self, node: ast.Assign) -> None:
        # Track partial(...) bindings and typed locals.
        if self._frames and len(node.targets) == 1 and isinstance(
            node.targets[0], ast.Name
        ):
            tag = self._local_value_tag(node.value)
            frame = self._frames[-1]
            name = node.targets[0].id
            if tag is not None:
                frame.locals[name] = tag
            else:
                frame.locals.pop(name, None)
                frame.local_defs.pop(name, None)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        self._with_items(node.items)
        self.generic_visit(node)

    def visit_AsyncWith(self, node: ast.AsyncWith) -> None:
        self._with_items(node.items)
        self.generic_visit(node)

    def _with_items(self, items) -> None:
        if not self._frames:
            return
        frame = self._frames[-1]
        for item in items:
            if item.optional_vars is None or not isinstance(
                item.optional_vars, ast.Name
            ):
                continue
            tag = self._local_value_tag(item.context_expr)
            if tag is not None:
                frame.locals[item.optional_vars.id] = tag

    def _local_value_tag(self, value: ast.AST) -> Optional[str]:
        """Type tag for a local assignment's right-hand side."""
        if isinstance(value, ast.Call):
            dotted = self.resolve(value.func)
            if dotted is None:
                return None
            if dotted in ("functools.partial", "partial") and value.args:
                inner = self._extract_callable(value.args[0])
                if inner is not None:
                    return f"_partial:{inner}"
                return None
            if dotted in _TYPE_CONSTRUCTORS:
                return _TYPE_CONSTRUCTORS[dotted]
            resolved = self.graph.resolve_function(dotted)
            if resolved is not None:
                return resolved.returns
            return None
        if isinstance(value, ast.Name) and self._frames:
            return self._frames[-1].locals.get(value.id)
        if isinstance(value, ast.Attribute) and isinstance(
            value.value, ast.Name
        ) and value.value.id == "self":
            class_key = self._class_key()
            if class_key is not None and class_key in self.graph.classes:
                return self.graph.classes[class_key].attr_types.get(
                    value.attr
                )
            return None
        if isinstance(value, ast.BinOp) and isinstance(value.op, ast.Div):
            left = self._local_value_tag(value.left)
            if left == "pathlib.Path":
                return "pathlib.Path"
        return None

    # -- calls ---------------------------------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if not self._frames:
            # Module-level code: import-time blocking is legitimate.
            self.generic_visit(node)
            return
        frame = self._frames[-1]
        func_expr = node.func
        attr_name = (
            func_expr.attr if isinstance(func_expr, ast.Attribute) else None
        )

        # --- barriers: executor / thread / loop dispatch ---------------
        if attr_name in _BARRIER_ATTRS:
            self._handle_barrier(node, attr_name)
            return
        if attr_name == "submit":
            receiver = self.resolve(func_expr.value)
            receiver_tag = self._receiver_tag(func_expr.value)
            if receiver_tag == "_executor" or (
                receiver is not None and receiver.endswith("._executor")
            ):
                self._dispatch_entry(node.args[0] if node.args else None,
                                     "executor submit")
                for arg in node.args[1:]:
                    self.visit(arg)
                for keyword in node.keywords:
                    self.visit(keyword.value)
                return

        # --- thread-entry keyword arguments ----------------------------
        for keyword in node.keywords:
            if keyword.arg in _THREAD_KWARGS:
                self._dispatch_entry(
                    keyword.value, f"{keyword.arg}= callback"
                )

        resolved = self.resolve(func_expr)
        site: Optional[CallSite] = None
        if resolved is not None and resolved.startswith("_partial:"):
            # Invoking a local bound to functools.partial(f, ...).
            site = self._record_call(
                node, resolved[len("_partial:"):], "call"
            )
        elif resolved in ("functools.partial", "partial"):
            inner = (
                self._extract_callable(node.args[0]) if node.args else None
            )
            if inner is not None:
                site = self._record_call(node, inner, "partial")
        elif resolved is not None:
            kind = "call"
            if resolved in self.graph.classes:
                kind = "constructor"
            if attr_name in _TASK_SPAWNERS or resolved in (
                "asyncio.create_task", "asyncio.ensure_future"
            ):
                kind = "create_task"
            site = self._record_call(node, resolved, kind)
        elif isinstance(func_expr, ast.Call):
            # Immediate invocation: partial(f, ...)(...)
            inner_dotted = self.resolve(func_expr.func)
            if inner_dotted in ("functools.partial", "partial"):
                inner = (
                    self._extract_callable(func_expr.args[0])
                    if func_expr.args
                    else None
                )
                if inner is not None:
                    site = self._record_call(node, inner, "call")
        elif attr_name is not None and attr_name in _TASK_SPAWNERS:
            # tg.create_task(...) on an unresolvable receiver.
            site = self._record_call(
                node, f"asyncio.{attr_name}", "create_task"
            )

        if site is not None and self._stmt_call is node:
            frame.func.bare_calls.append(site)
        self.generic_visit(node)

    def _receiver_tag(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, ast.Name) and self._frames:
            return self._frames[-1].locals.get(node.id)
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ) and node.value.id == "self":
            class_key = self._class_key()
            if class_key is not None and class_key in self.graph.classes:
                return self.graph.classes[class_key].attr_types.get(node.attr)
        return None

    def _record_call(
        self, node: ast.Call, target: str, kind: str
    ) -> CallSite:
        site = CallSite(
            lineno=node.lineno,
            col=node.col_offset,
            target=target,
            kind=kind,
            awaited=self._await_value is node,
        )
        self._frames[-1].func.calls.append(site)
        return site

    def _handle_barrier(self, node: ast.Call, attr_name: str) -> None:
        """Executor/loop dispatch: no taint edge through the callable."""
        callable_index: Optional[int] = None
        entry_desc: Optional[str] = None
        if attr_name == "run_in_executor":
            callable_index, entry_desc = 1, "run_in_executor"
        elif attr_name == "to_thread":
            callable_index, entry_desc = 0, "asyncio.to_thread"
        elif attr_name == "call_soon_threadsafe":
            # The target runs ON the loop — the sanctioned bridge.  No
            # edge, no thread entry.
            callable_index, entry_desc = 0, None
        for index, arg in enumerate(node.args):
            if index == callable_index:
                if entry_desc is not None:
                    self._dispatch_entry(arg, entry_desc)
                continue
            self.visit(arg)
        for keyword in node.keywords:
            self.visit(keyword.value)

    def _dispatch_entry(
        self, node: Optional[ast.AST], desc: str
    ) -> None:
        if node is None:
            return
        target = self._extract_callable(node)
        if target is not None:
            self.graph._entries.append((target, desc))


# ---------------------------------------------------------------------------
# Propagation
# ---------------------------------------------------------------------------


def _propagate(graph: CallGraph, config: LintConfig) -> None:
    extra_blocking = dict(BLOCKING_CALLS)
    for dotted in config.blocking:
        extra_blocking.setdefault(dotted, "configured blocking root")

    def external_reason(target: str) -> Optional[str]:
        reason = extra_blocking.get(target)
        if reason is not None:
            return reason
        return graph.blocking_reason(target)

    # Resolved project edges (taint flows through calls, constructors).
    callers_of: Dict[str, List[Tuple[str, CallSite]]] = {}
    callees_of: Dict[str, List[str]] = {}
    for func in graph.functions.values():
        for site in func.calls:
            if site.kind not in ("call", "constructor"):
                continue
            callee = graph.resolve_function(site.target)
            if callee is None:
                continue
            callers_of.setdefault(callee.key, []).append((func.key, site))
            callees_of.setdefault(func.key, []).append(callee.key)

    # --- may-block: flows up from blocking roots ----------------------
    worklist: List[str] = []
    for func in graph.functions.values():
        for site in func.calls:
            if site.kind not in ("call", "constructor"):
                continue
            reason = external_reason(site.target)
            if reason is not None:
                graph.may_block[func.key] = BlockCause(site, reason)
                worklist.append(func.key)
                break
    while worklist:
        key = worklist.pop()
        for caller_key, site in callers_of.get(key, ()):
            if caller_key in graph.may_block:
                continue
            callee = graph.functions.get(key)
            if callee is not None and callee.is_async:
                # Awaiting an async function does not block the caller;
                # the async callee reports its own blocking calls.
                continue
            graph.may_block[caller_key] = BlockCause(site)
            worklist.append(caller_key)

    # --- hotness: flows down from seeds -------------------------------
    configured = set(config.hot_paths)
    for func in graph.functions.values():
        if func.key in configured:
            graph.hot[func.key] = "listed in [tool.repro-lint] hot-paths"
        elif func.marker == "hot":
            graph.hot[func.key] = "marked '# repro-lint: hot'"
    worklist = list(graph.hot)
    while worklist:
        key = worklist.pop()
        origin_func = graph.functions.get(key)
        origin = origin_func.display if origin_func is not None else key
        for callee_key in callees_of.get(key, ()):
            if callee_key in graph.hot:
                continue
            graph.hot[callee_key] = f"called from {origin}"
            worklist.append(callee_key)

    # --- thread context: flows down from dispatch entries -------------
    for target, desc in graph._entries:
        resolved = graph.resolve_function(target)
        if resolved is not None and resolved.key not in graph.thread_ctx:
            graph.thread_ctx[resolved.key] = desc
    worklist = list(graph.thread_ctx)
    while worklist:
        key = worklist.pop()
        desc = graph.thread_ctx[key]
        origin_func = graph.functions.get(key)
        origin = origin_func.display if origin_func is not None else key
        for callee_key in callees_of.get(key, ()):
            if callee_key in graph.thread_ctx:
                continue
            callee = graph.functions.get(callee_key)
            if callee is not None and callee.is_async:
                continue
            graph.thread_ctx[callee_key] = f"called from {origin} ({desc})"
            worklist.append(callee_key)


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def build_call_graph(
    modules: Sequence[Tuple[str, ast.AST, Sequence[str]]],
    config: LintConfig,
) -> CallGraph:
    """Build and propagate the graph for ``(label, tree, lines)`` files."""
    graph = CallGraph()
    infos: List[_ModuleInfo] = []
    for label, tree, lines in modules:
        name, is_package = module_name_for(label)
        info = _ModuleInfo(
            name=name, path=label, lines=lines, tree=tree,
            is_package=is_package,
        )
        infos.append(info)
        graph.lines[label] = lines
        graph.modules[name] = info
    for info in infos:
        _SymbolCollector(info, graph).visit(info.tree)
    for info in infos:
        _BodyCollector(info, graph).visit(info.tree)
    _propagate(graph, config)
    return graph


# ---------------------------------------------------------------------------
# Project-scoped rules
# ---------------------------------------------------------------------------


class ProjectRule(Rule):
    """A rule that runs once over the whole-project call graph.

    File rules consume AST events; project rules implement
    :meth:`check` instead and report against graph locations.  They
    share the severity/disable/suppression/baseline machinery with file
    rules — the engine applies each file's suppression map to project
    findings exactly as it does to per-file ones.
    """

    scope = "project"

    def check(self, graph: CallGraph, config: LintConfig) -> None:
        raise NotImplementedError

    def report_site(
        self,
        graph: CallGraph,
        path: str,
        lineno: int,
        col: int,
        message: str,
        suggestion: Optional[str] = None,
    ) -> None:
        self.findings.append(
            Finding(
                path=path,
                line=lineno,
                col=col,
                code=self.code,
                message=message,
                severity=self.severity,
                suggestion=suggestion,
                source_line=graph.source_line(path, lineno),
            )
        )
