"""Shared AST infrastructure: facts collection and event dispatch.

The engine analyses each file in two passes:

1. :class:`SetTypeCollector` records which names and attributes are
   *set-typed* (assigned from a set expression or annotated ``Set``/
   ``FrozenSet``), plus which names each scope binds — the facts rules
   need but should not each re-derive.

2. :class:`Analyzer` walks the tree once more, resolves dotted
   references through the import map, and dispatches *semantic events*
   (a call resolved to ``time.time``, an iteration over a set-typed
   expression, a ``lambda`` handed to a scheduling API) to every
   registered :class:`Rule`.

Rules therefore contain no traversal code: they subscribe to events and
emit findings.  Adding a rule means subclassing :class:`Rule`,
implementing the relevant ``on_*`` hooks, and registering it in
:mod:`repro.lint.rules` — the walk itself never changes.

The analysis is deliberately intra-file and best-effort: it resolves
imports, ``self`` attributes of the defining class, and (via a
project-wide attribute table built by the engine) set-typed attribute
*names* seen anywhere in the linted tree.  It does not type-infer
across call boundaries; the rules' messages say what was matched so a
false positive is cheap to suppress with a rationale.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from .findings import Finding, Severity

#: Methods that put a callback onto the simulator's event queue.
SCHEDULING_METHODS = frozenset(
    {"schedule", "schedule_at", "call_every", "call_later", "call_at",
     "call_soon"}
)

#: Set methods whose result is itself a set.
_SET_PRODUCING_METHODS = frozenset(
    {"difference", "union", "intersection", "symmetric_difference", "copy"}
)

#: Builtin consumers whose output does not depend on input order.
ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"sorted", "min", "max", "sum", "len", "any", "all", "set", "frozenset"}
)

#: Builtin consumers that materialize input order.
ORDER_SENSITIVE_CONSUMERS = frozenset(
    {"list", "tuple", "iter", "enumerate", "reversed"}
)

#: Names resolved as builtins when nothing in scope shadows them.
_BUILTINS_OF_INTEREST = frozenset(
    {"id", "hash", "set", "frozenset"} | ORDER_SENSITIVE_CONSUMERS
    | ORDER_INSENSITIVE_CONSUMERS
)

#: Modules assumed even when the import is missing, so a pasted
#: ``time.time()`` without its import still resolves (CI's synthetic
#: violation guard relies on this).
_FALLBACK_MODULES = {
    "time": "time",
    "datetime": "datetime",
    "random": "random",
    "numpy": "numpy",
    "np": "numpy",
}

_SET_ANNOTATION_NAMES = frozenset(
    {"set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"}
)


@dataclass
class FileFacts:
    """Pass-1 output: where the sets live and what each scope binds."""

    #: (scope key, variable name) pairs known to hold a set.
    local_sets: Set[Tuple[str, str]] = field(default_factory=set)
    #: (class scope key, attribute name) pairs known to hold a set.
    attr_sets: Set[Tuple[str, str]] = field(default_factory=set)
    #: Attribute names assigned/annotated as sets anywhere in the file —
    #: merged across files into the engine's project-wide table.
    set_attr_names: Set[str] = field(default_factory=set)
    #: Names bound at module scope (shadow detection for builtins).
    module_bound: Set[str] = field(default_factory=set)


@dataclass
class FileContext:
    """Everything a rule may consult when handling an event."""

    path: str
    lines: Sequence[str]
    facts: FileFacts
    #: Set-typed attribute names from the whole linted tree.
    global_set_attrs: FrozenSet[str] = frozenset()
    #: True when the file lies inside the DET002 wall-clock allowlist.
    clock_allowlisted: bool = False

    def source_line(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1].strip()
        return ""


class Rule:
    """Base class for lint rules; subclasses implement ``on_*`` hooks."""

    code: str = ""
    name: str = ""
    summary: str = ""
    default_severity: str = Severity.ERROR
    #: Longer prose for ``repro lint --explain CODE``.
    rationale: str = ""
    #: Worked before/after example for ``--explain CODE`` (optional).
    example: str = ""
    #: "file" rules consume AST events; "project" rules (see
    #: :mod:`repro.lint.callgraph`) run once over the call graph.
    scope: str = "file"

    def __init__(self, severity: Optional[str] = None) -> None:
        self.severity = Severity.validate(
            severity if severity is not None else self.default_severity
        )
        self.findings: List[Finding] = []

    def report(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
        suggestion: Optional[str] = None,
    ) -> None:
        lineno = getattr(node, "lineno", 1)
        self.findings.append(
            Finding(
                path=ctx.path,
                line=lineno,
                col=getattr(node, "col_offset", 0),
                code=self.code,
                message=message,
                severity=self.severity,
                suggestion=suggestion,
                source_line=ctx.source_line(lineno),
            )
        )

    # ------------------------------------------------------------------
    # Event hooks (default: ignore)
    # ------------------------------------------------------------------
    def on_call(self, ctx: FileContext, node: ast.Call, resolved: str) -> None:
        """A call whose target resolved to the dotted name ``resolved``."""

    def on_reference(
        self, ctx: FileContext, node: ast.AST, resolved: str
    ) -> None:
        """A non-call load of a name resolving to ``resolved`` (covers
        callbacks like ``default_factory=time.time``)."""

    def on_iteration(
        self, ctx: FileContext, node: ast.AST, iter_node: ast.AST, context: str
    ) -> None:
        """Order-sensitive iteration over a set-typed expression."""

    def on_set_pop(self, ctx: FileContext, node: ast.Call) -> None:
        """``.pop()`` on a set-typed expression (arbitrary element)."""

    def on_schedule_callback(
        self,
        ctx: FileContext,
        call: ast.Call,
        arg: ast.AST,
        kind: str,
        method: str,
    ) -> None:
        """An unpicklable callback (``kind`` in {"lambda", "nested-def"})
        passed to scheduling method ``method``."""

    def on_lambda_attr(
        self, ctx: FileContext, node: ast.AST, target: str
    ) -> None:
        """A ``lambda`` stored on a ``self`` attribute named ``target``."""


class _ScopeFrame:
    __slots__ = ("kind", "name", "bound", "local_defs")

    def __init__(self, kind: str, name: str) -> None:
        self.kind = kind  # "module" | "class" | "function"
        self.name = name
        self.bound: Set[str] = set()
        self.local_defs: Set[str] = set()


def _scope_key(frames: Sequence[_ScopeFrame]) -> str:
    return "/".join(frame.name for frame in frames if frame.name)


def _annotation_is_set(node: Optional[ast.AST]) -> bool:
    if node is None:
        return False
    target = node.value if isinstance(node, ast.Subscript) else node
    if isinstance(target, ast.Name):
        return target.id in _SET_ANNOTATION_NAMES
    if isinstance(target, ast.Attribute):
        return target.attr in _SET_ANNOTATION_NAMES
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # `from __future__ import annotations` keeps annotations as AST
        # here, but stringified annotations appear in older code.
        head = node.value.split("[", 1)[0].strip().rsplit(".", 1)[-1]
        return head in _SET_ANNOTATION_NAMES
    return False


class SetTypeCollector(ast.NodeVisitor):
    """Pass 1: record set-typed bindings and scope-bound names."""

    def __init__(self) -> None:
        self.facts = FileFacts()
        self._frames: List[_ScopeFrame] = [_ScopeFrame("module", "")]

    # -- scope management ------------------------------------------------
    def _enter(self, kind: str, name: str, node: ast.AST) -> None:
        self._frames[-1].bound.add(name)
        self._frames.append(_ScopeFrame(kind, name))
        self.generic_visit(node)
        self._frames.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._collect_params(node)
        self._enter("function", node.name, node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._collect_params(node)
        self._enter("function", node.name, node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter("class", node.name, node)

    def _collect_params(self, node) -> None:
        # Params are bound in the *function's* scope, which is entered
        # next; record set-typed params against that scope key.
        scope = _scope_key(self._frames) + (
            "/" if _scope_key(self._frames) else ""
        ) + node.name
        args = node.args
        for arg in (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        ):
            if _annotation_is_set(arg.annotation):
                self.facts.local_sets.add((scope, arg.arg))

    # -- binding collection ---------------------------------------------
    def _bind(self, name: str) -> None:
        self._frames[-1].bound.add(name)
        if len(self._frames) == 1:
            self.facts.module_bound.add(name)

    def _is_set_value(self, value: Optional[ast.AST]) -> bool:
        if value is None:
            return False
        if isinstance(value, (ast.Set, ast.SetComp)):
            return True
        if isinstance(value, ast.Call) and isinstance(value.func, ast.Name):
            return value.func.id in ("set", "frozenset")
        return False

    def _record_target(self, target: ast.AST, is_set: bool) -> None:
        scope = _scope_key(self._frames)
        if isinstance(target, ast.Name):
            self._bind(target.id)
            pair = (scope, target.id)
            if is_set:
                self.facts.local_sets.add(pair)
            else:
                self.facts.local_sets.discard(pair)
        elif isinstance(target, ast.Attribute) and isinstance(
            target.value, ast.Name
        ) and target.value.id == "self":
            class_scope = self._enclosing_class_key()
            if class_scope is None:
                return
            pair = (class_scope, target.attr)
            if is_set:
                self.facts.attr_sets.add(pair)
                self.facts.set_attr_names.add(target.attr)
            else:
                self.facts.attr_sets.discard(pair)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._record_target(element, False)

    def _enclosing_class_key(self) -> Optional[str]:
        for index in range(len(self._frames) - 1, -1, -1):
            if self._frames[index].kind == "class":
                return _scope_key(self._frames[: index + 1])
        return None

    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self._is_set_value(node.value)
        for target in node.targets:
            self._record_target(target, is_set)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        is_set = _annotation_is_set(node.annotation) or self._is_set_value(
            node.value
        )
        self._record_target(node.target, is_set)
        self.generic_visit(node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self._bind(alias.asname or alias.name.split(".", 1)[0])

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            self._bind(alias.asname or alias.name)

    def visit_For(self, node: ast.For) -> None:
        self._record_target(node.target, False)
        self.generic_visit(node)


class Analyzer(ast.NodeVisitor):
    """Pass 2: resolve references and dispatch events to the rules."""

    def __init__(self, ctx: FileContext, rules: Sequence[Rule]) -> None:
        self.ctx = ctx
        self.rules = list(rules)
        self._frames: List[_ScopeFrame] = [_ScopeFrame("module", "")]
        self._frames[0].bound |= ctx.facts.module_bound
        self._imports: Dict[str, str] = {}
        #: Generator expressions consumed by order-insensitive builtins
        #: (held by node object, compared by identity).
        self._insensitive_genexps: List[ast.GeneratorExp] = []

    # ------------------------------------------------------------------
    # Name resolution
    # ------------------------------------------------------------------
    def _dotted_parts(self, node: ast.AST) -> Optional[List[str]]:
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        return parts

    def _root_is_shadowed(self, root: str) -> bool:
        for frame in reversed(self._frames):
            if root in frame.bound and root not in self._imports:
                return True
        return False

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Dotted target of a Name/Attribute chain, or ``None``."""
        parts = self._dotted_parts(node)
        if parts is None:
            return None
        root, rest = parts[0], parts[1:]
        if root in self._imports:
            return ".".join([self._imports[root]] + rest)
        if self._root_is_shadowed(root):
            return None
        if root in _FALLBACK_MODULES and rest:
            return ".".join([_FALLBACK_MODULES[root]] + rest)
        if not rest and root in _BUILTINS_OF_INTEREST:
            return root
        return None

    # ------------------------------------------------------------------
    # Set-typedness
    # ------------------------------------------------------------------
    def is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
                return not self._root_is_shadowed(func.id)
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _SET_PRODUCING_METHODS
            ):
                return self.is_set_expr(func.value)
            return False
        if isinstance(node, ast.Name):
            for index in range(len(self._frames), 0, -1):
                key = (_scope_key(self._frames[:index]), node.id)
                if key in self.ctx.facts.local_sets:
                    return True
            return False
        if isinstance(node, ast.Attribute):
            if (
                isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                class_key = self._enclosing_class_key()
                if (
                    class_key is not None
                    and (class_key, node.attr) in self.ctx.facts.attr_sets
                ):
                    return True
            return node.attr in self.ctx.global_set_attrs
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set_expr(node.left) or self.is_set_expr(node.right)
        return False

    def _enclosing_class_key(self) -> Optional[str]:
        for index in range(len(self._frames) - 1, -1, -1):
            if self._frames[index].kind == "class":
                return _scope_key(self._frames[: index + 1])
        return None

    # ------------------------------------------------------------------
    # Scope tracking
    # ------------------------------------------------------------------
    def _enter_scope(self, kind: str, node, params: bool = False) -> None:
        self._frames[-1].bound.add(node.name)
        if self._frames[-1].kind == "function":
            self._frames[-1].local_defs.add(node.name)
        frame = _ScopeFrame(kind, node.name)
        if params:
            args = node.args
            for arg in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            ):
                frame.bound.add(arg.arg)
            if args.vararg is not None:
                frame.bound.add(args.vararg.arg)
            if args.kwarg is not None:
                frame.bound.add(args.kwarg.arg)
        self._frames.append(frame)
        self.generic_visit(node)
        self._frames.pop()

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter_scope("function", node, params=True)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter_scope("function", node, params=True)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter_scope("class", node)

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            name = alias.asname or alias.name.split(".", 1)[0]
            self._imports[name] = alias.name if alias.asname else name
            self._frames[-1].bound.add(name)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            # Relative imports stay unresolved: in-package modules are
            # this tool's *subjects*, not hazard sources.
            for alias in node.names:
                self._frames[-1].bound.add(alias.asname or alias.name)
            return
        for alias in node.names:
            name = alias.asname or alias.name
            self._imports[name] = f"{node.module}.{alias.name}"
            self._frames[-1].bound.add(name)

    # ------------------------------------------------------------------
    # Event dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, hook: str, *args) -> None:
        for rule in self.rules:
            getattr(rule, hook)(self.ctx, *args)

    def visit_Name(self, node: ast.Name) -> None:
        if isinstance(node.ctx, ast.Store):
            self._frames[-1].bound.add(node.id)
        elif isinstance(node.ctx, ast.Load):
            resolved = self.resolve(node)
            # Bare builtins stay out of the reference stream except the
            # identity pair, whose hazardous form (``key=id``) is a bare
            # Load.  Calls like ``id(x)`` reach the rules through this
            # same event (the Call's func Name is itself a Load), so
            # call-shaped and reference-shaped uses report exactly once.
            if resolved is not None and (
                "." in resolved or resolved in ("id", "hash")
            ):
                self._dispatch("on_reference", node, resolved)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if isinstance(node.ctx, ast.Load):
            resolved = self.resolve(node)
            if resolved is not None:
                self._dispatch("on_reference", node, resolved)
        self.generic_visit(node)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                self._frames[-1].bound.add(target.id)
            if (
                isinstance(node.value, ast.Lambda)
                and isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                self._dispatch("on_lambda_attr", node, target.attr)
        self.generic_visit(node)

    def _callback_kind(self, arg: ast.AST) -> Optional[str]:
        if isinstance(arg, ast.Lambda):
            return "lambda"
        if isinstance(arg, ast.Name):
            for frame in reversed(self._frames):
                if frame.kind != "function":
                    continue
                if arg.id in frame.local_defs:
                    return "nested-def"
        return None

    def _check_schedule_args(self, node: ast.Call, method: str) -> None:
        candidates = list(node.args) + [kw.value for kw in node.keywords]
        for arg in candidates:
            kind = self._callback_kind(arg)
            if kind is not None:
                self._dispatch("on_schedule_callback", node, arg, kind, method)
            elif isinstance(arg, ast.Call):
                func = arg.func
                is_partial = (
                    isinstance(func, ast.Name) and func.id == "partial"
                ) or (
                    isinstance(func, ast.Attribute) and func.attr == "partial"
                )
                if is_partial:
                    for inner in list(arg.args) + [
                        kw.value for kw in arg.keywords
                    ]:
                        inner_kind = self._callback_kind(inner)
                        if inner_kind is not None:
                            self._dispatch(
                                "on_schedule_callback",
                                node,
                                inner,
                                inner_kind,
                                method,
                            )

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.resolve(node.func)
        if resolved is not None:
            self._dispatch("on_call", node, resolved)
            if resolved in ORDER_INSENSITIVE_CONSUMERS:
                for arg in node.args:
                    if isinstance(arg, ast.GeneratorExp):
                        self._insensitive_genexps.append(arg)
            elif resolved in ORDER_SENSITIVE_CONSUMERS and node.args:
                if self.is_set_expr(node.args[0]):
                    self._dispatch(
                        "on_iteration", node, node.args[0], f"{resolved}()"
                    )
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in SCHEDULING_METHODS:
                self._check_schedule_args(node, func.attr)
            if func.attr == "join" and node.args and self.is_set_expr(
                node.args[0]
            ):
                self._dispatch("on_iteration", node, node.args[0], "join()")
            if func.attr == "pop" and not node.args and self.is_set_expr(
                func.value
            ):
                self._dispatch("on_set_pop", node)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if self.is_set_expr(node.iter):
            self._dispatch("on_iteration", node, node.iter, "for loop")
        self.generic_visit(node)

    def _check_comprehension(self, node, label: str) -> None:
        for comp in node.generators:
            if self.is_set_expr(comp.iter):
                self._dispatch("on_iteration", node, comp.iter, label)
        self.generic_visit(node)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self._check_comprehension(node, "list comprehension")

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self._check_comprehension(node, "dict comprehension")

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        if any(node is marked for marked in self._insensitive_genexps):
            self.generic_visit(node)
            return
        self._check_comprehension(node, "generator expression")

    # SetComp iterating a set is order-irrelevant: the result is a set.


def collect_facts(tree: ast.AST) -> FileFacts:
    """Run pass 1 over a parsed module."""
    collector = SetTypeCollector()
    collector.visit(tree)
    return collector.facts


def run_rules(
    tree: ast.AST, ctx: FileContext, rules: Sequence[Rule]
) -> List[Finding]:
    """Run pass 2, returning all findings the rules emitted."""
    Analyzer(ctx, rules).visit(tree)
    findings: List[Finding] = []
    for rule in rules:
        findings.extend(rule.findings)
        rule.findings = []
    return findings
