"""Grandfathered findings: the no-new-violations baseline.

A baseline entry is ``(path, code, fingerprint)`` where the fingerprint
hashes the *stripped source line text* rather than the line number — so
unrelated edits that shift a grandfathered violation up or down do not
resurrect it, while any edit to the offending line itself (including
fixing it) invalidates the entry.

Matching is count-aware: two identical violations on identical lines
need two baseline entries.  Entries that no longer match anything are
*stale*; they are reported (the violation was fixed — the baseline
should shrink) and dropped by ``repro lint --update-baseline``.  The
policy CI enforces is therefore monotone: the baseline only ever
shrinks, and new violations can never hide in it.
"""

from __future__ import annotations

import hashlib
import json
from collections import Counter
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Sequence, Tuple

from ..errors import LintError
from .findings import Finding

BASELINE_VERSION = 1


def fingerprint(path: str, code: str, source_line: str) -> str:
    """Stable identity of one violation, independent of line numbers."""
    digest = hashlib.sha256(
        f"{path}\x00{code}\x00{source_line.strip()}".encode("utf-8")
    )
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class BaselineEntry:
    path: str
    code: str
    fingerprint: str
    #: Line and message at the time the entry was recorded — purely
    #: informational, so a human can find the grandfathered site.
    line: int = 0
    message: str = ""

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.path, self.code, self.fingerprint)


@dataclass
class BaselineMatch:
    """Outcome of comparing current findings against a baseline."""

    new: List[Finding]
    baselined: List[Finding]
    stale: List[BaselineEntry]


class Baseline:
    """A committed list of grandfathered findings."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.exists():
            return cls()
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except ValueError as exc:
            raise LintError(f"corrupt baseline file {path}: {exc}") from exc
        if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
            raise LintError(
                f"baseline file {path} has unsupported version "
                f"{data.get('version')!r} (this build reads "
                f"{BASELINE_VERSION})"
            )
        entries = []
        for raw in data.get("findings", []):
            entries.append(
                BaselineEntry(
                    path=raw["path"],
                    code=raw["code"],
                    fingerprint=raw["fingerprint"],
                    line=raw.get("line", 0),
                    message=raw.get("message", ""),
                )
            )
        return cls(entries)

    def save(self, path: Path) -> None:
        data = {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "path": entry.path,
                    "code": entry.code,
                    "fingerprint": entry.fingerprint,
                    "line": entry.line,
                    "message": entry.message,
                }
                for entry in sorted(self.entries, key=lambda e: e.key)
            ],
        }
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(data, indent=2) + "\n", encoding="utf-8")

    # ------------------------------------------------------------------
    # Matching
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        return cls(
            [
                BaselineEntry(
                    path=finding.path,
                    code=finding.code,
                    fingerprint=fingerprint(
                        finding.path, finding.code, finding.source_line
                    ),
                    line=finding.line,
                    message=finding.message,
                )
                for finding in findings
            ]
        )

    def match(self, findings: Sequence[Finding]) -> BaselineMatch:
        """Split findings into new vs grandfathered, and find stale entries."""
        budget: Counter = Counter(entry.key for entry in self.entries)
        new: List[Finding] = []
        baselined: List[Finding] = []
        for finding in findings:
            key = (
                finding.path,
                finding.code,
                fingerprint(finding.path, finding.code, finding.source_line),
            )
            if budget.get(key, 0) > 0:
                budget[key] -= 1
                baselined.append(finding)
            else:
                new.append(finding)
        stale: List[BaselineEntry] = []
        remaining: Dict[Tuple[str, str, str], int] = dict(budget)
        for entry in self.entries:
            if remaining.get(entry.key, 0) > 0:
                remaining[entry.key] -= 1
                stale.append(entry)
        return BaselineMatch(new=new, baselined=baselined, stale=stale)

    def __len__(self) -> int:
        return len(self.entries)
