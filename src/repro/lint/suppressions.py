"""Per-line and per-file suppression comments.

Two forms, modelled on pylint's but with this tool's name so the two
cannot collide::

    x = time.time()  # repro-lint: disable=DET002  (why it is safe here)
    # repro-lint: disable-file=DET002,DET004

A bare ``disable`` (no ``=CODE`` list) silences every rule for that
line.  ``disable-file`` may appear on any line and applies to the whole
file — by convention it sits in the module docstring region with a
rationale next to it.  Suppressions apply to the line a finding is
*reported* on (a statement's first line); trailing text after the code
list is free-form rationale and ignored.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Sequence, Set

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-file|disable)"
    r"(?:\s*=\s*(?P<codes>[A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*))?"
)

#: Sentinel meaning "every rule code".
ALL_CODES = "*"


@dataclass
class SuppressionMap:
    """Parsed suppression directives for one file."""

    #: line number (1-based) -> codes disabled on that line.
    by_line: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    #: codes disabled for the entire file.
    file_wide: FrozenSet[str] = frozenset()
    #: directives whose codes matched no known rule (surfaced as
    #: diagnostics so a typo'd suppression cannot silently rot).
    unknown_codes: List[str] = field(default_factory=list)

    def suppressed(self, line: int, code: str) -> bool:
        if ALL_CODES in self.file_wide or code in self.file_wide:
            return True
        codes = self.by_line.get(line)
        if codes is None:
            return False
        return ALL_CODES in codes or code in codes


def parse_suppressions(
    source_lines: Sequence[str], known_codes: Sequence[str] = ()
) -> SuppressionMap:
    """Scan raw source lines for ``repro-lint`` directives.

    A regex scan (rather than the tokenizer) deliberately also matches
    directives inside strings; the cost is a pathological false
    suppression nobody writes, the benefit is that the scan cannot fail
    on source the AST parser already accepted.
    """
    suppressions = SuppressionMap()
    file_wide: Set[str] = set()
    known = set(known_codes)
    for lineno, text in enumerate(source_lines, start=1):
        if "repro-lint" not in text:
            continue
        for match in _DIRECTIVE.finditer(text):
            raw = match.group("codes")
            if raw is None:
                codes = {ALL_CODES}
            else:
                codes = {part.strip() for part in raw.split(",") if part.strip()}
                if known:
                    for code in sorted(codes - known - {ALL_CODES}):
                        suppressions.unknown_codes.append(
                            f"line {lineno}: unknown rule code {code!r} "
                            f"in suppression"
                        )
            if match.group("kind") == "disable-file":
                file_wide |= codes
            else:
                merged = set(suppressions.by_line.get(lineno, frozenset()))
                merged |= codes
                suppressions.by_line[lineno] = frozenset(merged)
    suppressions.file_wide = frozenset(file_wide)
    return suppressions
