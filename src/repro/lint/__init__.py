"""``repro lint`` — determinism & checkpoint-safety static analysis.

The simulator's two core guarantees — seed-stable runs and bit-identical
kill-and-resume checkpoints — are invariants of *how the code is
written*, not just of what it computes: a single ``time.time()`` in a
simulation path, one iteration over an unsorted ``set``, or a ``lambda``
landing on the event queue silently breaks them.  The runtime tests
catch such regressions after the fact; this package catches them at
review time, from the AST.

Rule catalog
------------
========  ==========================================================
DET001    unseeded global RNG (``random.*`` / ``numpy.random`` module
          functions) instead of an injected ``sim.random.stream``
DET002    wall-clock reads (``time.time``, ``datetime.now``, ...)
          outside the allowlisted store/perf boundary
DET003    ordering-sensitive iteration over ``set`` / ``frozenset``
DET004    ``id()`` / ``hash()`` as tie-breakers or keys
PICK001   ``lambda`` / nested-``def`` callbacks on the event queue or
          stored on snapshot-reachable objects
========  ==========================================================

Findings are suppressed per line (``# repro-lint: disable=DET002``),
per file (``# repro-lint: disable-file=DET002``), or grandfathered in a
committed baseline file; CI enforces a no-new-violations policy.
"""

from .baseline import Baseline, BaselineEntry, fingerprint
from .config import LintConfig, load_config
from .engine import LintResult, lint_paths
from .findings import Finding, Severity
from .rules import RULES, all_rules, get_rule

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "LintConfig",
    "LintResult",
    "RULES",
    "Severity",
    "all_rules",
    "fingerprint",
    "get_rule",
    "lint_paths",
    "load_config",
]
