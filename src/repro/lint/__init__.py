"""``repro lint`` — determinism, concurrency & hot-path static analysis.

The simulator's two core guarantees — seed-stable runs and bit-identical
kill-and-resume checkpoints — are invariants of *how the code is
written*, not just of what it computes: a single ``time.time()`` in a
simulation path, one iteration over an unsorted ``set``, or a ``lambda``
landing on the event queue silently breaks them.  The serve layer and
the fast lane add two more invariants of the same kind: nothing on the
event loop may block, and nothing on the hot path may allocate.  The
runtime tests catch such regressions after the fact; this package
catches them at review time, from the AST.

Rule catalog
------------
=========  =========================================================
DET001     unseeded global RNG (``random.*`` / ``numpy.random``
           module functions) instead of an injected
           ``sim.random.stream``
DET002     wall-clock reads (``time.time``, ``datetime.now``, ...)
           outside the allowlisted store/perf boundary
DET003     ordering-sensitive iteration over ``set`` / ``frozenset``
DET004     ``id()`` / ``hash()`` as tie-breakers or keys
PICK001    ``lambda`` / nested-``def`` callbacks on the event queue
           or stored on snapshot-reachable objects
ASYNC001   blocking call transitively reachable from an ``async
           def`` without ``run_in_executor`` / ``to_thread``
ASYNC002   coroutine constructed but never awaited
ASYNC003   ``create_task`` result discarded (GC can kill the task)
ASYNC004   loop-owned state mutated from thread context without
           ``call_soon_threadsafe``
HOT001     allocation-bearing construct in a hot-path function
           (``[tool.repro-lint] hot-paths`` / ``# repro-lint: hot``)
=========  =========================================================

DET/PICK rules are per-file; ASYNC/HOT rules are interprocedural — they
run over a project-wide call graph (:mod:`repro.lint.callgraph`) that
resolves methods via self-type inference, ``functools.partial``
wrappers, and aliased imports, then propagates may-block taint and
hot-path membership transitively.

Findings are suppressed per line (``# repro-lint: disable=DET002``),
per file (``# repro-lint: disable-file=DET002``), or grandfathered in a
committed baseline file; CI enforces a no-new-violations policy.
"""

from .baseline import Baseline, BaselineEntry, fingerprint
from .callgraph import CallGraph, ProjectRule, build_call_graph
from .config import LintConfig, load_config
from .engine import LintResult, lint_paths
from .findings import Finding, Severity
from .rules import FAMILIES, RULES, all_rules, family_of, get_rule
from .sarif import render_sarif

__all__ = [
    "Baseline",
    "BaselineEntry",
    "CallGraph",
    "FAMILIES",
    "Finding",
    "LintConfig",
    "LintResult",
    "ProjectRule",
    "RULES",
    "Severity",
    "all_rules",
    "build_call_graph",
    "family_of",
    "fingerprint",
    "get_rule",
    "lint_paths",
    "load_config",
    "render_sarif",
]
