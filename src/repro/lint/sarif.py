"""SARIF 2.1.0 output for ``repro lint --format sarif``.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests: uploading a run renders findings as inline PR
annotations.  The mapping is deliberately thin — one ``run`` with the
full rule catalog in ``tool.driver.rules`` (so the GitHub UI can show
the rationale without a round trip to the docs) and one ``result`` per
*new* finding.  Baselined findings are omitted: the SARIF channel
exists to annotate regressions, and the baseline already absorbs the
accepted debt.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .baseline import fingerprint
from .engine import LintResult
from .findings import Finding, Severity
from .rules import RULES

_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: repro-lint severity -> SARIF level.
_LEVELS: Dict[str, str] = {
    Severity.ERROR: "error",
    Severity.WARNING: "warning",
    Severity.INFO: "note",
}


def _rule_descriptor(code: str) -> dict:
    rule = RULES[code]
    return {
        "id": code,
        "name": rule.name,
        "shortDescription": {"text": rule.summary},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.default_severity, "warning"),
        },
        "properties": {"tags": ["repro-lint"]},
    }


def _result(finding: Finding) -> dict:
    message = finding.message
    if finding.suggestion:
        message = f"{message} — {finding.suggestion}"
    return {
        "ruleId": finding.code,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {
            "reproLint/v1": fingerprint(
                finding.path, finding.code, finding.source_line or ""
            ),
        },
    }


def render_sarif(result: LintResult) -> str:
    """The full SARIF document for one lint run, as a JSON string."""
    results: List[dict] = [_result(f) for f in result.new_findings]
    for path, error in result.parse_errors:
        results.append(
            {
                "ruleId": "parse-error",
                "level": "error",
                "message": {"text": f"cannot lint: {error}"},
                "locations": [
                    {
                        "physicalLocation": {
                            "artifactLocation": {
                                "uri": path,
                                "uriBaseId": "%SRCROOT%",
                            },
                            "region": {"startLine": 1, "startColumn": 1},
                        }
                    }
                ],
            }
        )
    document = {
        "$schema": _SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "rules": [
                            _rule_descriptor(code)
                            for code in sorted(RULES)
                        ],
                    }
                },
                "results": results,
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)
