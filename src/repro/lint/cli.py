"""CLI glue for ``repro lint``.

Exit codes: 0 — clean (or every finding baselined / info-severity);
1 — new error- or warning-severity findings, or unparseable files;
2 — usage or configuration problems (bad rule code, corrupt baseline).
"""

from __future__ import annotations

import argparse
import json
import textwrap
from pathlib import Path
from typing import Optional

from ..errors import LintError
from .baseline import Baseline
from .config import load_config
from .engine import lint_paths, render_text
from .rules import FAMILIES, RULES, family_of, get_rule
from .sarif import render_sarif


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro lint`` options to an argparse parser."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: [tool.repro-lint] "
        "paths, i.e. src)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        help="output format (default: text; sarif renders as GitHub "
        "code-scanning annotations)",
    )
    parser.add_argument(
        "--baseline", type=str, default=None, metavar="FILE",
        help="baseline file (default: from pyproject, "
        "repro-lint.baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    parser.add_argument(
        "--verbose", action="store_true",
        help="also print baselined findings",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--explain", type=str, default=None, metavar="CODE",
        help="print one rule's full rationale and exit",
    )
    parser.set_defaults(func=run_from_args)


def _print_catalog() -> None:
    families: dict = {}
    for code in sorted(RULES):
        families.setdefault(family_of(code), []).append(code)
    first = True
    for family in sorted(families):
        if not first:
            print()
        first = False
        print(f"{family} — {FAMILIES.get(family, 'other')}")
        for code in families[family]:
            rule = RULES[code]
            print(f"  {code}  [{rule.default_severity:7}] {rule.summary}")


def _print_explanation(code: str) -> None:
    rule = get_rule(code)
    print(f"{rule.code} ({rule.name}) — default severity: "
          f"{rule.default_severity}")
    print(f"  {rule.summary}")
    print()
    print(textwrap.fill(rule.rationale, width=76, initial_indent="  ",
                        subsequent_indent="  "))
    if rule.example:
        print()
        print("  example:")
        print()
        for line in rule.example.splitlines():
            print(f"  {line}" if line else "")
    print()
    print(f"  suppress with: # repro-lint: disable={rule.code}  (rationale)")


def run_from_args(args: argparse.Namespace) -> int:
    try:
        return _run(args)
    except LintError as exc:
        print(f"repro lint: {exc}")
        return 2


def _run(args: argparse.Namespace) -> int:
    if args.list_rules:
        _print_catalog()
        return 0
    if args.explain is not None:
        _print_explanation(args.explain)
        return 0

    config = load_config()
    paths = args.paths if args.paths else list(config.paths)

    baseline_path: Optional[Path]
    if args.baseline is not None:
        baseline_path = Path(args.baseline)
    else:
        baseline_path = config.baseline_path()

    if args.update_baseline:
        result = lint_paths(paths, config, baseline=None)
        if result.parse_errors:
            for path, error in result.parse_errors:
                print(f"{path}: cannot lint: {error}")
            return 1
        Baseline.from_findings(result.findings).save(baseline_path)
        print(
            f"wrote {len(result.findings)} grandfathered finding(s) to "
            f"{baseline_path}"
        )
        return 0

    baseline = None if args.no_baseline else Baseline.load(baseline_path)
    result = lint_paths(paths, config, baseline=baseline)

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_text(result, verbose=args.verbose))
    return 1 if result.failed else 0
