"""The lint engine: file discovery, the two analysis passes, filtering.

:func:`lint_paths` is the library entry point the CLI and tests share.
It walks the requested paths, builds the project-wide set-attribute
table (pass 0), analyses every file (passes 1 and 2 from
:mod:`repro.lint.visitor`), applies suppression comments, then matches
the survivors against the baseline.  The result carries everything a
front-end needs to render text or JSON and to compute an exit code.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from .baseline import Baseline, BaselineMatch
from .callgraph import ProjectRule, build_call_graph
from .config import LintConfig, normalize_path
from .findings import Finding, Severity, sort_findings
from .rules import all_rules
from .suppressions import SuppressionMap, parse_suppressions
from .visitor import FileContext, FileFacts, collect_facts, run_rules

#: Directories never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".hg", "node_modules"})


@dataclass
class LintResult:
    """Everything one lint run produced."""

    #: All unsuppressed findings, sorted.
    findings: List[Finding] = field(default_factory=list)
    #: Findings not covered by the baseline (these gate CI).
    new_findings: List[Finding] = field(default_factory=list)
    #: Findings absorbed by the baseline.
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (fixed violations).
    stale_baseline: List[str] = field(default_factory=list)
    #: Files that could not be parsed, with the reason.
    parse_errors: List[Tuple[str, str]] = field(default_factory=list)
    #: Diagnostics (unknown suppression codes etc.), per file.
    diagnostics: List[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def failed(self) -> bool:
        """Whether this run should exit non-zero."""
        if self.parse_errors:
            return True
        return any(
            Severity.fails(finding.severity) for finding in self.new_findings
        )

    def to_dict(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "new_findings": [f.to_dict() for f in self.new_findings],
            "baselined_findings": [f.to_dict() for f in self.baselined],
            "stale_baseline": list(self.stale_baseline),
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in self.parse_errors
            ],
            "diagnostics": list(self.diagnostics),
            "failed": self.failed,
        }


def iter_python_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under ``paths``, deterministically ordered."""
    found: List[Path] = []
    for path in paths:
        if path.is_file():
            if path.suffix == ".py":
                found.append(path)
        elif path.is_dir():
            for candidate in path.rglob("*.py"):
                if not any(part in _SKIP_DIRS for part in candidate.parts):
                    found.append(candidate)
    return sorted(set(found), key=lambda p: normalize_path(str(p)))


def _relative_label(path: Path, root: Optional[str]) -> str:
    """The repo-relative label findings and baselines use for ``path``."""
    resolved = path.resolve()
    if root is not None:
        try:
            return normalize_path(str(resolved.relative_to(Path(root).resolve())))
        except ValueError:
            pass
    try:
        return normalize_path(str(resolved.relative_to(Path.cwd())))
    except ValueError:
        return normalize_path(str(path))


def _parse(path: Path) -> Tuple[Optional[ast.AST], Optional[str], List[str]]:
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return None, str(exc), []
    lines = source.splitlines()
    try:
        return ast.parse(source, filename=str(path)), None, lines
    except SyntaxError as exc:
        return None, f"syntax error: {exc.msg} (line {exc.lineno})", lines


def lint_paths(
    paths: Iterable[str],
    config: Optional[LintConfig] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``paths`` and compare against ``baseline`` (None: skip)."""
    config = config if config is not None else LintConfig()
    result = LintResult()
    files = iter_python_files([Path(p) for p in paths])

    # Pass 0: facts for every file, then the project-wide table of
    # attribute names known to hold sets (so `peer.known_addrs` is
    # recognized in node.py even though Peer lives in peer.py).
    parsed: List[Tuple[Path, str, ast.AST, List[str], FileFacts]] = []
    attr_names: set = set()
    for path in files:
        label = _relative_label(path, config.root)
        tree, error, lines = _parse(path)
        if tree is None:
            result.parse_errors.append((label, error or "unreadable"))
            continue
        facts = collect_facts(tree)
        attr_names |= facts.set_attr_names
        parsed.append((path, label, tree, lines, facts))
    global_set_attrs: FrozenSet[str] = frozenset(attr_names)

    known_codes = [rule.code for rule in all_rules()]
    all_findings: List[Finding] = []
    suppression_maps: Dict[str, SuppressionMap] = {}
    enabled = all_rules(config.severity, config.disable)
    file_rules = [r for r in enabled if not isinstance(r, ProjectRule)]
    project_rules = [r for r in enabled if isinstance(r, ProjectRule)]
    for path, label, tree, lines, facts in parsed:
        ctx = FileContext(
            path=label,
            lines=lines,
            facts=facts,
            global_set_attrs=global_set_attrs,
            clock_allowlisted=config.clock_allowlisted(label),
        )
        findings = run_rules(tree, ctx, file_rules)
        suppressions = parse_suppressions(lines, known_codes)
        suppression_maps[label] = suppressions
        for note in suppressions.unknown_codes:
            result.diagnostics.append(f"{label}: {note}")
        all_findings.extend(
            finding
            for finding in findings
            if not suppressions.suppressed(finding.line, finding.code)
        )
        result.files_checked += 1

    # Pass 3: the interprocedural rules run once over the project call
    # graph; their findings flow through the same per-file suppression
    # maps (and, below, the same baseline) as per-file findings.
    if project_rules and parsed:
        graph = build_call_graph(
            [(label, tree, lines) for _, label, tree, lines, _ in parsed],
            config,
        )
        for rule in project_rules:
            rule.check(graph, config)
            findings, rule.findings = rule.findings, []
            for finding in findings:
                file_map = suppression_maps.get(finding.path)
                if file_map is not None and file_map.suppressed(
                    finding.line, finding.code
                ):
                    continue
                all_findings.append(finding)

    result.findings = sort_findings(all_findings)
    if baseline is None:
        result.new_findings = list(result.findings)
        return result
    match: BaselineMatch = baseline.match(result.findings)
    result.new_findings = sort_findings(match.new)
    result.baselined = sort_findings(match.baselined)
    result.stale_baseline = [
        f"{entry.path}:{entry.line}: {entry.code} {entry.message} "
        f"[{entry.fingerprint}]"
        for entry in match.stale
    ]
    return result


def render_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report."""
    lines: List[str] = []
    for path, error in result.parse_errors:
        lines.append(f"{path}: cannot lint: {error}")
    for finding in result.new_findings:
        lines.append(finding.render())
    if verbose:
        for finding in result.baselined:
            lines.append(f"{finding.render()} (baselined)")
    for note in result.diagnostics:
        lines.append(f"note: {note}")
    for stale in result.stale_baseline:
        lines.append(
            f"stale baseline entry (violation fixed — run "
            f"--update-baseline): {stale}"
        )
    counts: Dict[str, int] = {}
    for finding in result.new_findings:
        counts[finding.code] = counts.get(finding.code, 0) + 1
    summary = ", ".join(
        f"{code}: {count}" for code, count in sorted(counts.items())
    )
    lines.append(
        f"checked {result.files_checked} file(s): "
        f"{len(result.new_findings)} new finding(s)"
        + (f" ({summary})" if summary else "")
        + (
            f", {len(result.baselined)} baselined"
            if result.baselined
            else ""
        )
    )
    return "\n".join(lines)
