"""Lint configuration, loaded from ``[tool.repro-lint]`` in pyproject.toml.

The config answers three questions the rules cannot answer from the AST
alone: *which* files are linted by default, *where* the wall-clock
boundary lies (DET002's allowlist), and how severe each rule is in this
repository.  Everything has a working default so ``repro lint`` runs
usefully even without a pyproject section (or on Python < 3.11 where
``tomllib`` is unavailable).
"""

from __future__ import annotations

import posixpath
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, Optional, Tuple

from ..errors import LintError

try:  # Python >= 3.11; older interpreters fall back to defaults.
    import tomllib
except ImportError:  # pragma: no cover - version-dependent
    tomllib = None  # type: ignore[assignment]


class LintConfigError(LintError):
    """Raised for malformed ``[tool.repro-lint]`` tables."""


DEFAULT_BASELINE = "repro-lint.baseline.json"


@dataclass(frozen=True)
class LintConfig:
    """Effective lint settings for one run."""

    #: Paths linted when the CLI is invoked without positional paths.
    paths: Tuple[str, ...] = ("src",)
    #: Baseline file, relative to the config root.
    baseline: str = DEFAULT_BASELINE
    #: Path prefixes where DET002 (wall-clock reads) is allowed.  The
    #: perf recorder *measures* wall time by design; it is the canonical
    #: member of this list.
    clock_allowlist: Tuple[str, ...] = ("src/repro/perf",)
    #: Rule codes disabled outright.
    disable: Tuple[str, ...] = ()
    #: Per-rule severity overrides (code -> severity).
    severity: Dict[str, str] = field(default_factory=dict)
    #: Dotted function keys (``module.Qualname``) seeding HOT001's
    #: hot-path propagation, alongside ``# repro-lint: hot`` markers.
    hot_paths: Tuple[str, ...] = ()
    #: Extra dotted callables treated as blocking roots by ASYNC001.
    blocking: Tuple[str, ...] = ()
    #: Directory the config was loaded from (resolves the baseline).
    root: Optional[str] = None

    def baseline_path(self) -> Path:
        base = Path(self.baseline)
        if base.is_absolute() or self.root is None:
            return base
        return Path(self.root) / base

    def severity_for(self, code: str, default: str) -> str:
        return self.severity.get(code, default)

    def rule_enabled(self, code: str) -> bool:
        return code not in self.disable

    def clock_allowlisted(self, path: str) -> bool:
        """Whether ``path`` (repo-relative) sits inside the clock boundary."""
        norm = normalize_path(path)
        for prefix in self.clock_allowlist:
            pref = normalize_path(prefix)
            if norm == pref or norm.startswith(pref + "/"):
                return True
        return False


def normalize_path(path: str) -> str:
    """Forward-slashed, ``./``-free form used for all path comparisons."""
    norm = posixpath.normpath(str(path).replace("\\", "/"))
    return norm[2:] if norm.startswith("./") else norm


def find_pyproject(start: Path) -> Optional[Path]:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    current = start.resolve()
    for candidate in (current, *current.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def _as_str_tuple(table: dict, key: str, where: str) -> Optional[Tuple[str, ...]]:
    if key not in table:
        return None
    value = table[key]
    if not isinstance(value, list) or not all(
        isinstance(item, str) for item in value
    ):
        raise LintConfigError(f"{where}.{key} must be a list of strings")
    return tuple(value)


def load_config(start: Optional[Path] = None) -> LintConfig:
    """Load the config for the tree containing ``start`` (default: cwd).

    Missing pyproject, missing ``[tool.repro-lint]`` table, or a Python
    without ``tomllib`` all yield the defaults; a *malformed* table is
    an error — silently ignoring a typo'd config would un-gate CI.
    """
    start = start if start is not None else Path.cwd()
    pyproject = find_pyproject(start)
    if pyproject is None:
        return LintConfig()
    config = LintConfig(root=str(pyproject.parent))
    if tomllib is None:  # pragma: no cover - version-dependent
        return config
    try:
        data = tomllib.loads(pyproject.read_text(encoding="utf-8"))
    except tomllib.TOMLDecodeError as exc:
        raise LintConfigError(f"cannot parse {pyproject}: {exc}") from exc
    table = data.get("tool", {}).get("repro-lint")
    if table is None:
        return config
    if not isinstance(table, dict):
        raise LintConfigError("[tool.repro-lint] must be a table")
    where = "[tool.repro-lint]"
    paths = _as_str_tuple(table, "paths", where)
    if paths is not None:
        config = replace(config, paths=paths)
    allow = _as_str_tuple(table, "clock-allowlist", where)
    if allow is not None:
        config = replace(config, clock_allowlist=allow)
    disable = _as_str_tuple(table, "disable", where)
    if disable is not None:
        config = replace(config, disable=disable)
    hot_paths = _as_str_tuple(table, "hot-paths", where)
    if hot_paths is not None:
        config = replace(config, hot_paths=hot_paths)
    blocking = _as_str_tuple(table, "blocking", where)
    if blocking is not None:
        config = replace(config, blocking=blocking)
    baseline = table.get("baseline")
    if baseline is not None:
        if not isinstance(baseline, str):
            raise LintConfigError(f"{where}.baseline must be a string")
        config = replace(config, baseline=baseline)
    severity = table.get("severity")
    if severity is not None:
        if not isinstance(severity, dict):
            raise LintConfigError(f"{where}.severity must be a table")
        from .findings import Severity

        checked: Dict[str, str] = {}
        for code, level in severity.items():
            if not isinstance(level, str) or level not in Severity.ALL:
                raise LintConfigError(
                    f"{where}.severity.{code} must be one of "
                    f"{', '.join(Severity.ALL)}"
                )
            checked[str(code)] = level
        config = replace(config, severity=checked)
    return config
