"""The unit of lint output: a :class:`Finding` with a severity."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional


class Severity:
    """Finding severities, ordered by how loudly CI should object.

    ``ERROR`` and ``WARNING`` findings fail a lint run unless they are
    suppressed or baselined; ``INFO`` findings are reported but never
    change the exit code (use it to demote a rule in
    ``[tool.repro-lint.severity]`` while a cleanup is in flight).
    """

    ERROR = "error"
    WARNING = "warning"
    INFO = "info"

    ALL = (ERROR, WARNING, INFO)

    @classmethod
    def validate(cls, value: str) -> str:
        if value not in cls.ALL:
            raise ValueError(
                f"unknown severity {value!r} (want one of {', '.join(cls.ALL)})"
            )
        return value

    @classmethod
    def fails(cls, value: str) -> bool:
        """Whether a finding at this severity should fail the run."""
        return value in (cls.ERROR, cls.WARNING)


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    severity: str = Severity.ERROR
    #: Short remediation hint ("wrap in sorted(...)", "use
    #: functools.partial"); rendered after the message.
    suggestion: Optional[str] = None
    #: The stripped source line, used for baseline fingerprinting.
    source_line: str = field(default="", compare=False)

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def render(self) -> str:
        text = f"{self.location}: {self.code} [{self.severity}] {self.message}"
        if self.suggestion:
            text += f" — {self.suggestion}"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "suggestion": self.suggestion,
        }


def sort_findings(findings) -> list:
    """Deterministic reporting order: by file, then position, then code."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.code))
