"""The rule catalog.

Each rule is a :class:`~repro.lint.visitor.Rule` subclass registered in
:data:`RULES`.  Rules are pure event consumers: the traversal and name
resolution live in :mod:`repro.lint.visitor`, so a rule is only its
policy — what resolved names or shapes are hazards, and what to say
about them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Type

from ..errors import LintError
from .callgraph import CallGraph, ProjectRule
from .config import LintConfig
from .findings import Severity
from .visitor import FileContext, Rule

#: Rule families, by code prefix.  ``--list-rules`` groups by these.
FAMILIES: Dict[str, str] = {
    "DET": "determinism — hidden global state and ordering hazards",
    "PICK": "picklability — checkpoint/snapshot safety",
    "ASYNC": "asyncio — event-loop blocking and task-lifetime hazards "
             "(interprocedural)",
    "HOT": "hot path — allocation discipline in marked fast-lane "
           "functions (interprocedural)",
}


def family_of(code: str) -> str:
    """The family prefix of a rule code (leading capital letters)."""
    prefix = ""
    for char in code:
        if char.isalpha():
            prefix += char
        else:
            break
    return prefix

#: Wall-clock reads that leak host time into simulation state.
WALL_CLOCK_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random constructors that are fine *when given a seed*.
_NUMPY_SEEDED_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "RandomState",
        "Generator",
        "SeedSequence",
        "PCG64",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


class UnseededRandomRule(Rule):
    """DET001: module-level RNG draws bypass the seeded streams."""

    code = "DET001"
    name = "unseeded-global-rng"
    summary = (
        "call to the global random/numpy.random state instead of an "
        "injected sim.random.stream"
    )
    default_severity = Severity.ERROR
    rationale = (
        "Module-level random functions share one hidden global state: any "
        "draw anywhere perturbs every later draw, so adding a log line can "
        "change a simulation's entire trajectory, and two runs with the "
        "same master seed stop agreeing.  Every stochastic component must "
        "draw from its own named stream (sim.random.stream(name)) derived "
        "from the master seed; see repro.simnet.rand."
    )

    def on_call(self, ctx: FileContext, node: ast.Call, resolved: str) -> None:
        has_args = bool(node.args or node.keywords)
        if resolved.startswith("random."):
            member = resolved.split(".", 1)[1]
            if member == "Random":
                if not has_args:
                    self.report(
                        ctx, node,
                        "random.Random() without a seed argument",
                        "derive the seed with repro.simnet.rand.derive_seed "
                        "or use sim.random.stream(name)",
                    )
                return
            if member == "SystemRandom":
                self.report(
                    ctx, node,
                    "random.SystemRandom draws OS entropy and can never "
                    "be reproduced",
                    "use sim.random.stream(name)",
                )
                return
            self.report(
                ctx, node,
                f"call to global random.{member}",
                "draw from an injected sim.random.stream(name) instead",
            )
        elif resolved.startswith("numpy.random."):
            member = resolved.split(".", 2)[2]
            if member in _NUMPY_SEEDED_CONSTRUCTORS:
                if not has_args:
                    self.report(
                        ctx, node,
                        f"numpy.random.{member}() without a seed",
                        "pass a seed derived from the master seed "
                        "(repro.simnet.rand.derive_seed)",
                    )
                return
            self.report(
                ctx, node,
                f"call to global numpy.random.{member}",
                "use a seeded numpy Generator (numpy.random.default_rng"
                "(derive_seed(...))) or sim.random.stream(name)",
            )


class WallClockRule(Rule):
    """DET002: wall-clock reads outside the store/perf boundary."""

    code = "DET002"
    name = "wall-clock-read"
    summary = (
        "wall-clock read (time.time, datetime.now, ...) outside the "
        "allowlisted store/perf boundary"
    )
    default_severity = Severity.ERROR
    rationale = (
        "Simulation code must read time from the scenario clock (sim.now / "
        "SimClock), which only the event scheduler advances.  A host clock "
        "read makes output depend on machine speed and run date, breaks "
        "bit-identical kill-and-resume checkpoints, and invalidates "
        "longitudinal comparisons.  Host timestamps are legitimate only as "
        "provenance metadata (store manifests, via repro.store.wallclock) "
        "and perf instrumentation (repro.perf) — both outside sim state."
    )

    def on_reference(
        self, ctx: FileContext, node: ast.AST, resolved: str
    ) -> None:
        if ctx.clock_allowlisted or resolved not in WALL_CLOCK_NAMES:
            return
        self.report(
            ctx, node,
            f"wall-clock read {resolved}",
            "use the scenario clock (sim.now) in simulation code, or "
            "repro.store.wallclock.now for provenance timestamps",
        )


class SetIterationRule(Rule):
    """DET003: ordering-sensitive iteration over sets."""

    code = "DET003"
    name = "unordered-set-iteration"
    summary = "order-sensitive iteration over a set/frozenset"
    default_severity = Severity.ERROR
    rationale = (
        "A set's iteration order depends on its insertion history and, for "
        "str keys, on interpreter hash randomization — so the same logical "
        "state can replay events in a different order after a checkpoint "
        "restore or across hosts.  This is exactly the hazard the store's "
        "canonical pickler neutralizes at serialization time; in live "
        "simulation and export paths it must be neutralized at the source: "
        "iterate sorted(s), or consume the set with an order-insensitive "
        "reduction (len, sum, min, max, any, all, set arithmetic)."
    )

    def on_iteration(
        self, ctx: FileContext, node: ast.AST, iter_node: ast.AST, context: str
    ) -> None:
        self.report(
            ctx, node,
            f"iteration over a set in a {context}",
            "wrap the set in sorted(...) or restructure into an "
            "order-insensitive reduction",
        )

    def on_set_pop(self, ctx: FileContext, node: ast.Call) -> None:
        self.report(
            ctx, node,
            "set.pop() removes an arbitrary (order-dependent) element",
            "pop from sorted(...) or use an explicit deterministic choice",
        )


class IdentityHashRule(Rule):
    """DET004: object identity as ordering or keying material."""

    code = "DET004"
    name = "identity-as-key"
    summary = "id()/hash() used where a stable key is required"
    default_severity = Severity.ERROR
    rationale = (
        "id() is a memory address: it differs between runs and is never "
        "preserved across a checkpoint restore, so id-based tie-breakers "
        "or map keys replay differently.  Builtin hash() is salted per "
        "interpreter for str/bytes (PYTHONHASHSEED).  Scheduling "
        "tie-breakers must use explicit sequence numbers (as the event "
        "queue's (time, seq) ordering does) and keys must be stable "
        "domain identifiers (addresses, txids, names)."
    )

    # A reference hook, not a call hook: the hazard usually appears as a
    # bare ``key=id`` / ``key=hash`` tie-breaker, which is never a Call.
    def on_reference(
        self, ctx: FileContext, node: ast.AST, resolved: str
    ) -> None:
        if resolved == "id":
            self.report(
                ctx, node,
                "id() of an object is not stable across runs or restores",
                "key or order by a stable domain identifier instead",
            )
        elif resolved == "hash":
            self.report(
                ctx, node,
                "builtin hash() is salted per interpreter run for "
                "str/bytes keys",
                "use hashlib (as repro.simnet.rand.derive_seed does) or a "
                "stable domain identifier",
            )


class QueueLambdaRule(Rule):
    """PICK001: unpicklable callbacks reachable from a snapshot."""

    code = "PICK001"
    name = "unpicklable-callback"
    summary = (
        "lambda or nested function scheduled on the event queue or stored "
        "on an object"
    )
    default_severity = Severity.ERROR
    rationale = (
        "Simulator.snapshot() pickles the live event queue and everything "
        "its callbacks reach.  Lambdas and nested functions cannot be "
        "pickled, so one of them on the queue (or stored on any "
        "snapshot-reachable object) turns every checkpoint attempt into a "
        "PicklingError at the worst possible moment — mid-campaign.  "
        "Callbacks must be module-level functions, bound methods, or "
        "functools.partial over those."
    )

    def on_schedule_callback(
        self,
        ctx: FileContext,
        call: ast.Call,
        arg: ast.AST,
        kind: str,
        method: str,
    ) -> None:
        what = "lambda" if kind == "lambda" else "nested function"
        self.report(
            ctx, arg,
            f"{what} passed to .{method}() ends up on the event queue and "
            f"breaks Simulator.snapshot()",
            "use a bound method or functools.partial over a module-level "
            "function",
        )

    def on_lambda_attr(
        self, ctx: FileContext, node: ast.AST, target: str
    ) -> None:
        self.report(
            ctx, node,
            f"lambda stored on self.{target} makes the object unpicklable",
            "store a bound method or functools.partial instead",
        )


class BlockingInAsyncRule(ProjectRule):
    """ASYNC001: a blocking call reachable from an ``async def``."""

    code = "ASYNC001"
    name = "blocking-call-in-async"
    summary = (
        "blocking call (sleep/file/socket/subprocess I/O) reachable from "
        "an async def without run_in_executor/to_thread"
    )
    default_severity = Severity.ERROR
    rationale = (
        "The serve layer runs every request handler on one event loop: a "
        "single synchronous sleep, file read, or subprocess wait inside a "
        "coroutine stalls every connection, SSE stream, and job "
        "completion callback at once.  The blocking call is rarely "
        "visible in the handler itself — it hides two or three calls "
        "down, inside the store.  This rule propagates a may-block taint "
        "up the project call graph and reports the frontier: the exact "
        "call inside the async function where blocking work enters the "
        "loop.  Dispatching through loop.run_in_executor(...) or "
        "asyncio.to_thread(...) cuts the taint — that is the fix, not a "
        "suppression."
    )
    example = (
        "    async def _h_export(self, run_id):          # handler\n"
        "        data = self.store.load_manifest(run_id)  # ASYNC001:\n"
        "            # load_manifest -> Path.read_text -> file I/O\n"
        "\n"
        "fix — move the blocking chain onto a worker thread:\n"
        "\n"
        "    async def _h_export(self, run_id):\n"
        "        loop = asyncio.get_running_loop()\n"
        "        data = await loop.run_in_executor(\n"
        "            self._io, self.store.load_manifest, run_id)"
    )

    def check(self, graph: CallGraph, config: LintConfig) -> None:
        for func in graph.functions.values():
            if not func.is_async:
                continue
            for site in func.calls:
                if site.kind not in ("call", "constructor"):
                    continue
                reason = graph.blocking_reason(site.target)
                if reason is None:
                    for dotted in config.blocking:
                        if site.target == dotted:
                            reason = "configured blocking root"
                            break
                if reason is not None:
                    self.report_site(
                        graph, func.path, site.lineno, site.col,
                        f"async {func.display} calls {site.target} "
                        f"({reason}), blocking the event loop",
                        "dispatch it with loop.run_in_executor(...) or "
                        "asyncio.to_thread(...)",
                    )
                    continue
                callee = graph.resolve_function(site.target)
                if callee is None or callee.is_async:
                    # Async callees report their own blocking frontier.
                    continue
                cause = graph.may_block.get(callee.key)
                if cause is None:
                    continue
                chain = " -> ".join(graph.chain(callee.key))
                self.report_site(
                    graph, func.path, site.lineno, site.col,
                    f"async {func.display} reaches blocking I/O via "
                    f"{chain}",
                    "dispatch the sync chain with "
                    "loop.run_in_executor(...) or asyncio.to_thread(...)",
                )


class UnawaitedCoroutineRule(ProjectRule):
    """ASYNC002: a coroutine constructed but never awaited."""

    code = "ASYNC002"
    name = "coroutine-not-awaited"
    summary = (
        "async function called without await/create_task — the coroutine "
        "object is discarded and its body never runs"
    )
    default_severity = Severity.ERROR
    rationale = (
        "Calling an async function only constructs a coroutine object; "
        "nothing executes until it is awaited or wrapped in "
        "asyncio.create_task.  A bare call silently drops the work — the "
        "handler returns success, the job is never scheduled, and the "
        "only trace is a 'coroutine was never awaited' RuntimeWarning "
        "long after the fact.  Because this analysis resolves calls "
        "through the project symbol table, it catches the miss even when "
        "the async def lives in another module."
    )
    example = (
        "    async def shutdown(self):\n"
        "        self.jobs.drain()        # ASYNC002: drain is async —\n"
        "                                 # this builds a coroutine and\n"
        "                                 # throws it away\n"
        "\n"
        "fix:\n"
        "\n"
        "    async def shutdown(self):\n"
        "        await self.jobs.drain()"
    )

    def check(self, graph: CallGraph, config: LintConfig) -> None:
        for func in graph.functions.values():
            for site in func.bare_calls:
                if site.kind != "call" or site.awaited:
                    continue
                callee = graph.resolve_function(site.target)
                if callee is None or not callee.is_async:
                    continue
                self.report_site(
                    graph, func.path, site.lineno, site.col,
                    f"{func.display} calls async {callee.display} without "
                    f"awaiting it — the coroutine never runs",
                    "await it, or wrap it in asyncio.create_task(...) and "
                    "retain the task",
                )


class DroppedTaskRule(ProjectRule):
    """ASYNC003: ``create_task`` result not retained."""

    code = "ASYNC003"
    name = "task-reference-dropped"
    summary = (
        "create_task/ensure_future result discarded — the event loop "
        "holds only a weak reference and may garbage-collect the task "
        "mid-flight"
    )
    default_severity = Severity.WARNING
    rationale = (
        "asyncio keeps only a weak reference to scheduled tasks: if "
        "nothing else holds the Task object, the garbage collector can "
        "reap it before it finishes, killing the work without an "
        "exception surfacing anywhere.  The serve layer retains "
        "connection tasks in a dict and job tasks in JobManager._tasks "
        "for exactly this reason.  Assign the result to a retained "
        "structure and discard it on completion (add_done_callback)."
    )
    example = (
        "    async def start(self):\n"
        "        asyncio.create_task(self._poll())   # ASYNC003\n"
        "\n"
        "fix — retain until done:\n"
        "\n"
        "    async def start(self):\n"
        "        task = asyncio.create_task(self._poll())\n"
        "        self._tasks.add(task)\n"
        "        task.add_done_callback(self._tasks.discard)"
    )

    def check(self, graph: CallGraph, config: LintConfig) -> None:
        for func in graph.functions.values():
            for site in func.bare_calls:
                if site.kind != "create_task":
                    continue
                self.report_site(
                    graph, func.path, site.lineno, site.col,
                    f"{func.display} discards the create_task result — "
                    f"the task may be garbage-collected mid-flight",
                    "retain the task (e.g. in a set with an "
                    "add_done_callback(discard) pair)",
                )


class CrossThreadMutationRule(ProjectRule):
    """ASYNC004: loop-owned state touched from a non-loop thread."""

    code = "ASYNC004"
    name = "cross-thread-loop-mutation"
    summary = (
        "function marked '# repro-lint: loop-owned' called from "
        "executor/thread context without call_soon_threadsafe"
    )
    default_severity = Severity.ERROR
    rationale = (
        "Job state, SSE subscriber lists, and metrics in the serve layer "
        "are mutated without locks because every mutation happens on the "
        "event-loop thread.  Supervisor callbacks, however, fire on "
        "executor threads — calling a loop-owned mutator from there is a "
        "data race that corrupts state rarely enough to survive testing. "
        " Mark loop-owned mutators with '# repro-lint: loop-owned'; the "
        "analysis traces which functions execute in thread context "
        "(executor submissions, Thread targets, on_event callbacks) and "
        "flags direct calls across the boundary.  "
        "loop.call_soon_threadsafe(fn, ...) is the sanctioned bridge and "
        "is recognized as such."
    )
    example = (
        "    def _on_event(job, event):        # runs on executor thread\n"
        "        job.supervisor_event(event)   # ASYNC004: loop-owned\n"
        "\n"
        "fix — hop onto the loop first:\n"
        "\n"
        "    def _on_event(loop, job, event):\n"
        "        loop.call_soon_threadsafe(job.supervisor_event, event)"
    )

    def check(self, graph: CallGraph, config: LintConfig) -> None:
        for key, context in graph.thread_ctx.items():
            func = graph.functions.get(key)
            if func is None:
                continue
            for site in func.calls:
                if site.kind not in ("call", "constructor"):
                    continue
                callee = graph.resolve_function(site.target)
                if callee is None or callee.key not in graph.loop_owned:
                    continue
                self.report_site(
                    graph, func.path, site.lineno, site.col,
                    f"{func.display} runs in thread context ({context}) "
                    f"but calls loop-owned {callee.display} directly",
                    "bridge with loop.call_soon_threadsafe"
                    f"({callee.display.rsplit('.', 1)[-1]}, ...)",
                )


class HotPathAllocationRule(ProjectRule):
    """HOT001: allocation-bearing constructs in hot-path functions."""

    code = "HOT001"
    name = "hot-path-allocation"
    summary = (
        "allocation-bearing construct (closure, lambda, comprehension, "
        "dict/list/set literal, f-string) in a hot-path function"
    )
    default_severity = Severity.WARNING
    rationale = (
        "The fast lane dispatches tens of thousands of events per second "
        "on one core; PR 6 bought its 2.15x by stripping per-event "
        "allocations (singleton replies, interned addresses, bare-tuple "
        "lane entries).  One careless f-string or list literal on that "
        "path re-introduces a malloc per event and quietly halves "
        "throughput — a regression the scale gate only catches after the "
        "fact.  Functions named in [tool.repro-lint] hot-paths or marked "
        "'# repro-lint: hot' — and everything they call, transitively — "
        "are held to the no-allocation discipline.  Tuples are exempt "
        "(cheap, often interned), as are allocations feeding a raise "
        "(error paths are cold).  A justified allocation (amortized "
        "caches, rare slow paths) takes an inline suppression with a "
        "rationale."
    )
    example = (
        "    # repro-lint: hot\n"
        "    def run_pass(self):\n"
        "        ready = [p for p in self.dirty]   # HOT001: allocates\n"
        "                                          # per event\n"
        "\n"
        "fix — hoist or restructure:\n"
        "\n"
        "    # repro-lint: hot\n"
        "    def run_pass(self):\n"
        "        dirty = self.dirty                # iterate the dict\n"
        "        while dirty:                      # directly; no copy\n"
        "            addr, peer = dirty.popitem()"
    )

    def check(self, graph: CallGraph, config: LintConfig) -> None:
        for key, origin in graph.hot.items():
            func = graph.functions.get(key)
            if func is None:
                continue
            for alloc in func.allocs:
                self.report_site(
                    graph, func.path, alloc.lineno, alloc.col,
                    f"{alloc.what} in hot-path {func.display} "
                    f"({origin})",
                    "hoist the allocation out of the hot path, reuse a "
                    "preallocated object, or suppress with a rationale if "
                    "it is amortized",
                )


#: Registered rules, by code.
RULES: Dict[str, Type[Rule]] = {
    rule.code: rule
    for rule in (
        UnseededRandomRule,
        WallClockRule,
        SetIterationRule,
        IdentityHashRule,
        QueueLambdaRule,
        BlockingInAsyncRule,
        UnawaitedCoroutineRule,
        DroppedTaskRule,
        CrossThreadMutationRule,
        HotPathAllocationRule,
    )
}


def get_rule(code: str) -> Type[Rule]:
    try:
        return RULES[code]
    except KeyError:
        raise LintError(
            f"unknown rule code {code!r} (known: {', '.join(sorted(RULES))})"
        ) from None


def all_rules(
    severity_overrides: Optional[Dict[str, str]] = None,
    disable: tuple = (),
) -> List[Rule]:
    """Instantiate every enabled rule with effective severities."""
    overrides = severity_overrides or {}
    return [
        rule_cls(overrides.get(code))
        for code, rule_cls in sorted(RULES.items())
        if code not in disable
    ]
