"""The rule catalog.

Each rule is a :class:`~repro.lint.visitor.Rule` subclass registered in
:data:`RULES`.  Rules are pure event consumers: the traversal and name
resolution live in :mod:`repro.lint.visitor`, so a rule is only its
policy — what resolved names or shapes are hazards, and what to say
about them.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Type

from ..errors import LintError
from .findings import Severity
from .visitor import FileContext, Rule

#: Wall-clock reads that leak host time into simulation state.
WALL_CLOCK_NAMES = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.clock_gettime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: numpy.random constructors that are fine *when given a seed*.
_NUMPY_SEEDED_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "RandomState",
        "Generator",
        "SeedSequence",
        "PCG64",
        "MT19937",
        "Philox",
        "SFC64",
    }
)


class UnseededRandomRule(Rule):
    """DET001: module-level RNG draws bypass the seeded streams."""

    code = "DET001"
    name = "unseeded-global-rng"
    summary = (
        "call to the global random/numpy.random state instead of an "
        "injected sim.random.stream"
    )
    default_severity = Severity.ERROR
    rationale = (
        "Module-level random functions share one hidden global state: any "
        "draw anywhere perturbs every later draw, so adding a log line can "
        "change a simulation's entire trajectory, and two runs with the "
        "same master seed stop agreeing.  Every stochastic component must "
        "draw from its own named stream (sim.random.stream(name)) derived "
        "from the master seed; see repro.simnet.rand."
    )

    def on_call(self, ctx: FileContext, node: ast.Call, resolved: str) -> None:
        has_args = bool(node.args or node.keywords)
        if resolved.startswith("random."):
            member = resolved.split(".", 1)[1]
            if member == "Random":
                if not has_args:
                    self.report(
                        ctx, node,
                        "random.Random() without a seed argument",
                        "derive the seed with repro.simnet.rand.derive_seed "
                        "or use sim.random.stream(name)",
                    )
                return
            if member == "SystemRandom":
                self.report(
                    ctx, node,
                    "random.SystemRandom draws OS entropy and can never "
                    "be reproduced",
                    "use sim.random.stream(name)",
                )
                return
            self.report(
                ctx, node,
                f"call to global random.{member}",
                "draw from an injected sim.random.stream(name) instead",
            )
        elif resolved.startswith("numpy.random."):
            member = resolved.split(".", 2)[2]
            if member in _NUMPY_SEEDED_CONSTRUCTORS:
                if not has_args:
                    self.report(
                        ctx, node,
                        f"numpy.random.{member}() without a seed",
                        "pass a seed derived from the master seed "
                        "(repro.simnet.rand.derive_seed)",
                    )
                return
            self.report(
                ctx, node,
                f"call to global numpy.random.{member}",
                "use a seeded numpy Generator (numpy.random.default_rng"
                "(derive_seed(...))) or sim.random.stream(name)",
            )


class WallClockRule(Rule):
    """DET002: wall-clock reads outside the store/perf boundary."""

    code = "DET002"
    name = "wall-clock-read"
    summary = (
        "wall-clock read (time.time, datetime.now, ...) outside the "
        "allowlisted store/perf boundary"
    )
    default_severity = Severity.ERROR
    rationale = (
        "Simulation code must read time from the scenario clock (sim.now / "
        "SimClock), which only the event scheduler advances.  A host clock "
        "read makes output depend on machine speed and run date, breaks "
        "bit-identical kill-and-resume checkpoints, and invalidates "
        "longitudinal comparisons.  Host timestamps are legitimate only as "
        "provenance metadata (store manifests, via repro.store.wallclock) "
        "and perf instrumentation (repro.perf) — both outside sim state."
    )

    def on_reference(
        self, ctx: FileContext, node: ast.AST, resolved: str
    ) -> None:
        if ctx.clock_allowlisted or resolved not in WALL_CLOCK_NAMES:
            return
        self.report(
            ctx, node,
            f"wall-clock read {resolved}",
            "use the scenario clock (sim.now) in simulation code, or "
            "repro.store.wallclock.now for provenance timestamps",
        )


class SetIterationRule(Rule):
    """DET003: ordering-sensitive iteration over sets."""

    code = "DET003"
    name = "unordered-set-iteration"
    summary = "order-sensitive iteration over a set/frozenset"
    default_severity = Severity.ERROR
    rationale = (
        "A set's iteration order depends on its insertion history and, for "
        "str keys, on interpreter hash randomization — so the same logical "
        "state can replay events in a different order after a checkpoint "
        "restore or across hosts.  This is exactly the hazard the store's "
        "canonical pickler neutralizes at serialization time; in live "
        "simulation and export paths it must be neutralized at the source: "
        "iterate sorted(s), or consume the set with an order-insensitive "
        "reduction (len, sum, min, max, any, all, set arithmetic)."
    )

    def on_iteration(
        self, ctx: FileContext, node: ast.AST, iter_node: ast.AST, context: str
    ) -> None:
        self.report(
            ctx, node,
            f"iteration over a set in a {context}",
            "wrap the set in sorted(...) or restructure into an "
            "order-insensitive reduction",
        )

    def on_set_pop(self, ctx: FileContext, node: ast.Call) -> None:
        self.report(
            ctx, node,
            "set.pop() removes an arbitrary (order-dependent) element",
            "pop from sorted(...) or use an explicit deterministic choice",
        )


class IdentityHashRule(Rule):
    """DET004: object identity as ordering or keying material."""

    code = "DET004"
    name = "identity-as-key"
    summary = "id()/hash() used where a stable key is required"
    default_severity = Severity.ERROR
    rationale = (
        "id() is a memory address: it differs between runs and is never "
        "preserved across a checkpoint restore, so id-based tie-breakers "
        "or map keys replay differently.  Builtin hash() is salted per "
        "interpreter for str/bytes (PYTHONHASHSEED).  Scheduling "
        "tie-breakers must use explicit sequence numbers (as the event "
        "queue's (time, seq) ordering does) and keys must be stable "
        "domain identifiers (addresses, txids, names)."
    )

    # A reference hook, not a call hook: the hazard usually appears as a
    # bare ``key=id`` / ``key=hash`` tie-breaker, which is never a Call.
    def on_reference(
        self, ctx: FileContext, node: ast.AST, resolved: str
    ) -> None:
        if resolved == "id":
            self.report(
                ctx, node,
                "id() of an object is not stable across runs or restores",
                "key or order by a stable domain identifier instead",
            )
        elif resolved == "hash":
            self.report(
                ctx, node,
                "builtin hash() is salted per interpreter run for "
                "str/bytes keys",
                "use hashlib (as repro.simnet.rand.derive_seed does) or a "
                "stable domain identifier",
            )


class QueueLambdaRule(Rule):
    """PICK001: unpicklable callbacks reachable from a snapshot."""

    code = "PICK001"
    name = "unpicklable-callback"
    summary = (
        "lambda or nested function scheduled on the event queue or stored "
        "on an object"
    )
    default_severity = Severity.ERROR
    rationale = (
        "Simulator.snapshot() pickles the live event queue and everything "
        "its callbacks reach.  Lambdas and nested functions cannot be "
        "pickled, so one of them on the queue (or stored on any "
        "snapshot-reachable object) turns every checkpoint attempt into a "
        "PicklingError at the worst possible moment — mid-campaign.  "
        "Callbacks must be module-level functions, bound methods, or "
        "functools.partial over those."
    )

    def on_schedule_callback(
        self,
        ctx: FileContext,
        call: ast.Call,
        arg: ast.AST,
        kind: str,
        method: str,
    ) -> None:
        what = "lambda" if kind == "lambda" else "nested function"
        self.report(
            ctx, arg,
            f"{what} passed to .{method}() ends up on the event queue and "
            f"breaks Simulator.snapshot()",
            "use a bound method or functools.partial over a module-level "
            "function",
        )

    def on_lambda_attr(
        self, ctx: FileContext, node: ast.AST, target: str
    ) -> None:
        self.report(
            ctx, node,
            f"lambda stored on self.{target} makes the object unpicklable",
            "store a bound method or functools.partial instead",
        )


#: Registered rules, by code.
RULES: Dict[str, Type[Rule]] = {
    rule.code: rule
    for rule in (
        UnseededRandomRule,
        WallClockRule,
        SetIterationRule,
        IdentityHashRule,
        QueueLambdaRule,
    )
}


def get_rule(code: str) -> Type[Rule]:
    try:
        return RULES[code]
    except KeyError:
        raise LintError(
            f"unknown rule code {code!r} (known: {', '.join(sorted(RULES))})"
        ) from None


def all_rules(
    severity_overrides: Optional[Dict[str, str]] = None,
    disable: tuple = (),
) -> List[Rule]:
    """Instantiate every enabled rule with effective severities."""
    overrides = severity_overrides or {}
    return [
        rule_cls(overrides.get(code))
        for code, rule_cls in sorted(RULES.items())
        if code not in disable
    ]
