"""Content-addressed run store, checkpoints, and resumable campaigns.

The persistence layer under every long-horizon measurement: SHA-256
addressed blobs with atomic writes (:mod:`~repro.store.blobs`), JSON run
manifests keyed by a content hash of (scenario, seed, config)
(:mod:`~repro.store.manifest`), versioned integrity-checked checkpoint
framing (:mod:`~repro.store.checkpoint`), the store facade with gc and
manifest diffing (:mod:`~repro.store.runstore`), and the resumable
campaign driver (:mod:`~repro.store.campaign`).

``repro.simnet.Simulator.snapshot()`` / ``restore()`` build on the same
checkpoint framing, so a whole simulator — event queue (either scheduler
backend), clock, RNG streams, nodes, addrman, churn — round-trips to
bytes and replays bit-identically.
"""

from .blobs import BlobStore, sha256_hex
from .campaign import (
    CRASH_ENV,
    StoredCampaign,
    campaign_key,
    campaign_run_id,
    load_campaign_result,
    run_stored_campaign,
)
from .checkpoint import (
    CHECKPOINT_FORMAT,
    dump_checkpoint,
    load_checkpoint,
    read_header,
)
from .manifest import (
    MANIFEST_FORMAT,
    STATUS_COMPLETE,
    STATUS_INTERRUPTED,
    STATUS_RUNNING,
    CheckpointRecord,
    RunManifest,
    SnapshotRecord,
    code_version,
    run_key,
)
from .runstore import RunStore, default_store_root

__all__ = [
    "BlobStore",
    "CHECKPOINT_FORMAT",
    "CRASH_ENV",
    "CheckpointRecord",
    "MANIFEST_FORMAT",
    "RunManifest",
    "RunStore",
    "STATUS_COMPLETE",
    "STATUS_INTERRUPTED",
    "STATUS_RUNNING",
    "SnapshotRecord",
    "StoredCampaign",
    "campaign_key",
    "campaign_run_id",
    "code_version",
    "default_store_root",
    "dump_checkpoint",
    "load_campaign_result",
    "load_checkpoint",
    "read_header",
    "run_key",
    "run_stored_campaign",
    "sha256_hex",
]
