"""The run store: manifests + blobs + index under one root directory.

Layout::

    <root>/
      objects/<aa>/<...62 hex...>   content-addressed blobs
      runs/<run_id>.json            one manifest per run
      index.json                    derived listing cache

Manifest writes are atomic (tmp + ``os.replace``), so a run killed
mid-write leaves either the old manifest or the new one, never a torn
file.  ``index.json`` is a *derived* cache rebuilt from the manifests on
every write and on demand — parallel sweep workers each rewrite it after
their own manifest update, and because it carries no information the
``runs/`` scan does not, the last writer winning is harmless.
"""

from __future__ import annotations

import os
import tempfile
import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..errors import StoreError
from .blobs import BlobStore, reject_read_only
from .manifest import RunManifest

PathLike = Union[str, Path]

#: Environment variable naming the default store root for the CLI.
STORE_ENV = "REPRO_STORE"
DEFAULT_STORE_DIR = "repro-store"


def default_store_root() -> str:
    """CLI default: ``$REPRO_STORE`` or ``./repro-store``."""
    return os.environ.get(STORE_ENV, DEFAULT_STORE_DIR)


class RunStore:
    """Durable, content-addressed storage for experiment runs."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.blobs = BlobStore(self.root)
        self.runs_dir = self.root / "runs"
        try:
            self.runs_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            reject_read_only(exc, self.root, "create runs/")
            raise
        self.index_path = self.root / "index.json"

    # ------------------------------------------------------------------
    # Blobs (delegation, so callers hold one handle)
    # ------------------------------------------------------------------
    def put_blob(self, data: bytes) -> str:
        return self.blobs.put(data)

    def get_blob(self, digest: str) -> bytes:
        return self.blobs.get(digest)

    # ------------------------------------------------------------------
    # Manifests
    # ------------------------------------------------------------------
    def _manifest_path(self, run_id: str) -> Path:
        if not run_id or "/" in run_id or run_id.startswith("."):
            raise StoreError(f"invalid run id {run_id!r}")
        return self.runs_dir / f"{run_id}.json"

    def save_manifest(self, manifest: RunManifest) -> None:
        """Atomically persist ``manifest`` and refresh the index."""
        path = self._manifest_path(manifest.run_id)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.runs_dir, prefix=".tmp-", suffix=".json"
            )
        except OSError as exc:
            reject_read_only(exc, self.root, "write a manifest")
            raise
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(manifest.to_json())
            os.replace(tmp_name, path)
        except BaseException as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(exc, OSError):
                reject_read_only(exc, self.root, "write a manifest")
            raise
        self._write_index()

    def load_manifest(self, run_id: str) -> RunManifest:
        path = self._manifest_path(run_id)
        try:
            text = path.read_text()
        except FileNotFoundError:
            raise StoreError(f"run {run_id!r} not in store") from None
        return RunManifest.from_json(text)

    def has_run(self, run_id: str) -> bool:
        return self._manifest_path(run_id).exists()

    def delete_run(self, run_id: str) -> bool:
        """Remove a manifest (blobs are reclaimed by :meth:`gc`)."""
        try:
            self._manifest_path(run_id).unlink()
        except FileNotFoundError:
            return False
        self._write_index()
        return True

    def manifests(self) -> List[RunManifest]:
        """Every manifest, ordered by run id."""
        out = []
        for path in sorted(self.runs_dir.glob("*.json")):
            if path.name.startswith("."):
                continue
            out.append(RunManifest.from_json(path.read_text()))
        return out

    def find_by_key(self, key: str) -> Optional[RunManifest]:
        """The manifest with run key ``key``, if any."""
        for manifest in self.manifests():
            if manifest.key == key:
                return manifest
        return None

    # ------------------------------------------------------------------
    # Index
    # ------------------------------------------------------------------
    def index(self) -> Dict[str, Dict[str, Any]]:
        """Rebuild and return the run listing (run id -> summary row)."""
        rows: Dict[str, Dict[str, Any]] = {}
        for manifest in self.manifests():
            rows[manifest.run_id] = {
                "kind": manifest.kind,
                "status": manifest.status,
                "seed": manifest.seed,
                "engine": manifest.engine,
                "snapshots": (
                    f"{manifest.completed_snapshots}/{manifest.snapshots_total}"
                ),
                "truncated": manifest.truncated,
                "key": manifest.key,
                "updated_at": manifest.updated_at,
            }
        return rows

    def _write_index(self) -> None:
        rows = self.index()
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=self.root, prefix=".tmp-index-", suffix=".json"
            )
        except OSError as exc:
            reject_read_only(exc, self.root, "refresh the index")
            raise
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(rows, handle, sort_keys=True, indent=2)
                handle.write("\n")
            os.replace(tmp_name, self.index_path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # ------------------------------------------------------------------
    # Garbage collection
    # ------------------------------------------------------------------
    def gc(self, dry_run: bool = False) -> Dict[str, Any]:
        """Delete blobs no manifest references.

        Returns a report with the removed/kept digests and byte counts.
        """
        referenced = set()
        for manifest in self.manifests():
            referenced.update(manifest.referenced_digests())
        removed: List[str] = []
        removed_bytes = 0
        kept = 0
        for digest in list(self.blobs.digests()):
            if digest in referenced:
                kept += 1
                continue
            removed_bytes += self.blobs.size_bytes(digest)
            if not dry_run:
                self.blobs.delete(digest)
            removed.append(digest)
        return {
            "removed": removed,
            "removed_bytes": removed_bytes,
            "kept": kept,
            "dry_run": dry_run,
        }

    # ------------------------------------------------------------------
    # Diff
    # ------------------------------------------------------------------
    def diff(self, run_id_a: str, run_id_b: str) -> Dict[str, Any]:
        """Compare two run manifests field by field.

        Reports config keys whose values differ, scalar field changes,
        and per-snapshot result-blob agreement (content addressing makes
        "same output" a digest comparison).
        """
        a = self.load_manifest(run_id_a)
        b = self.load_manifest(run_id_b)
        config_diff: Dict[str, Any] = {}
        keys = sorted(set(a.config) | set(b.config))
        for key in keys:
            va, vb = a.config.get(key), b.config.get(key)
            if va != vb:
                config_diff[key] = {"a": va, "b": vb}
        fields = {}
        for name in ("kind", "seed", "engine", "snapshots_total", "status",
                     "code_version", "key"):
            va, vb = getattr(a, name), getattr(b, name)
            if va != vb:
                fields[name] = {"a": va, "b": vb}
        n = max(a.completed_snapshots, b.completed_snapshots)
        snap_rows = []
        for i in range(n):
            da = a.snapshots[i].digest if i < a.completed_snapshots else None
            db = b.snapshots[i].digest if i < b.completed_snapshots else None
            snap_rows.append(
                {"index": i, "equal": da == db and da is not None,
                 "a": da, "b": db}
            )
        return {
            "a": run_id_a,
            "b": run_id_b,
            "fields": fields,
            "config": config_diff,
            "snapshots": snap_rows,
            "snapshots_equal": all(row["equal"] for row in snap_rows)
            if snap_rows
            else None,
            "result_equal": (
                a.result_digest == b.result_digest
                if a.result_digest and b.result_digest
                else None
            ),
        }
