"""The store's injectable wall clock.

Run manifests carry ``created_at`` / ``updated_at`` host timestamps as
*provenance metadata* — when did a human run this — never as simulation
input: nothing downstream reads them back into a run, and the run key,
snapshot digests, and result digests deliberately exclude them.  This
module is the single place the store reads the host clock, so tests can
freeze it (:func:`set_wall_clock`) and the lint pass can verify by
inspection that no other store or simulation module touches real time.
"""

from __future__ import annotations

import time as _time
from typing import Callable

# The one sanctioned wall-clock read in the store layer; everything
# else goes through now().
# repro-lint: disable-file=DET002  (provenance boundary: manifests stamp
# human-facing timestamps here, outside all simulation state)
_wall_clock: Callable[[], float] = _time.time


def now() -> float:
    """Host time in seconds, through the injectable clock."""
    return _wall_clock()


def set_wall_clock(clock: Callable[[], float]) -> Callable[[], float]:
    """Replace the clock (tests freeze it); returns the previous one."""
    global _wall_clock
    previous = _wall_clock
    _wall_clock = clock
    return previous


def reset_wall_clock() -> None:
    """Restore the real host clock."""
    set_wall_clock(_time.time)
