"""Durable, resumable crawl campaigns on top of the run store.

:func:`run_stored_campaign` wraps :class:`~repro.core.pipeline.CampaignRunner`
with three persistence behaviours the in-memory runner lacks:

* **Checkpointing** — after each snapshot (configurable cadence) the
  whole runner — scenario, simulator event queue, RNG streams, partial
  :class:`~repro.core.pipeline.CampaignResult` — is serialized into the
  content-addressed blob store and the run manifest is updated
  atomically.  A crash at snapshot 40/50 loses at most the snapshot in
  flight.

* **Resume** — ``resume=<run-id>`` (or simply re-invoking with the same
  config against the same store) restores the latest checkpoint and
  executes only the remaining snapshots.  Because the checkpoint pins
  the event queue, clock, and every RNG stream position, the resumed
  run's outputs are bit-identical to an uninterrupted run — on both
  scheduler backends, pinned by test.

* **Caching** — the run key is a content hash of (scenario config,
  campaign config, seed, engine, snapshot count).  Re-running a
  completed key loads the stored result without simulating anything.

Crash injection for tests/CI: setting ``REPRO_CRASH_AFTER_SNAPSHOT=k``
hard-exits the process (``os._exit``) right after snapshot ``k``'s
checkpoint is durably recorded — the honest moral equivalent of
``kill -9`` at the worst allowed moment.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional, Union

from ..core.pipeline import CampaignConfig, CampaignResult, CampaignRunner
from ..errors import ConfigurationError, StoreError
from ..netmodel.scenario import LongitudinalConfig, LongitudinalScenario
from ..simnet.simulator import resolve_engine
from .checkpoint import dump_checkpoint, load_checkpoint
from .manifest import (
    STATUS_COMPLETE,
    STATUS_RUNNING,
    CheckpointRecord,
    RunManifest,
    SnapshotRecord,
    code_version,
    config_to_dict,
    run_key,
)
from .runstore import RunStore
from .wallclock import now as wall_now

#: Test/CI hook: hard-exit after this snapshot index is durably stored.
CRASH_ENV = "REPRO_CRASH_AFTER_SNAPSHOT"
CRASH_EXIT_CODE = 42

KIND_CAMPAIGN = "campaign"
_CKPT_KIND = "campaign-runner"
_SNAP_KIND = "snapshot-result"
_RESULT_KIND = "campaign-result"


@dataclass
class StoredCampaign:
    """What a stored run handed back: the result plus its provenance."""

    manifest: RunManifest
    result: CampaignResult
    #: True when the result came straight from the store (no simulation).
    cached: bool = False
    #: Snapshots already complete when execution (re)started, if resumed.
    resumed_from: Optional[int] = None


def campaign_key(
    config: LongitudinalConfig,
    campaign_config: Optional[CampaignConfig],
    snapshots: Optional[int] = None,
) -> str:
    """The run key for a campaign invocation."""
    campaign_config = (
        campaign_config if campaign_config is not None else CampaignConfig()
    )
    total = snapshots if snapshots is not None else config.snapshots
    return run_key(
        KIND_CAMPAIGN,
        {
            "scenario": config_to_dict(config),
            "campaign": config_to_dict(campaign_config),
        },
        seed=config.seed,
        engine=resolve_engine(config.engine),
        snapshots_total=total,
    )


def campaign_run_id(key: str) -> str:
    """Human-scannable run id derived from the key."""
    return f"{KIND_CAMPAIGN}-{key[:12]}"


def load_campaign_result(
    store: RunStore, manifest: RunManifest
) -> CampaignResult:
    """The final :class:`CampaignResult` of a complete run."""
    if manifest.result_digest is None:
        raise StoreError(
            f"run {manifest.run_id!r} has no stored result "
            f"(status {manifest.status!r})"
        )
    result = load_checkpoint(
        store.get_blob(manifest.result_digest), expect_kind=_RESULT_KIND
    )
    if not isinstance(result, CampaignResult):
        raise StoreError(f"run {manifest.run_id!r} result blob has wrong type")
    return result


def _restore_runner(store: RunStore, manifest: RunManifest) -> CampaignRunner:
    if manifest.checkpoint is None:
        raise StoreError(
            f"run {manifest.run_id!r} has no checkpoint to resume from"
        )
    runner = load_checkpoint(
        store.get_blob(manifest.checkpoint.digest), expect_kind=_CKPT_KIND
    )
    if not isinstance(runner, CampaignRunner):
        raise StoreError(
            f"run {manifest.run_id!r} checkpoint blob has wrong type"
        )
    completed = len(runner.result.snapshots)
    if completed != manifest.checkpoint.snapshot_index + 1:
        raise StoreError(
            f"run {manifest.run_id!r} checkpoint is inconsistent: contains "
            f"{completed} snapshots, manifest says "
            f"{manifest.checkpoint.snapshot_index + 1}"
        )
    return runner


def run_stored_campaign(
    store: Union[RunStore, str],
    config: LongitudinalConfig,
    campaign_config: Optional[CampaignConfig] = None,
    snapshots: Optional[int] = None,
    resume: Optional[str] = None,
    checkpoint_every: int = 1,
    force: bool = False,
) -> StoredCampaign:
    """Run (or resume, or fetch) a crawl campaign through the store.

    ``store`` may be a :class:`RunStore` or a root path.  ``resume``
    names an existing run id and fails loudly if its key does not match
    the supplied config — resuming under a different configuration would
    silently change the experiment.  ``force=True`` re-executes a
    complete run instead of returning the cached result.

    A store root the filesystem refuses to write (read-only mount,
    permission denial) surfaces as
    :class:`~repro.errors.ReadOnlyStoreError` rather than a raw
    ``OSError``, so operational callers (the serving layer) can answer
    "temporarily unavailable" instead of "internal error".
    """
    if isinstance(store, (str, os.PathLike)):
        store = RunStore(store)
    if checkpoint_every < 1:
        raise StoreError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
    campaign_config = (
        campaign_config if campaign_config is not None else CampaignConfig()
    )
    total = snapshots if snapshots is not None else config.snapshots
    key = campaign_key(config, campaign_config, total)
    run_id = campaign_run_id(key)

    manifest: Optional[RunManifest] = None
    if resume is not None:
        manifest = store.load_manifest(resume)
        if manifest.kind != KIND_CAMPAIGN:
            raise StoreError(f"run {resume!r} is a {manifest.kind!r} run")
        if manifest.key != key:
            raise StoreError(
                f"cannot resume {resume!r}: the supplied config hashes to a "
                f"different run key (config drift between start and resume)"
            )
    elif store.has_run(run_id):
        manifest = store.load_manifest(run_id)

    runner: Optional[CampaignRunner] = None
    resumed_from: Optional[int] = None
    if manifest is not None:
        if manifest.status == STATUS_COMPLETE and not force:
            return StoredCampaign(
                manifest=manifest,
                result=load_campaign_result(store, manifest),
                cached=True,
            )
        if manifest.checkpoint is not None and not force:
            runner = _restore_runner(store, manifest)
            resumed_from = len(runner.result.snapshots)
            # Records past the checkpoint describe snapshots the restored
            # runner will re-execute; drop them so the manifest never
            # claims work the checkpoint does not contain.
            manifest.snapshots = manifest.snapshots[:resumed_from]
            manifest.status = STATUS_RUNNING
            manifest.result_digest = None

    if runner is None:
        runner = CampaignRunner(LongitudinalScenario(config), campaign_config)
        manifest = RunManifest(
            run_id=run_id,
            key=key,
            kind=KIND_CAMPAIGN,
            seed=config.seed,
            engine=runner.scenario.sim.engine,
            snapshots_total=total,
            config={
                "scenario": config_to_dict(config),
                "campaign": config_to_dict(campaign_config),
            },
            status=STATUS_RUNNING,
            code_version=code_version(),
        )
        store.save_manifest(manifest)

    crash_after = os.environ.get(CRASH_ENV)
    crash_index: Optional[int] = None
    if crash_after is not None:
        try:
            crash_index = int(crash_after)
        except ValueError:
            raise ConfigurationError(
                f"{CRASH_ENV} must be an integer snapshot index, "
                f"got {crash_after!r}"
            ) from None

    times = runner.scenario.snapshot_times
    start = len(runner.result.snapshots)
    for index in range(start, total):
        snap = runner.run_snapshot(index, times[index])
        snap_digest = store.put_blob(
            dump_checkpoint(snap, kind=_SNAP_KIND, meta={"index": index})
        )
        manifest.snapshots.append(
            SnapshotRecord(
                index=index,
                when=snap.when,
                digest=snap_digest,
                truncated=snap.truncated,
            )
        )
        is_last = index + 1 == total
        if is_last or (index + 1 - start) % checkpoint_every == 0:
            ckpt_digest = store.put_blob(
                dump_checkpoint(
                    runner,
                    kind=_CKPT_KIND,
                    meta={"snapshot_index": index, "run_id": run_id},
                )
            )
            manifest.checkpoint = CheckpointRecord(
                digest=ckpt_digest, snapshot_index=index
            )
        manifest.updated_at = wall_now()
        store.save_manifest(manifest)
        if crash_index is not None and index >= crash_index:
            os._exit(CRASH_EXIT_CODE)

    result = runner.result
    # No run-specific metadata in the result blob: equal results must
    # hash equally across runs (and engines), so `store diff` can report
    # result agreement by digest alone.
    manifest.result_digest = store.put_blob(
        dump_checkpoint(result, kind=_RESULT_KIND)
    )
    manifest.status = STATUS_COMPLETE
    manifest.updated_at = wall_now()
    store.save_manifest(manifest)
    return StoredCampaign(
        manifest=manifest,
        result=result,
        cached=False,
        resumed_from=resumed_from,
    )
