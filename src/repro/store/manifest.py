"""Run manifests: the JSON records that make runs addressable.

A manifest describes one run — what was executed (scenario + campaign
config, seed, engine backend, code version), what came out of it
(per-snapshot result blobs, the final result blob), and where it stands
(``running`` / ``complete`` / ``interrupted``).  Blobs live in the
content-addressed :class:`~repro.store.blobs.BlobStore`; the manifest
holds only digests, so identical outputs across runs share storage.

Every run has a deterministic **key**: the SHA-256 of the canonical JSON
of ``(kind, config, seed, engine, snapshots_total, format)``.  Two
invocations with the same key are the same experiment, which is what
makes cache hits and ``--resume`` safe — the key cannot collide across
differing configs and cannot differ across equal ones.
"""

from __future__ import annotations

import dataclasses
import json
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional

from ..errors import StoreError
from . import wallclock

#: Bump on incompatible manifest schema changes.
MANIFEST_FORMAT = 1

STATUS_RUNNING = "running"
STATUS_COMPLETE = "complete"
STATUS_INTERRUPTED = "interrupted"
_STATUSES = (STATUS_RUNNING, STATUS_COMPLETE, STATUS_INTERRUPTED)


def canonical_json(value: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )


def config_to_dict(config: Any) -> Dict[str, Any]:
    """A dataclass config (possibly nested) as a JSON-able dict."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        return dataclasses.asdict(config)
    if isinstance(config, dict):
        return dict(config)
    raise StoreError(f"cannot serialize config of type {type(config).__name__}")


def run_key(
    kind: str,
    config: Any,
    seed: int,
    engine: str,
    snapshots_total: int,
    extra: Optional[Dict[str, Any]] = None,
) -> str:
    """The content key identifying one (scenario, seed, config) run."""
    from .blobs import sha256_hex

    payload = {
        "format": MANIFEST_FORMAT,
        "kind": kind,
        "config": config_to_dict(config),
        "seed": int(seed),
        "engine": engine,
        "snapshots_total": int(snapshots_total),
    }
    if extra:
        payload["extra"] = extra
    return sha256_hex(canonical_json(payload).encode("utf-8"))


def code_version(repo_dir: Optional[Path] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    if repo_dir is None:
        repo_dir = Path(__file__).resolve().parent
    try:
        out = subprocess.run(
            ["git", "-C", str(repo_dir), "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


@dataclass
class SnapshotRecord:
    """One completed snapshot: campaign time + result blob digest."""

    index: int
    when: float
    digest: str
    truncated: bool = False


@dataclass
class CheckpointRecord:
    """The latest checkpoint: resume replays from after ``snapshot_index``."""

    digest: str
    #: Index of the last snapshot the checkpoint contains (0-based).
    snapshot_index: int


@dataclass
class RunManifest:
    """Everything recorded about one run."""

    run_id: str
    key: str
    kind: str
    seed: int
    engine: str
    snapshots_total: int
    config: Dict[str, Any]
    status: str = STATUS_RUNNING
    code_version: str = "unknown"
    # Provenance only — stamped through the injectable store clock and
    # excluded from run keys and result digests.
    created_at: float = field(default_factory=wallclock.now)
    updated_at: float = field(default_factory=wallclock.now)
    snapshots: List[SnapshotRecord] = field(default_factory=list)
    checkpoint: Optional[CheckpointRecord] = None
    result_digest: Optional[str] = None
    format: int = MANIFEST_FORMAT

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise StoreError(f"unknown run status {self.status!r}")

    # ------------------------------------------------------------------
    # Derived views
    # ------------------------------------------------------------------
    @property
    def completed_snapshots(self) -> int:
        return len(self.snapshots)

    @property
    def truncated(self) -> bool:
        """Whether any recorded snapshot was cut short."""
        return any(snap.truncated for snap in self.snapshots)

    def referenced_digests(self) -> List[str]:
        """Every blob digest this manifest keeps alive (for gc)."""
        digests = [snap.digest for snap in self.snapshots]
        if self.checkpoint is not None:
            digests.append(self.checkpoint.digest)
        if self.result_digest is not None:
            digests.append(self.result_digest)
        return digests

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        out = dataclasses.asdict(self)
        return out

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunManifest":
        data = dict(data)
        if data.get("format") != MANIFEST_FORMAT:
            raise StoreError(
                f"unsupported manifest format {data.get('format')!r} "
                f"(this build reads format {MANIFEST_FORMAT})"
            )
        data["snapshots"] = [
            SnapshotRecord(**snap) for snap in data.get("snapshots", [])
        ]
        checkpoint = data.get("checkpoint")
        data["checkpoint"] = (
            CheckpointRecord(**checkpoint) if checkpoint is not None else None
        )
        return cls(**data)

    @classmethod
    def from_json(cls, text: str) -> "RunManifest":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise StoreError(f"corrupt manifest JSON: {exc}") from exc
        return cls.from_dict(data)
