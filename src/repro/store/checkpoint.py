"""Versioned, integrity-checked checkpoint framing.

A checkpoint is a self-describing binary blob::

    MAGIC (8 bytes) | header length (4 bytes, big-endian) | header JSON | payload

The header records the format version, a *kind* tag (``"simulator"``,
``"campaign"``, ...), the pickle protocol, the SHA-256 of the payload,
and optional caller metadata.  :func:`load_checkpoint` refuses blobs
whose magic, version, kind, or payload digest do not match, so a
truncated write or a blob from a future format fails loudly instead of
unpickling garbage.

The payload itself is a pickle of the live object graph.  Everything the
simulator schedules is picklable by construction — callbacks are bound
methods or :func:`functools.partial` objects, never lambdas — so a
checkpoint captures the event queue, RNG streams, clock, and all node /
addrman / churn state in one pass, and a restored run is bit-identical
to an uninterrupted one (pinned by the determinism tests).

This module is deliberately stdlib-only: the simulation core imports it
lazily and must not pull the rest of :mod:`repro.store` (which imports
the pipeline layer) into ``repro.simnet``'s import graph.
"""

from __future__ import annotations

import hashlib
import io
import json
import pickle
from typing import Any, Dict, Optional

from ..errors import CheckpointError

#: Bump on any incompatible change to the framing or to what the
#: simulator payload is expected to contain.
CHECKPOINT_FORMAT = 1

MAGIC = b"RPRCKPT\x01"

#: Pinned pickle protocol: the checkpoint digest of identical state must
#: not change when the interpreter's default protocol does.
PICKLE_PROTOCOL = 4

_HEADER_LEN_BYTES = 4
_MAX_HEADER = 1 << 20


#: The pure-Python pickler: the C pickler's dedicated ``set`` fast path
#: never consults ``reducer_override``, so canonicalization needs the
#: Python implementation (present in every supported CPython).
_PicklerBase = getattr(pickle, "_Pickler", pickle.Pickler)


class _CanonicalPickler(_PicklerBase):
    """A pickler that writes sets in sorted element order.

    A set's iteration order depends on its insertion history, so two
    *equal* sets — one grown live, one rebuilt by unpickling a
    checkpoint — can pickle to different bytes.  Emitting elements in
    sorted order makes equal simulation states produce equal checkpoint
    bytes (and therefore equal content-store digests), which is what
    lets ``store diff`` prove a resumed run matches an uninterrupted
    one.  Sets with unorderable elements fall back to default pickling.
    """

    def reducer_override(self, obj: Any):
        kind = type(obj)
        if kind is set or kind is frozenset:
            try:
                return (kind, (sorted(obj),))
            except TypeError:
                return NotImplemented
        return NotImplemented


def _dumps_canonical(obj: Any, *, aliasing: bool = True) -> bytes:
    buf = io.BytesIO()
    pickler = _CanonicalPickler(buf, protocol=PICKLE_PROTOCOL)
    if not aliasing:
        pickler.fast = 1
    pickler.dump(obj)
    return buf.getvalue()


def dump_checkpoint(
    obj: Any,
    *,
    kind: str,
    meta: Optional[Dict[str, Any]] = None,
    aliasing: bool = True,
) -> bytes:
    """Serialize ``obj`` into a framed, digest-protected checkpoint.

    ``aliasing=False`` emits a memo-free pickle: every occurrence of a
    shared object is written out in full instead of as a back-reference.
    Object graphs that are *equal* but share substructure differently —
    a result merged from an unpickled checkpoint plus freshly built
    levels vs. one built in a single process (where interned strings and
    reused specs alias) — then serialize to equal bytes, which is what
    digest-based result comparison needs.  Only valid for acyclic
    payloads; simulator state (cyclic by construction) must keep the
    memo.
    """
    payload = _dumps_canonical(obj, aliasing=aliasing)
    header = {
        "format": CHECKPOINT_FORMAT,
        "kind": kind,
        "pickle_protocol": PICKLE_PROTOCOL,
        "payload_sha256": hashlib.sha256(payload).hexdigest(),
        "payload_bytes": len(payload),
        "meta": meta if meta is not None else {},
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    out = io.BytesIO()
    out.write(MAGIC)
    out.write(len(header_bytes).to_bytes(_HEADER_LEN_BYTES, "big"))
    out.write(header_bytes)
    out.write(payload)
    return out.getvalue()


def read_header(data: bytes) -> Dict[str, Any]:
    """Parse and validate the header without unpickling the payload."""
    if len(data) < len(MAGIC) + _HEADER_LEN_BYTES:
        raise CheckpointError("checkpoint too short to contain a header")
    if data[: len(MAGIC)] != MAGIC:
        raise CheckpointError("bad checkpoint magic (not a repro checkpoint)")
    offset = len(MAGIC)
    header_len = int.from_bytes(
        data[offset : offset + _HEADER_LEN_BYTES], "big"
    )
    if header_len > _MAX_HEADER:
        raise CheckpointError(f"implausible header length {header_len}")
    offset += _HEADER_LEN_BYTES
    raw = data[offset : offset + header_len]
    if len(raw) != header_len:
        raise CheckpointError("checkpoint truncated inside the header")
    try:
        header = json.loads(raw.decode("utf-8"))
    except ValueError as exc:
        raise CheckpointError(f"corrupt checkpoint header: {exc}") from exc
    if header.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"unsupported checkpoint format {header.get('format')!r} "
            f"(this build reads format {CHECKPOINT_FORMAT})"
        )
    header["_payload_offset"] = offset + header_len
    return header


def load_checkpoint(data: bytes, *, expect_kind: Optional[str] = None) -> Any:
    """Validate ``data`` and return the unpickled object."""
    header = read_header(data)
    if expect_kind is not None and header.get("kind") != expect_kind:
        raise CheckpointError(
            f"checkpoint kind {header.get('kind')!r}, expected {expect_kind!r}"
        )
    payload = data[header["_payload_offset"] :]
    if len(payload) != header["payload_bytes"]:
        raise CheckpointError(
            f"checkpoint payload truncated: {len(payload)} of "
            f"{header['payload_bytes']} bytes"
        )
    digest = hashlib.sha256(payload).hexdigest()
    if digest != header["payload_sha256"]:
        raise CheckpointError("checkpoint payload digest mismatch")
    return pickle.loads(payload)
