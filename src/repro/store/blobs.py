"""Content-addressed blob storage.

Blobs are immutable byte strings keyed by their SHA-256 hex digest and
laid out git-style under ``objects/<first two hex>/<remaining hex>``.
Writes are atomic — the blob is written to a temporary file in the same
directory and ``os.replace``d into place — so a killed process can never
leave a half-written object under its final name, and concurrent writers
of the same content race harmlessly (both produce identical bytes).
"""

from __future__ import annotations

import errno
import hashlib
import os
import tempfile
from pathlib import Path
from typing import Iterator, Union

from ..errors import ReadOnlyStoreError, StoreError

PathLike = Union[str, Path]

#: errno values meaning "the filesystem refused the write", as opposed
#: to a corrupt store or a programming error.
_READ_ONLY_ERRNOS = (errno.EROFS, errno.EACCES, errno.EPERM)


def reject_read_only(exc: OSError, root: PathLike, action: str) -> None:
    """Re-raise ``exc`` as :class:`ReadOnlyStoreError` when it denotes a
    read-only/permission-denied store root; otherwise let it propagate
    untouched by returning."""
    if exc.errno in _READ_ONLY_ERRNOS:
        raise ReadOnlyStoreError(
            f"store root {os.fspath(root)!r} is not writable "
            f"(cannot {action}): {exc}"
        ) from exc


def sha256_hex(data: bytes) -> str:
    """The hex digest used as a blob's address."""
    return hashlib.sha256(data).hexdigest()


class BlobStore:
    """SHA-256-addressed object store rooted at ``root``."""

    def __init__(self, root: PathLike) -> None:
        self.root = Path(root)
        self.objects_dir = self.root / "objects"
        try:
            self.objects_dir.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            reject_read_only(exc, self.root, "create objects/")
            raise

    def _path(self, digest: str) -> Path:
        if len(digest) != 64 or any(c not in "0123456789abcdef" for c in digest):
            raise StoreError(f"not a sha256 hex digest: {digest!r}")
        return self.objects_dir / digest[:2] / digest[2:]

    # ------------------------------------------------------------------
    # Core operations
    # ------------------------------------------------------------------
    def put(self, data: bytes) -> str:
        """Store ``data``; return its digest.  Idempotent."""
        digest = sha256_hex(data)
        path = self._path(digest)
        if path.exists():
            return digest
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".blob"
            )
        except OSError as exc:
            reject_read_only(exc, self.root, "write a blob")
            raise
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException as exc:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            if isinstance(exc, OSError):
                reject_read_only(exc, self.root, "write a blob")
            raise
        return digest

    def get(self, digest: str) -> bytes:
        """Read a blob back, verifying content against its address."""
        path = self._path(digest)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            raise StoreError(f"blob {digest} not in store") from None
        if sha256_hex(data) != digest:
            raise StoreError(f"blob {digest} is corrupt on disk")
        return data

    def has(self, digest: str) -> bool:
        return self._path(digest).exists()

    def delete(self, digest: str) -> bool:
        """Remove a blob; returns whether it existed."""
        path = self._path(digest)
        try:
            path.unlink()
        except FileNotFoundError:
            return False
        except OSError as exc:
            reject_read_only(exc, self.root, "delete a blob")
            raise
        return True

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def digests(self) -> Iterator[str]:
        """Every digest currently stored."""
        for shard in sorted(self.objects_dir.iterdir()):
            if not shard.is_dir() or len(shard.name) != 2:
                continue
            for obj in sorted(shard.iterdir()):
                if not obj.name.startswith("."):
                    yield shard.name + obj.name

    def size_bytes(self, digest: str) -> int:
        try:
            return self._path(digest).stat().st_size
        except FileNotFoundError:
            raise StoreError(f"blob {digest} not in store") from None

    def total_bytes(self) -> int:
        return sum(self.size_bytes(d) for d in self.digests())

    def __len__(self) -> int:
        return sum(1 for _ in self.digests())

    def __contains__(self, digest: str) -> bool:
        return self.has(digest)

    def __repr__(self) -> str:
        return f"BlobStore(root={str(self.root)!r}, blobs={len(self)})"
