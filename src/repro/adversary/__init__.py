"""Adversarial sync-attack suite (paper §IV-B, Fig. 8).

Deterministic misbehaving peers — addr flooders, eclipse campaigners,
sync stallers, inventory spammers — declared in FaultPlan-style JSON
(:class:`AttackPlan`) and compiled onto protocol scenarios
(:func:`install_attack`).  See ``docs/architecture.md`` for the
behavior taxonomy and the determinism contract.
"""

from .behaviors import (
    AddrFlooderNode,
    AdversaryNode,
    EclipseNode,
    InvSpammerNode,
    SyncStallerNode,
)
from .install import AttackForce, install_attack
from .plan import (
    ATTACK_FORMAT,
    ATTACK_KINDS,
    AttackerSpec,
    AttackPlan,
    AttackScope,
)

__all__ = [
    "ATTACK_FORMAT",
    "ATTACK_KINDS",
    "AddrFlooderNode",
    "AdversaryNode",
    "AttackForce",
    "AttackPlan",
    "AttackScope",
    "AttackerSpec",
    "EclipseNode",
    "InvSpammerNode",
    "SyncStallerNode",
    "install_attack",
]
