"""Compile an :class:`AttackPlan` onto a live protocol scenario.

``install_attack`` materializes every attacker cohort as real nodes in
the scenario's world — placed through the asmap universe per the plan's
scope, bootstrapped with reachable contacts, and scheduled to activate
at each spec's ``start`` on the scenario clock (warmup included, the
same convention fault windows use).

Attackers are deliberately **not** appended to ``scenario.nodes``: the
honest-node roster drives churn, mining, fault targeting, and the
sync-fraction metric, and an attacker must neither be churned out, win
a mining draw, nor count as "synchronized".  They live on the returned
:class:`AttackForce`, whose aggregated counters flow into campaign
results.

Placement draws come from one dedicated ``("attack",)`` stream, so the
same plan on the same seed lands attackers on the same addresses no
matter what else the scenario does — and an attack-free run's streams
are untouched.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from ..errors import ConfigurationError
from ..simnet.addresses import NetAddr
from .behaviors import (
    AddrFlooderNode,
    AdversaryNode,
    EclipseNode,
    InvSpammerNode,
    SyncStallerNode,
)
from .plan import (
    KIND_ADDR_FLOODER,
    KIND_ECLIPSE,
    KIND_INV_SPAMMER,
    KIND_SYNC_STALLER,
    AttackerSpec,
    AttackPlan,
)

__all__ = ["AttackForce", "install_attack", "place_address"]

#: Reachable contacts each attacker bootstraps its addrman with.
_BOOTSTRAP_CONTACTS = 16

#: Prefix-scoped placement allocates host numbers downward from here so
#: it cannot collide with the universe's upward allocation in the same
#: /16 (the universe stops at 0xFFFE hosts per claimed prefix).
_PREFIX_HOST_TOP = 0xFFFE


class AttackForce:
    """The materialized attackers of one plan, with their counters."""

    def __init__(self, plan: AttackPlan, attackers: List[AdversaryNode]) -> None:
        self.plan = plan
        self.attackers = attackers

    def __len__(self) -> int:
        return len(self.attackers)

    def attacker_addrs(self) -> List[NetAddr]:
        return [node.addr for node in self.attackers]

    def by_kind(self, kind: str) -> List[AdversaryNode]:
        return [node for node in self.attackers if node.kind == kind]

    def stats(self) -> Dict[str, int]:
        """Aggregated per-kind counters (stable key order)."""
        totals: Dict[str, int] = {"attackers": len(self.attackers)}
        for node in self.attackers:
            key = f"n_{node.kind}"
            totals[key] = totals.get(key, 0) + 1
            for name, value in node.stats().items():
                totals[name] = totals.get(name, 0) + value
        return dict(sorted(totals.items()))


def place_address(
    universe: Any,
    spec: AttackerSpec,
    index: int,
    rng,
    prefix_hosts: Dict[int, int],
) -> NetAddr:
    """One attacker address per the spec's scope (or hosting profile).

    Shared by both fidelities: protocol-mode attackers here, crawl-mode
    flooder placement in ``LongitudinalScenario``.  ``prefix_hosts``
    carries the per-/16 allocation cursor across calls for one install.
    """
    scope = spec.scope
    if scope is not None and scope.addrs:
        if index < len(scope.addrs):
            return NetAddr.parse(scope.addrs[index])
        # More attackers than literal addresses: fall through to the
        # remaining selectors, or the hosting profile.
    if scope is not None and scope.asns:
        asn = scope.asns[index % len(scope.asns)]
        return universe.allocate_address(asn)
    if scope is not None and scope.prefixes:
        prefix = scope.prefixes[index % len(scope.prefixes)]
        host = prefix_hosts.get(prefix, _PREFIX_HOST_TOP)
        prefix_hosts[prefix] = host - 1
        return NetAddr(ip=(prefix << 16) | host, port=8333)
    asn = universe.sample_asn("reachable", rng)
    return universe.allocate_address(asn)


def install_attack(scenario: Any, plan: AttackPlan) -> AttackForce:
    """Materialize ``plan`` onto a built :class:`ProtocolScenario`."""
    plan.validate_for(scenario.config.n_reachable)
    sim = scenario.sim
    rng = sim.random.stream("attack")
    attackers: List[AdversaryNode] = []
    prefix_hosts: Dict[int, int] = {}

    # Pass 1: place every attacker, so eclipse cohorts can name the full
    # attacker address set before any node is constructed.
    placements: List[List[NetAddr]] = []
    for spec_index, spec in enumerate(plan.attackers):
        placements.append(
            [
                place_address(scenario.universe, spec, i, rng, prefix_hosts)
                for i in range(spec.count)
            ]
        )
    all_addrs = tuple(addr for cohort in placements for addr in cohort)

    # Pass 2: build, bootstrap, and schedule each attacker.
    for spec_index, spec in enumerate(plan.attackers):
        label = spec.name or f"{spec_index}:{spec.kind}"
        victim: Optional[NetAddr] = None
        if spec.kind == KIND_ECLIPSE:
            if spec.victim:
                victim = NetAddr.parse(spec.victim)
                if victim in all_addrs:
                    raise ConfigurationError(
                        f"attacker #{spec_index}: victim {spec.victim!r} "
                        "overlaps the attacker placement — a node cannot "
                        "eclipse itself"
                    )
                if not any(node.addr == victim for node in scenario.nodes):
                    raise ConfigurationError(
                        f"attacker #{spec_index}: victim {spec.victim!r} "
                        "is not a standing node of this scenario"
                    )
            else:
                victim = scenario.nodes[0].addr
        for i, addr in enumerate(placements[spec_index]):
            name = f"{label}#{i}" if spec.count > 1 else label
            config = scenario._clone_node_config()
            config.listen = spec.tier == "reachable"
            node: AdversaryNode
            if spec.kind == KIND_ADDR_FLOODER:
                config.serve_repeated_getaddr = True
                volume = spec.flood_volume
                if volume == 0:
                    # Deterministic per-attacker draw from the scenario's
                    # calibrated volume model, on the attacker's stream.
                    from ..netmodel.malicious import FloodVolumeModel

                    volume = FloodVolumeModel().sample(
                        sim.random.stream("adversary", name)
                    )
                node = AddrFlooderNode(
                    sim,
                    addr,
                    population=scenario.population,
                    flood_volume=volume,
                    flood_interval=spec.flood_interval,
                    config=config,
                    name=name,
                )
            elif spec.kind == KIND_ECLIPSE:
                node = EclipseNode(
                    sim,
                    addr,
                    victim=victim,
                    cohort=all_addrs,
                    connections_target=spec.connections,
                    config=config,
                    name=name,
                )
            elif spec.kind == KIND_SYNC_STALLER:
                node = SyncStallerNode(
                    sim,
                    addr,
                    height_lead=spec.height_lead,
                    announce_interval=spec.announce_interval,
                    config=config,
                    name=name,
                )
            elif spec.kind == KIND_INV_SPAMMER:
                node = InvSpammerNode(
                    sim,
                    addr,
                    spam_batch=spec.spam_batch,
                    spam_interval=spec.spam_interval,
                    config=config,
                    name=name,
                )
            else:  # pragma: no cover - plan.validate() rejects these
                raise ConfigurationError(f"unknown attacker kind {spec.kind!r}")
            contacts = [a for a in scenario._reachable_pool if a != addr]
            sample = rng.sample(
                contacts, min(_BOOTSTRAP_CONTACTS, len(contacts))
            )
            node.bootstrap(sample)
            if config.listen:
                scenario.seeder.register(addr)
            # Activation is always event-driven (even for start=0) so an
            # attacker never comes up before the honest listeners that
            # scenario.start() brings online synchronously.
            sim.schedule(spec.start, node.start)
            attackers.append(node)
    return AttackForce(plan, attackers)
