"""Deterministic adversarial node behaviors (the §IV-B attacker family).

Four misbehaving peers built on the full-tier
:class:`~repro.bitcoin.node.BitcoinNode` behavior interface:

* :class:`AddrFlooderNode` — serves fabricated unreachable addresses at
  a configured rate (the paper's 73-node attack, protocol fidelity);
* :class:`EclipseNode` — monopolizes a victim's connection slots, feeds
  it only attacker-cohort addresses, and withholds every block;
* :class:`SyncStallerNode` — advertises blocks it never delivers,
  trapping victims in retry loops that persist across restarts;
* :class:`InvSpammerNode` — announces bogus transaction inventory to
  every peer, burning request round-trips.

Determinism contract: every adversarial draw (pool repeats, bogus
object ids, cohort rotation) comes from the attacker's **own named
stream** ``("adversary", <name>)``, so a run replays bit-identically
and adding/removing one attacker never shifts another's draws.  The
inherited protocol plumbing keeps its usual ``("node", <addr>)``
stream.  All timers are ``sim.call_every`` with bound methods — no
lambdas — so attacks survive ``sim.snapshot()`` / ``restore``
mid-campaign.

None of this code runs inside the handler fast lane: adversarial sends
enqueue through ``Peer`` queues like any protocol traffic, so the hot
loop's allocation budget (HOT001) is untouched.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple

from ..simnet.addresses import NetAddr, TimestampedAddr
from ..simnet.simulator import Simulator
from ..simnet.transport import Socket
from ..bitcoin.config import NodeConfig
from ..bitcoin.messages import (
    VERACK,
    Addr,
    GetBlocks,
    GetData,
    Inv,
    InvItem,
    InvType,
    Version,
)
from ..bitcoin.node import BitcoinNode
from ..bitcoin.peer import Peer

__all__ = [
    "AddrFlooderNode",
    "AdversaryNode",
    "EclipseNode",
    "InvSpammerNode",
    "SyncStallerNode",
]


class AdversaryNode(BitcoinNode):
    """Base class: a full node with a private adversarial RNG stream."""

    kind = "adversary"

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        config: Optional[NodeConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, addr, config=config, name=name)
        #: Every adversarial draw comes from here — never from the
        #: node-plumbing stream — so attackers replay independently.
        self.adv_rng = sim.random.stream("adversary", self.name)

    def stats(self) -> dict:
        """Per-attacker counters (aggregated by the AttackForce)."""
        return {}


class AddrFlooderNode(AdversaryNode):
    """The paper's ADDR flooder as a first-class behavior.

    GETADDR responses come entirely from a lazily minted pool of
    fabricated unreachable addresses (no self-advertisement — the tell
    the §V detector keys on), and every ``flood_interval`` seconds the
    node pushes small unsolicited ADDR announcements that honest peers
    forward, spreading the pollution.
    """

    kind = "addr_flooder"

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        population: Any,
        flood_volume: int,
        config: Optional[NodeConfig] = None,
        flood_interval: float = 30.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, addr, config=config, name=name)
        self.population = population
        self.flood_volume = max(1, flood_volume)
        self.flood_interval = flood_interval
        self._flood_pool: List[NetAddr] = []
        self._flood_cursor = 0
        self._flood_task = None
        self.addrs_flooded = 0

    def _pool_addr(self) -> NetAddr:
        """Next fabricated address, minting lazily up to the volume."""
        if self._flood_cursor < len(self._flood_pool):
            addr = self._flood_pool[self._flood_cursor]
        elif len(self._flood_pool) < self.flood_volume:
            addr = self.population.mint_fake_address().addr
            self._flood_pool.append(addr)
        else:
            addr = self.adv_rng.choice(self._flood_pool)
        self._flood_cursor = (self._flood_cursor + 1) % max(
            1, min(self.flood_volume, len(self._flood_pool) + 1)
        )
        return addr

    def _build_addr_response(self, records) -> List[TimestampedAddr]:
        now = self.sim.now
        count = min(1000, self.flood_volume)
        flooded = [
            TimestampedAddr(self._pool_addr(), now) for _ in range(count)
        ]
        self.addrs_flooded += len(flooded)
        return flooded

    def start(self) -> None:
        super().start()
        if self._flood_task is None and self.flood_interval > 0:
            self._flood_task = self.sim.call_every(
                self.flood_interval, self._push_flood
            )

    def stop(self) -> None:
        if self._flood_task is not None:
            self._flood_task.stop()
            self._flood_task = None
        super().stop()

    def _push_flood(self) -> None:
        """Unsolicited ≤10-address announcements to every peer."""
        if not self.running:
            return
        now = self.sim.now
        for peer in self.established_peers:
            records = tuple(
                TimestampedAddr(self._pool_addr(), now) for _ in range(10)
            )
            peer.enqueue_send(Addr(addresses=records))
            self.addrs_flooded += len(records)
        self._wake_handler()

    def stats(self) -> dict:
        return {"addrs_flooded": self.addrs_flooded}


class EclipseNode(AdversaryNode):
    """Monopolize a victim's connection slots, feed it only attackers.

    Each attacker holds ``connections_target`` sockets open to the
    victim (the transport allows parallel sockets to one host; only the
    honest connection manager deduplicates), answers the victim's
    GETADDR with nothing but attacker-cohort addresses, and pushes the
    cohort as unsolicited ADDR gossip so the victim's addrman drains
    toward attacker-only entries — the Heilman-style slot monopoly the
    paper's §IV-B churn pressure makes cheap.  On the block plane it
    claims its real (synced) height but withholds every block, so a
    victim whose connections it controls stops synchronizing.
    """

    kind = "eclipse"

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        victim: NetAddr,
        cohort: Tuple[NetAddr, ...],
        connections_target: int = 8,
        config: Optional[NodeConfig] = None,
        grip_interval: float = 10.0,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, addr, config=config, name=name)
        self.victim = victim
        #: Every attacker address in this cohort (self included): the
        #: only thing the victim is ever told about.
        self.cohort: Tuple[NetAddr, ...] = cohort
        self.connections_target = connections_target
        self.grip_interval = grip_interval
        self._grip_task = None
        self._pending_connects = 0
        self.eclipse_addrs_sent = 0
        self.blocks_withheld = 0

    # -- slot monopoly --------------------------------------------------
    def victim_links(self) -> int:
        """Open sockets this attacker holds to the victim."""
        return sum(
            1
            for peer in self.peers.values()
            if peer.remote_addr == self.victim and peer.socket.open
        )

    def start(self) -> None:
        super().start()
        if self._grip_task is None:
            self._grip_task = self.sim.call_every(
                self.grip_interval, self._tighten_grip
            )

    def stop(self) -> None:
        if self._grip_task is not None:
            self._grip_task.stop()
            self._grip_task = None
        super().stop()

    def _tighten_grip(self) -> None:
        """Top the victim-socket count back up to the target."""
        if not self.running:
            return
        deficit = (
            self.connections_target
            - self.victim_links()
            - self._pending_connects
        )
        for _ in range(max(0, deficit)):
            self._pending_connects += 1
            # Straight to the transport: the honest ConnectionManager
            # would refuse a second socket to one host, which is exactly
            # the courtesy an eclipse attacker does not extend.
            self.sim.network.connect(
                self.addr,
                self.victim,
                handler=self,
                on_result=self._grip_result,
                timeout=self.config.connect_timeout,
            )
        self._feed_victim()

    def _grip_result(self, socket: Optional[Socket]) -> None:
        self._pending_connects = max(0, self._pending_connects - 1)
        if socket is None or not self.running:
            if socket is not None:
                socket.close()
            return
        peer = self._adopt_socket(socket)
        peer.enqueue_send(
            Version(
                sender=self.addr,
                receiver=self.victim,
                start_height=self.chain.height,
            )
        )
        self._wake_handler()

    # -- address-plane takeover -----------------------------------------
    def _cohort_records(self, count: int) -> Tuple[TimestampedAddr, ...]:
        now = self.sim.now
        if count >= len(self.cohort):
            picks: List[NetAddr] = list(self.cohort)
        else:
            picks = self.adv_rng.sample(list(self.cohort), count)
        return tuple(TimestampedAddr(a, now) for a in picks)

    def _build_addr_response(self, records) -> List[TimestampedAddr]:
        response = list(self._cohort_records(len(self.cohort)))
        self.eclipse_addrs_sent += len(response)
        return response

    def _feed_victim(self) -> None:
        """Push cohort gossip down every victim-facing socket."""
        pushed = False
        for peer in self.peers.values():
            if peer.remote_addr != self.victim or not peer.established:
                continue
            records = self._cohort_records(min(10, len(self.cohort)))
            peer.enqueue_send(Addr(addresses=records))
            self.eclipse_addrs_sent += len(records)
            pushed = True
        if pushed:
            self._wake_handler()

    def _handle_addr(self, peer: Peer, message: Addr) -> None:
        # Swallow gossip: honest addresses must never transit the cohort
        # to a victim (the inherited forwarding would hand it an exit).
        peer.addr_messages_received += 1
        peer.addrs_received += len(message.addresses)

    # -- block-plane starvation ------------------------------------------
    # Controlling what the victim sees of the chain is the point of the
    # monopoly: the campaigner keeps a synced chain and claims its real
    # height, but never serves a block to anyone.  A peer whose every
    # connection is a campaigner can hold a conversation and still not
    # download a single block.
    def _handle_getblocks(self, peer: Peer, message: GetBlocks) -> None:
        self.blocks_withheld += 1

    def _handle_getdata(self, peer: Peer, message: GetData) -> None:
        self.blocks_withheld += sum(
            1 for item in message.items if item.type is InvType.BLOCK
        )

    def stats(self) -> dict:
        return {
            "blocks_withheld": self.blocks_withheld,
            "eclipse_links": self.victim_links(),
            "eclipse_addrs_sent": self.eclipse_addrs_sent,
        }


class SyncStallerNode(AdversaryNode):
    """Advertise a chain lead, never deliver a block.

    The staller claims ``height_lead`` blocks above its real tip and
    answers GETBLOCKS with stable bogus inventory, so a victim fills its
    per-peer ``blocks_in_flight`` window with downloads that never
    arrive and — because ``_maybe_sync_from`` skips peers with blocks in
    flight — stops asking that peer for anything useful.  The bogus ids
    are a deterministic function of the attacker's stream, so the trap
    re-arms identically after a victim restart (the §IV-D resync
    experiment's adversarial twin).
    """

    kind = "sync_staller"

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        height_lead: int = 1000,
        announce_interval: float = 60.0,
        config: Optional[NodeConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, addr, config=config, name=name)
        self.height_lead = height_lead
        self.announce_interval = announce_interval
        self._announce_task = None
        self._bogus_ids: List[int] = []
        self.stalled_getdata = 0
        self.invs_advertised = 0

    def _phantom_height(self) -> int:
        return self.chain.height + self.height_lead

    def _bogus_id(self, index: int) -> int:
        """The ``index``-th phantom block id (stable across restarts)."""
        while len(self._bogus_ids) <= index:
            self._bogus_ids.append(self.adv_rng.getrandbits(63) | (1 << 63))
        return self._bogus_ids[index]

    def start(self) -> None:
        super().start()
        if self._announce_task is None and self.announce_interval > 0:
            self._announce_task = self.sim.call_every(
                self.announce_interval, self._announce_phantoms
            )

    def stop(self) -> None:
        if self._announce_task is not None:
            self._announce_task.stop()
            self._announce_task = None
        super().stop()

    def _phantom_inv(self, from_height: int, limit: int = 500) -> Inv:
        top = self._phantom_height()
        first = max(from_height, self.chain.height)
        count = min(limit, max(0, top - first))
        items = tuple(
            InvItem(InvType.BLOCK, self._bogus_id(first - self.chain.height + i))
            for i in range(count)
        )
        self.invs_advertised += len(items)
        return Inv(items=items)

    def _announce_phantoms(self) -> None:
        if not self.running:
            return
        sent = False
        for peer in self.established_peers:
            inv = self._phantom_inv(self.chain.height, limit=16)
            if inv.items:
                peer.enqueue_send(inv)
                sent = True
        if sent:
            self._wake_handler()

    # -- protocol overrides ---------------------------------------------
    def _handle_version(self, peer: Peer, message: Version) -> None:
        peer.version_received = True
        peer.remote_height = message.start_height
        if peer.is_inbound:
            peer.enqueue_send(
                Version(
                    sender=self.addr,
                    receiver=peer.remote_addr,
                    start_height=self._phantom_height(),
                )
            )
        peer.enqueue_send(VERACK)
        if peer.verack_received and not peer.established:
            self._on_established(peer)

    def _on_established(self, peer: Peer) -> None:
        super()._on_established(peer)
        # Outbound handshakes carry the node's real height (the
        # connection manager sent that Version before we were asked);
        # the first phantom announcement supplies the lead either way.
        inv = self._phantom_inv(self.chain.height, limit=16)
        if inv.items:
            peer.enqueue_send(inv)

    def _handle_getblocks(self, peer: Peer, message: GetBlocks) -> None:
        inv = self._phantom_inv(message.from_height)
        if inv.items:
            peer.enqueue_send(inv)

    def _handle_getdata(self, peer: Peer, message: GetData) -> None:
        # Count the trapped requests; deliver nothing, ever.
        self.stalled_getdata += sum(
            1 for item in message.items if item.type is InvType.BLOCK
        )

    def _build_addr_response(self, records) -> List[TimestampedAddr]:
        # Self-advertisement only: a staller that handed out its honest
        # addrman would offer every trapped victim an exit.  One real,
        # reachable address also keeps it invisible to the §V ADDR
        # heuristic — the detection gap the stall-peer tests document.
        return [TimestampedAddr(self.addr, self.sim.now)]

    def _handle_addr(self, peer: Peer, message: Addr) -> None:
        # Same blackout as the eclipse cohort: ingest nothing, forward
        # nothing — a trapped victim learns no honest address from here.
        peer.addr_messages_received += 1
        peer.addrs_received += len(message.addresses)

    def stats(self) -> dict:
        return {
            "stalled_getdata": self.stalled_getdata,
            "invs_advertised": self.invs_advertised,
        }


class InvSpammerNode(AdversaryNode):
    """Announce bogus transaction inventory it never serves.

    Victims answer each announcement with a GETDATA round-trip that
    returns nothing — pure request-plane load, invisible to the ADDR
    detection heuristic.
    """

    kind = "inv_spammer"

    def __init__(
        self,
        sim: Simulator,
        addr: NetAddr,
        spam_batch: int = 8,
        spam_interval: float = 20.0,
        config: Optional[NodeConfig] = None,
        name: Optional[str] = None,
    ) -> None:
        super().__init__(sim, addr, config=config, name=name)
        self.spam_batch = spam_batch
        self.spam_interval = spam_interval
        self._spam_task = None
        self.invs_spammed = 0

    def start(self) -> None:
        super().start()
        if self._spam_task is None and self.spam_interval > 0:
            self._spam_task = self.sim.call_every(
                self.spam_interval, self._spam_round
            )

    def stop(self) -> None:
        if self._spam_task is not None:
            self._spam_task.stop()
            self._spam_task = None
        super().stop()

    def _spam_round(self) -> None:
        if not self.running:
            return
        sent = False
        for peer in self.established_peers:
            items = tuple(
                InvItem(InvType.TX, self.adv_rng.getrandbits(63) | (1 << 62))
                for _ in range(self.spam_batch)
            )
            peer.enqueue_send(Inv(items=items))
            self.invs_spammed += len(items)
            sent = True
        if sent:
            self._wake_handler()

    def stats(self) -> dict:
        return {"invs_spammed": self.invs_spammed}


# Method overrides must be re-bound into the per-class dispatch table:
# the handler loop resolves commands through ``cls._DISPATCH``, not
# ``getattr``, so a subclass that overrides a handler re-registers it.
SyncStallerNode._DISPATCH = {
    **BitcoinNode._DISPATCH,
    "version": SyncStallerNode._handle_version,
    "addr": SyncStallerNode._handle_addr,
    "getblocks": SyncStallerNode._handle_getblocks,
    "getdata": SyncStallerNode._handle_getdata,
}
EclipseNode._DISPATCH = {
    **BitcoinNode._DISPATCH,
    "addr": EclipseNode._handle_addr,
    "getblocks": EclipseNode._handle_getblocks,
    "getdata": EclipseNode._handle_getdata,
}
