"""Declarative attack plans (the adversarial analogue of fault plans).

An :class:`AttackPlan` is a seed-independent description of *who
misbehaves, where, and how hard*: an ordered tuple of
:class:`AttackerSpec` records, each naming an attacker kind, a placement
(:class:`AttackScope` over the asmap universe plus a reachable-vs-
unreachable tier), and kind-specific magnitudes (flood rate, eclipse
slot target, advertised height lead, spam batch size).

Plans are plain frozen dataclasses so they

* serialize through ``dataclasses.asdict`` into run-store keys — a
  campaign under an attack plan is a *different experiment* than the
  same campaign without one, and the content-addressed cache must see
  that;
* round-trip to JSON (:meth:`AttackPlan.to_json` / :meth:`from_json`)
  for the ``repro attack --plan plan.json`` CLI surface;
* sweep coherently: :meth:`AttackPlan.with_total` redistributes one
  total attacker count over the specs, which is what the Fig. 8
  degradation sweep varies.

A plan says nothing about randomness: compiled onto two simulators with
different seeds it produces different (but per-seed deterministic)
attacker placements and floods.  Each materialized attacker draws from
its own named RNG stream (``("adversary", <name>)``), so runs replay
bit-identically and adding an attacker never shifts another's draws.

Validation is **eager** and uses the shared error taxonomy: every
malformed plan raises :class:`~repro.errors.ConfigurationError` naming
the offending field at construction/parse time, never mid-run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Dict, Optional, Tuple, Union

from ..errors import ConfigurationError

#: Bump on incompatible plan-file schema changes.
ATTACK_FORMAT = 1

#: The attacker kinds the adversary package implements.
KIND_ADDR_FLOODER = "addr_flooder"
KIND_ECLIPSE = "eclipse"
KIND_SYNC_STALLER = "sync_staller"
KIND_INV_SPAMMER = "inv_spammer"
ATTACK_KINDS = (
    KIND_ADDR_FLOODER,
    KIND_ECLIPSE,
    KIND_SYNC_STALLER,
    KIND_INV_SPAMMER,
)

#: Placement tiers: reachable attackers listen (they are crawlable and
#: detectable, like the paper's 73); unreachable attackers only connect
#: out, hiding in the cloud Wang & Pustogarov describe.
TIERS = ("reachable", "unreachable")


@dataclass(frozen=True)
class AttackScope:
    """Where attackers are placed in the address space.

    The union of three selectors, mirroring
    :class:`~repro.faults.plan.FaultScope`: autonomous systems (matched
    through the scenario's asmap universe), /16 netgroups, and literal
    ``"a.b.c.d:port"`` addresses.  A spec with **no** scope places its
    attackers by the hosting distribution; a spec with an explicitly
    *empty* scope is rejected — it selects nothing and is always a
    config mistake.
    """

    asns: Tuple[int, ...] = ()
    prefixes: Tuple[int, ...] = ()
    addrs: Tuple[str, ...] = ()

    @property
    def empty(self) -> bool:
        return not (self.asns or self.prefixes or self.addrs)

    def validate(self, owner: str = "attacker") -> None:
        if self.empty:
            raise ConfigurationError(
                f"{owner}: scope is empty — an explicit scope must select "
                "at least one asn, prefix, or address (omit the scope for "
                "hosting-distribution placement)"
            )
        for asn in self.asns:
            if not isinstance(asn, int) or asn < 0:
                raise ConfigurationError(
                    f"{owner}: scope asn must be a non-negative int, got {asn!r}"
                )
        for prefix in self.prefixes:
            if not isinstance(prefix, int) or not 0 <= prefix <= 0xFFFF:
                raise ConfigurationError(
                    f"{owner}: scope prefix must be a /16 group in 0..65535, "
                    f"got {prefix!r}"
                )
        from ..simnet.addresses import NetAddr

        for text in self.addrs:
            try:
                NetAddr.parse(text)
            except (ValueError, TypeError) as exc:
                raise ConfigurationError(
                    f"{owner}: scope address {text!r} is not parseable: {exc}"
                ) from exc


@dataclass(frozen=True)
class AttackerSpec:
    """One attacker cohort: a kind, a count, a placement, magnitudes.

    Field use by kind (unused fields must stay at their defaults):

    ``addr_flooder``
        ``flood_volume`` — unique fabricated-address pool per attacker
        (0 = draw from the scenario's volume model); ``flood_interval``
        — seconds between unsolicited ≤10-address ADDR pushes (0
        disables pushes, GETADDR responses still flood).
    ``eclipse``
        ``victim`` — the target's literal address ("" = pick the first
        standing reachable node at install time); ``connections`` —
        inbound slots *each* attacker holds on the victim.
    ``sync_staller``
        ``height_lead`` — blocks above its real tip the staller
        advertises; ``announce_interval`` — seconds between bogus
        inventory announcements.
    ``inv_spammer``
        ``spam_batch`` — bogus tx inventory items per announcement;
        ``spam_interval`` — seconds between announcements.
    """

    kind: str
    count: int = 1
    #: ``None`` = place by the hosting distribution (no scope).
    scope: Optional[AttackScope] = None
    tier: str = "unreachable"
    #: Activation time on the scenario clock (0 = from the start).
    start: float = 0.0
    # addr_flooder
    flood_volume: int = 0
    flood_interval: float = 30.0
    # eclipse
    victim: str = ""
    connections: int = 8
    # sync_staller
    height_lead: int = 1000
    announce_interval: float = 60.0
    # inv_spammer
    spam_batch: int = 8
    spam_interval: float = 20.0
    #: Label used for the attackers' RNG streams and in stats; defaults
    #: to ``"<index>:<kind>"`` at install time.
    name: str = ""

    def validate(self, index: int = 0) -> None:
        owner = f"attacker #{index}"
        if self.kind not in ATTACK_KINDS:
            raise ConfigurationError(
                f"{owner}: unknown attacker kind {self.kind!r} "
                f"(want one of {ATTACK_KINDS})"
            )
        if not isinstance(self.count, int) or self.count < 1:
            raise ConfigurationError(
                f"{owner}: count must be an int >= 1, got {self.count!r}"
            )
        if self.tier not in TIERS:
            raise ConfigurationError(
                f"{owner}: tier must be one of {TIERS}, got {self.tier!r}"
            )
        if self.start < 0:
            raise ConfigurationError(
                f"{owner}: start must be >= 0, got {self.start}"
            )
        if self.scope is not None:
            self.scope.validate(owner)
        if self.victim and self.kind != KIND_ECLIPSE:
            raise ConfigurationError(
                f"{owner}: victim is only meaningful for eclipse attackers"
            )
        if self.kind == KIND_ADDR_FLOODER:
            if self.flood_volume < 0:
                raise ConfigurationError(
                    f"{owner}: flood_volume must be >= 0 "
                    f"(0 = volume-model draw), got {self.flood_volume}"
                )
            if self.flood_interval < 0:
                raise ConfigurationError(
                    f"{owner}: flood_interval must be >= 0 "
                    f"(0 = no unsolicited pushes), got {self.flood_interval}"
                )
        elif self.kind == KIND_ECLIPSE:
            if self.connections < 1:
                raise ConfigurationError(
                    f"{owner}: connections must be >= 1, got {self.connections}"
                )
            if self.victim:
                from ..simnet.addresses import NetAddr

                try:
                    NetAddr.parse(self.victim)
                except (ValueError, TypeError) as exc:
                    raise ConfigurationError(
                        f"{owner}: victim {self.victim!r} is not parseable: {exc}"
                    ) from exc
                if self.scope is not None and self.victim in self.scope.addrs:
                    raise ConfigurationError(
                        f"{owner}: victim {self.victim!r} overlaps the "
                        "attacker placement scope — a node cannot eclipse "
                        "itself"
                    )
        elif self.kind == KIND_SYNC_STALLER:
            if self.height_lead < 1:
                raise ConfigurationError(
                    f"{owner}: height_lead must be >= 1, got {self.height_lead}"
                )
            if self.announce_interval <= 0:
                raise ConfigurationError(
                    f"{owner}: announce_interval must be positive, "
                    f"got {self.announce_interval}"
                )
        elif self.kind == KIND_INV_SPAMMER:
            if not 1 <= self.spam_batch <= 500:
                raise ConfigurationError(
                    f"{owner}: spam_batch must be in 1..500, got {self.spam_batch}"
                )
            if self.spam_interval <= 0:
                raise ConfigurationError(
                    f"{owner}: spam_interval must be positive, "
                    f"got {self.spam_interval}"
                )


@dataclass(frozen=True)
class AttackPlan:
    """An ordered collection of attacker cohorts applied to one run."""

    attackers: Tuple[AttackerSpec, ...] = ()
    format: int = ATTACK_FORMAT

    def validate(self) -> None:
        if self.format != ATTACK_FORMAT:
            raise ConfigurationError(
                f"unsupported attack plan format {self.format!r} "
                f"(this build reads format {ATTACK_FORMAT})"
            )
        for index, spec in enumerate(self.attackers):
            spec.validate(index)

    def validate_for(self, network_size: int) -> None:
        """Check the plan against a concrete network sizing.

        The reachable-tier attacker count is bounded by the standing
        network: more reachable attackers than reachable slots is a
        sizing mistake that would otherwise surface as a confusing
        address-allocation failure mid-run.
        """
        self.validate()
        reachable = sum(
            spec.count for spec in self.attackers if spec.tier == "reachable"
        )
        if reachable > network_size:
            raise ConfigurationError(
                f"attack plan count: {reachable} reachable-tier attackers "
                f"exceed the network size ({network_size} reachable nodes)"
            )

    def __len__(self) -> int:
        return len(self.attackers)

    @property
    def total_count(self) -> int:
        return sum(spec.count for spec in self.attackers)

    # ------------------------------------------------------------------
    # Count scaling (the degradation-sweep axis)
    # ------------------------------------------------------------------
    def with_total(self, total: int) -> "AttackPlan":
        """The same plan rescaled to ``total`` attackers overall.

        Counts are redistributed proportionally to the specs' declared
        counts (largest-remainder rounding, ties to the earliest spec);
        specs landing on zero are dropped.  ``total == 0`` yields the
        empty plan (a clean baseline).
        """
        if total < 0:
            raise ConfigurationError(
                f"attack plan count must be >= 0, got {total}"
            )
        if total == 0 or not self.attackers:
            return AttackPlan(attackers=())
        base = self.total_count
        shares = [spec.count * total / base for spec in self.attackers]
        counts = [int(share) for share in shares]
        remainders = sorted(
            range(len(shares)),
            key=lambda i: (counts[i] + 1 - shares[i], i),
        )
        for i in remainders[: total - sum(counts)]:
            counts[i] += 1
        scaled = tuple(
            replace(spec, count=count)
            for spec, count in zip(self.attackers, counts)
            if count > 0
        )
        return AttackPlan(attackers=scaled)

    # ------------------------------------------------------------------
    # (De)serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        import dataclasses

        return dataclasses.asdict(self)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AttackPlan":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"attack plan must be a JSON object, got {type(data).__name__}"
            )
        known = {"attackers", "format"}
        unknown = [key for key in data if key not in known]
        if unknown:
            raise ConfigurationError(
                f"unknown attack plan key(s) {unknown} (want {sorted(known)})"
            )
        specs = []
        for index, raw in enumerate(data.get("attackers", ())):
            if not isinstance(raw, dict):
                raise ConfigurationError(f"attacker #{index} must be an object")
            raw = dict(raw)
            scope: Optional[AttackScope] = None
            if raw.get("scope") is None:
                # Absent or null: hosting-distribution placement.  A
                # *present but empty* object is an explicit empty scope
                # and is rejected by AttackerSpec.validate below.
                raw.pop("scope", None)
            else:
                scope_raw = raw.pop("scope")
                scope_known = {"asns", "prefixes", "addrs"}
                scope_unknown = [
                    key for key in scope_raw if key not in scope_known
                ]
                if scope_unknown:
                    raise ConfigurationError(
                        f"attacker #{index} scope has unknown key(s) {scope_unknown}"
                    )
                scope = AttackScope(
                    asns=tuple(scope_raw.get("asns", ())),
                    prefixes=tuple(scope_raw.get("prefixes", ())),
                    addrs=tuple(scope_raw.get("addrs", ())),
                )
            spec_fields = {
                f.name for f in AttackerSpec.__dataclass_fields__.values()
            }
            bad = [key for key in raw if key not in spec_fields - {"scope"}]
            if bad:
                raise ConfigurationError(
                    f"attacker #{index} has unknown key(s) {bad}"
                )
            try:
                specs.append(AttackerSpec(scope=scope, **raw))
            except TypeError as exc:
                raise ConfigurationError(f"attacker #{index}: {exc}") from exc
        plan = cls(
            attackers=tuple(specs), format=data.get("format", ATTACK_FORMAT)
        )
        plan.validate()
        return plan

    @classmethod
    def from_json(cls, text: str) -> "AttackPlan":
        try:
            data = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(
                f"corrupt attack plan JSON: {exc}"
            ) from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: Union[str, Path]) -> "AttackPlan":
        path = Path(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise ConfigurationError(
                f"cannot read attack plan {path}: {exc}"
            ) from exc
        return cls.from_json(text)

    def to_file(self, path: Union[str, Path]) -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json(), encoding="utf-8")
        return path
