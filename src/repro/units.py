"""Time and size units used throughout the library.

Simulated time is a ``float`` number of seconds since the start of the
simulation.  These constants keep magic numbers out of the protocol and
scenario code and make durations self-describing at call sites, e.g.
``sim.schedule(2 * MINUTES, node.try_feeler)``.
"""

from __future__ import annotations

#: One second of simulated time (the base unit).
SECONDS: float = 1.0

#: Seconds in one minute.
MINUTES: float = 60.0

#: Seconds in one hour.
HOURS: float = 3600.0

#: Seconds in one day.
DAYS: float = 86400.0

#: Seconds in one (7-day) week.
WEEKS: float = 7 * DAYS

#: Bytes in one kilobyte / megabyte (binary, as used for message sizes).
KiB: int = 1024
MiB: int = 1024 * 1024


def format_duration(seconds: float) -> str:
    """Render a duration in seconds as a compact human-readable string.

    >>> format_duration(674)
    '11m 14s'
    >>> format_duration(17)
    '17s'
    >>> format_duration(3 * DAYS + 4 * HOURS)
    '3d 4h'
    """
    if seconds < 0:
        raise ValueError(f"duration must be non-negative, got {seconds}")
    seconds = int(round(seconds))
    if seconds < MINUTES:
        return f"{seconds}s"
    if seconds < HOURS:
        minutes, secs = divmod(seconds, 60)
        return f"{minutes}m {secs}s" if secs else f"{minutes}m"
    if seconds < DAYS:
        hours, rem = divmod(seconds, 3600)
        minutes = rem // 60
        return f"{hours}h {minutes}m" if minutes else f"{hours}h"
    days, rem = divmod(seconds, int(DAYS))
    hours = rem // 3600
    return f"{days}d {hours}h" if hours else f"{days}d"


def format_size(num_bytes: int) -> str:
    """Render a byte count with a binary-unit suffix.

    >>> format_size(2048)
    '2.0 KiB'
    """
    if num_bytes < 0:
        raise ValueError(f"size must be non-negative, got {num_bytes}")
    if num_bytes < KiB:
        return f"{num_bytes} B"
    if num_bytes < MiB:
        return f"{num_bytes / KiB:.1f} KiB"
    return f"{num_bytes / MiB:.1f} MiB"
