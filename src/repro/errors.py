"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency in the discrete-event simulation core."""


class ClockError(SimulationError):
    """An attempt to move simulated time backwards."""


class TransportError(SimulationError):
    """An invalid operation on the simulated network transport."""


class ConnectionClosedError(TransportError):
    """Sending on (or otherwise using) a connection that is already closed."""


class AddressInUseError(TransportError):
    """Registering a listener on an address that already has one."""


class ProtocolError(ReproError):
    """A violation of the simulated Bitcoin wire protocol."""


class HandshakeError(ProtocolError):
    """A version handshake failed or a message arrived before VERACK."""


class ChainError(ReproError):
    """An inconsistency in a simulated blockchain (unknown parent etc.)."""


class ScenarioError(ReproError):
    """Invalid scenario configuration (e.g. negative population sizes)."""


class ConfigurationError(ReproError, ValueError):
    """A malformed harness setting (CLI flag, environment variable, plan file).

    Subclasses :class:`ValueError` as well so call sites that predate the
    taxonomy (``except ValueError``) keep working.
    """


class FaultInjectionError(ReproError):
    """An invalid fault plan or a fault that cannot apply to this world.

    Raised at compile time (malformed :class:`~repro.faults.plan.FaultSpec`,
    a crash fault with no node provider) rather than mid-simulation: a
    fault plan either installs completely or not at all.
    """


class SupervisionError(ReproError):
    """Base class for supervised-runner failures."""


class SeedTaskError(SupervisionError):
    """One seed's task failed permanently under the supervised runner.

    Carries enough structure for partial-result reporting: which seed,
    how many attempts were made, and the terminal cause (``"crashed
    (exit code -9)"``, ``"hung past 30.0s timeout"``, or the task's own
    exception rendered as text).
    """

    def __init__(self, seed: object, attempts: int, cause: str) -> None:
        super().__init__(
            f"seed {seed!r} failed after {attempts} attempt(s): {cause}"
        )
        self.seed = seed
        self.attempts = attempts
        self.cause = cause


class CampaignAbortedError(SupervisionError):
    """A strict multi-seed run could not complete every seed.

    ``failures`` holds the per-seed :class:`SeedTaskError` records;
    ``partial`` the results that did complete (in input order, ``None``
    where a seed failed), so a caller aborting loudly still gets to keep
    what finished.
    """

    def __init__(self, message: str, failures=(), partial=None) -> None:
        super().__init__(message)
        self.failures = list(failures)
        self.partial = partial


class AnalysisError(ReproError):
    """Invalid input to an analysis routine (e.g. empty sample set)."""


class StoreError(ReproError):
    """A run-store failure (missing blob, corrupt manifest, bad key)."""


class LintError(ReproError):
    """A static-analysis failure (bad config, unreadable baseline)."""


class CheckpointError(StoreError):
    """A checkpoint payload is corrupt, truncated, or of the wrong kind."""


class ReadOnlyStoreError(StoreError):
    """A write against a store whose root refuses writes (EROFS/EACCES).

    Distinct from plain :class:`StoreError` so callers can tell "this
    deployment cannot accept writes right now" from "this store is
    corrupt": the serving layer maps it to *503 Service Unavailable*
    (retryable) instead of a generic 500.
    """


class ServeError(ReproError):
    """Base class for campaign-serving-layer failures."""


class ServiceBusyError(ServeError):
    """Submissions exceed the service's worker slots + queue budget.

    Carries ``retry_after`` (seconds), which the HTTP layer surfaces as
    a *429* response with a ``Retry-After`` header.
    """

    def __init__(self, message: str, retry_after: float) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuotaExceededError(ServeError):
    """A tenant is over its run-count or stored-bytes quota (HTTP 403)."""
