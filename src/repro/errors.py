"""Exception hierarchy for the repro package.

All exceptions raised by this library derive from :class:`ReproError`, so a
caller can catch library failures with a single ``except`` clause while
letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """An inconsistency in the discrete-event simulation core."""


class ClockError(SimulationError):
    """An attempt to move simulated time backwards."""


class TransportError(SimulationError):
    """An invalid operation on the simulated network transport."""


class ConnectionClosedError(TransportError):
    """Sending on (or otherwise using) a connection that is already closed."""


class AddressInUseError(TransportError):
    """Registering a listener on an address that already has one."""


class ProtocolError(ReproError):
    """A violation of the simulated Bitcoin wire protocol."""


class HandshakeError(ProtocolError):
    """A version handshake failed or a message arrived before VERACK."""


class ChainError(ReproError):
    """An inconsistency in a simulated blockchain (unknown parent etc.)."""


class ScenarioError(ReproError):
    """Invalid scenario configuration (e.g. negative population sizes)."""


class AnalysisError(ReproError):
    """Invalid input to an analysis routine (e.g. empty sample set)."""


class StoreError(ReproError):
    """A run-store failure (missing blob, corrupt manifest, bad key)."""


class LintError(ReproError):
    """A static-analysis failure (bad config, unreadable baseline)."""


class CheckpointError(StoreError):
    """A checkpoint payload is corrupt, truncated, or of the wrong kind."""
