"""Summary statistics used across the experiment harnesses."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError


@dataclass(frozen=True)
class Summary:
    """Five-number-style summary of one measured series."""

    count: int
    mean: float
    median: float
    minimum: float
    maximum: float
    p90: float
    p99: float
    std: float

    def as_dict(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "median": self.median,
            "min": self.minimum,
            "max": self.maximum,
            "p90": self.p90,
            "p99": self.p99,
            "std": self.std,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Compute a :class:`Summary`; raises on an empty input."""
    if len(values) == 0:
        raise AnalysisError("cannot summarize an empty series")
    array = np.asarray(values, dtype=float)
    return Summary(
        count=int(array.size),
        mean=float(array.mean()),
        median=float(np.median(array)),
        minimum=float(array.min()),
        maximum=float(array.max()),
        p90=float(np.percentile(array, 90)),
        p99=float(np.percentile(array, 99)),
        std=float(array.std()),
    )


def cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Empirical CDF: sorted values and cumulative probabilities."""
    if len(values) == 0:
        raise AnalysisError("cannot build a CDF from an empty series")
    xs = np.sort(np.asarray(values, dtype=float))
    ps = np.arange(1, xs.size + 1) / xs.size
    return xs, ps


def ccdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Complementary CDF (survival function)."""
    xs, ps = cdf(values)
    return xs, 1.0 - ps + 1.0 / xs.size


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Share of values strictly below ``threshold``."""
    if len(values) == 0:
        raise AnalysisError("empty series")
    array = np.asarray(values, dtype=float)
    return float((array < threshold).mean())


def top_k_share(counts: Dict, k: int) -> float:
    """Mass share of the ``k`` largest entries of a count mapping."""
    if not counts:
        raise AnalysisError("empty counts")
    ordered = sorted(counts.values(), reverse=True)
    total = sum(ordered)
    if total == 0:
        return 0.0
    return sum(ordered[:k]) / total


def k_to_cover(counts: Dict, share: float = 0.5) -> int:
    """Smallest number of top entries covering ``share`` of the mass.

    This is the paper's "X ASes host 50% of nodes" statistic.
    """
    if not counts:
        raise AnalysisError("empty counts")
    if not 0 < share <= 1:
        raise AnalysisError(f"share must be in (0, 1], got {share}")
    ordered = sorted(counts.values(), reverse=True)
    total = sum(ordered)
    target = total * share
    acc = 0.0
    for index, value in enumerate(ordered, start=1):
        acc += value
        if acc >= target:
            return index
    return len(ordered)


def ratio_table(
    pairs: Sequence[Tuple[str, float, float]]
) -> List[Tuple[str, float, float, float]]:
    """(name, paper, measured) → rows with measured/paper ratio appended."""
    rows = []
    for name, paper, measured in pairs:
        ratio = measured / paper if paper else float("nan")
        rows.append((name, paper, measured, ratio))
    return rows
