"""Kernel-density estimation for the Fig. 1 synchronization distributions.

A thin wrapper over ``scipy.stats.gaussian_kde`` that also reports the
mean/median the paper quotes (72.02/80.38 for 2019, 61.91/65.47 for 2020)
and renders the density on a fixed grid so two campaigns can be compared
point-for-point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as scipy_stats

from ..errors import AnalysisError


@dataclass(frozen=True)
class DensityEstimate:
    """A KDE evaluated on a grid, plus the headline statistics."""

    grid: np.ndarray
    density: np.ndarray
    mean: float
    median: float
    count: int

    @property
    def mode(self) -> float:
        """Location of the density peak."""
        return float(self.grid[int(np.argmax(self.density))])


def kde(
    values: Sequence[float],
    grid_min: float = 0.0,
    grid_max: float = 100.0,
    grid_points: int = 256,
    bandwidth: float = None,
) -> DensityEstimate:
    """Gaussian KDE of ``values`` on ``[grid_min, grid_max]``.

    ``bandwidth`` overrides the Scott's-rule factor when given.  Degenerate
    inputs (fewer than two distinct values) fall back to a narrow Gaussian
    bump at the sample value rather than raising, because short simulated
    campaigns can legitimately produce constant series.
    """
    if len(values) == 0:
        raise AnalysisError("cannot estimate a density from no samples")
    array = np.asarray(values, dtype=float)
    grid = np.linspace(grid_min, grid_max, grid_points)
    if np.unique(array).size < 2:
        center = float(array[0])
        sigma = max((grid_max - grid_min) / 200.0, 1e-9)
        density = np.exp(-0.5 * ((grid - center) / sigma) ** 2)
        density /= np.trapezoid(density, grid) or 1.0
    else:
        estimator = scipy_stats.gaussian_kde(array, bw_method=bandwidth)
        density = estimator(grid)
    return DensityEstimate(
        grid=grid,
        density=density,
        mean=float(array.mean()),
        median=float(np.median(array)),
        count=int(array.size),
    )


def compare_densities(
    before: Sequence[float], after: Sequence[float], **kwargs
) -> Tuple[DensityEstimate, DensityEstimate]:
    """KDEs of two campaigns on a shared grid (the Fig. 1 overlay)."""
    return kde(before, **kwargs), kde(after, **kwargs)
