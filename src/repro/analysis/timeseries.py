"""Time-series helpers for snapshot campaigns and live sampling."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

import numpy as np

from ..errors import AnalysisError
from ..simnet.simulator import PeriodicTask, Simulator


@dataclass
class Series:
    """A sampled (time, value) series with convenience accessors."""

    times: List[float] = field(default_factory=list)
    values: List[float] = field(default_factory=list)

    def append(self, when: float, value: float) -> None:
        if self.times and when < self.times[-1]:
            raise AnalysisError("series samples must be time-ordered")
        self.times.append(when)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.times)

    def as_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        return np.asarray(self.times), np.asarray(self.values)

    def mean(self) -> float:
        if not self.values:
            raise AnalysisError("empty series")
        return float(np.mean(self.values))

    def fraction_where(self, predicate: Callable[[float], bool]) -> float:
        if not self.values:
            raise AnalysisError("empty series")
        return sum(1 for v in self.values if predicate(v)) / len(self.values)

    def diffs(self) -> List[float]:
        """First differences of the value sequence."""
        return [
            b - a for a, b in zip(self.values, self.values[1:])
        ]


class Sampler:
    """Samples a callable into a :class:`Series` on a fixed period."""

    def __init__(
        self,
        sim: Simulator,
        probe: Callable[[], float],
        period: float,
        start_delay: Optional[float] = 0.0,
    ) -> None:
        self.series = Series()
        self._probe = probe
        self._sim = sim
        self._task: PeriodicTask = sim.call_every(
            period, self._sample, start_delay=start_delay
        )

    def _sample(self) -> None:
        self.series.append(self._sim.now, float(self._probe()))

    def stop(self) -> None:
        self._task.stop()


def set_deltas(
    snapshots: Sequence[set],
) -> Tuple[List[int], List[int]]:
    """Arrivals and departures between consecutive set snapshots.

    Returns two lists of length ``len(snapshots) - 1``: items appearing
    and items vanishing at each step (the Fig. 13 computation).
    """
    if len(snapshots) < 2:
        raise AnalysisError("need at least two snapshots")
    arrivals: List[int] = []
    departures: List[int] = []
    for previous, current in zip(snapshots, snapshots[1:]):
        arrivals.append(len(current - previous))
        departures.append(len(previous - current))
    return arrivals, departures
