"""Statistics helpers: summaries, CDFs, KDE, time series."""

from .kde import DensityEstimate, compare_densities, kde
from .stats import (
    Summary,
    ccdf,
    cdf,
    fraction_below,
    k_to_cover,
    ratio_table,
    summarize,
    top_k_share,
)
from .timeseries import Sampler, Series, set_deltas

__all__ = [
    "DensityEstimate",
    "Sampler",
    "Series",
    "Summary",
    "ccdf",
    "cdf",
    "compare_densities",
    "fraction_below",
    "k_to_cover",
    "kde",
    "ratio_table",
    "set_deltas",
    "summarize",
    "top_k_share",
]
