"""Engine performance instrumentation.

Attach a :class:`PerfRecorder` to a simulation to measure where engine
time goes: events per wall-clock second, heap depth, the cancel ratio,
and per-callback-type wall time.  Instrumentation is strictly opt-in —
when no recorder is attached the schedulers run their uninstrumented
fused loop, so the cost of having this module is zero.

Enable it per simulator::

    sim = Simulator(seed=7, perf=True)
    sim.run_for(3600.0)
    print(sim.perf.format_report())

or globally with ``REPRO_PERF=1`` in the environment.
"""

from .memory import MemorySample, live_object_count, read_memory
from .profiler import hotspot_rows, profile_to
from .recorder import PerfRecorder, perf_enabled_by_env

__all__ = [
    "MemorySample",
    "PerfRecorder",
    "hotspot_rows",
    "live_object_count",
    "perf_enabled_by_env",
    "profile_to",
    "read_memory",
]
