"""Process-memory probes for paper-scale runs.

Scale experiments live or die on resident memory: the hybrid tier exists
so a 10x protocol scenario fits in one machine.  This module gives the
engine a cheap way to measure that claim — current and peak RSS read
from ``/proc/self/status`` (with a ``resource.getrusage`` fallback off
Linux) and a live-object census from the garbage collector.

The probes read *measurement* state, not simulation state: they are
excluded from snapshots (like the perf recorder) and never influence
event order, so instrumented and bare runs stay bit-identical.
"""

from __future__ import annotations

import gc
from dataclasses import dataclass
from typing import Optional

__all__ = ["MemorySample", "live_object_count", "read_memory"]

_PROC_STATUS = "/proc/self/status"


def _trim_heap() -> None:
    """Ask glibc to return freed heap pages to the kernel.

    ``gc.collect()`` alone does not move ``VmRSS``: the allocator keeps
    the freed pages, so an end-of-run reading still sits at the
    high-water mark.  ``malloc_trim`` releases them, making ``VmRSS``
    reflect what the live object graph actually retains.  Best-effort:
    silently a no-op off glibc.
    """
    try:
        import ctypes

        ctypes.CDLL("libc.so.6").malloc_trim(0)
    except (OSError, AttributeError):  # pragma: no cover - non-glibc
        pass


@dataclass(frozen=True, slots=True)
class MemorySample:
    """One reading of the process's memory state."""

    #: Resident set size in bytes right now (None when unreadable).
    rss_bytes: Optional[int]
    #: Peak resident set size in bytes over the process lifetime.
    peak_rss_bytes: Optional[int]
    #: Objects tracked by the garbage collector (container objects; a
    #: good relative gauge of simulation-object growth between runs).
    live_objects: int


def _read_proc_status() -> tuple:
    """(VmRSS, VmHWM) in bytes from /proc, or (None, None)."""
    rss = peak = None
    try:
        with open(_PROC_STATUS, "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    rss = int(line.split()[1]) * 1024
                elif line.startswith("VmHWM:"):
                    peak = int(line.split()[1]) * 1024
                if rss is not None and peak is not None:
                    break
    except OSError:
        return None, None
    return rss, peak


def _rusage_peak() -> Optional[int]:
    """Peak RSS from getrusage (kB on Linux, bytes on macOS)."""
    try:
        import resource
        import sys
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if peak <= 0:
        return None
    return peak if sys.platform == "darwin" else peak * 1024


def live_object_count() -> int:
    """Number of gc-tracked objects currently alive."""
    return len(gc.get_objects())


def read_memory(count_objects: bool = True, collect: bool = False) -> MemorySample:
    """Sample the process's memory state.

    ``count_objects=False`` skips the gc walk (it is O(live objects),
    noticeable when called inside a tight loop).

    ``collect=True`` runs ``gc.collect()`` and a heap trim before
    reading, so ``rss_bytes`` measures *retained* memory — what the
    run's object graph actually holds — rather than whatever garbage
    happened to be pending.  Without this an end-of-run reading lands
    exactly at the high-water mark and ``rss_bytes`` just duplicates
    ``peak_rss_bytes``; with it the two answer different questions
    (steady-state footprint vs transient peak).  The collection only
    affects measurement state, never event order.
    """
    if collect:
        gc.collect()
        _trim_heap()
    rss, peak = _read_proc_status()
    if peak is None:
        peak = _rusage_peak()
    return MemorySample(
        rss_bytes=rss,
        peak_rss_bytes=peak,
        live_objects=live_object_count() if count_objects else 0,
    )
