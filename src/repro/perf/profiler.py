"""cProfile plumbing behind the CLI's ``--profile`` flag.

Profiling the simulator is how every hot-path change in this repo is
justified (see docs/architecture.md, "The hot path"), so the workflow
is first-class: ``repro campaign|sync|chaos --profile [OUT]`` runs the
whole command under ``cProfile`` and dumps the hotspot ranking twice —

* ``OUT.txt`` — the classic ``pstats`` table (top N by total time),
  human-readable;
* ``OUT.json`` — the same rows as structured data, for diffing two
  profiles or tracking a hotspot across commits.

Like the perf recorder and the memory probes, the profiler observes
measurement state only: it changes no event order and draws no RNG, so
a profiled run computes bit-identical figures to a bare run (it is just
slower — cProfile's tracing hook roughly doubles the wall time of
call-dense simulation loops; compare ``tottime`` ratios, not absolute
seconds, against un-profiled runs).
"""

from __future__ import annotations

import cProfile
import io
import json
import pstats
from contextlib import contextmanager
from typing import Dict, Iterator, List

__all__ = ["hotspot_rows", "profile_to"]

#: Hotspots reported per dump (both formats).
DEFAULT_TOP = 30


def hotspot_rows(stats: pstats.Stats, top: int = DEFAULT_TOP) -> List[Dict]:
    """The ``top`` functions by total (self) time, as JSON-ready rows."""
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][2],  # tt: time spent in the frame itself
        reverse=True,
    )
    rows = []
    for (filename, lineno, funcname), (cc, nc, tt, ct, _callers) in entries[:top]:
        rows.append(
            {
                "function": funcname,
                "file": filename,
                "line": lineno,
                "ncalls": nc,
                "primitive_calls": cc,
                "tottime_s": round(tt, 4),
                "cumtime_s": round(ct, 4),
            }
        )
    return rows


@contextmanager
def profile_to(out_base: str, top: int = DEFAULT_TOP) -> Iterator[cProfile.Profile]:
    """Profile the enclosed block, writing ``OUT.txt`` and ``OUT.json``.

    The text table is also echoed (truncated) to stdout so a profiled
    CLI run surfaces its hotspots without another tool invocation.
    """
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        yield profiler
    finally:
        profiler.disable()
        text_buffer = io.StringIO()
        pstats.Stats(profiler, stream=text_buffer).sort_stats(
            "tottime"
        ).print_stats(top)
        text = text_buffer.getvalue()
        with open(out_base + ".txt", "w", encoding="utf-8") as handle:
            handle.write(text)
        stats = pstats.Stats(profiler)
        payload = {
            "sort": "tottime",
            "top": top,
            "total_calls": stats.total_calls,  # type: ignore[attr-defined]
            "total_tt_s": round(stats.total_tt, 4),  # type: ignore[attr-defined]
            "hotspots": hotspot_rows(stats, top),
        }
        with open(out_base + ".json", "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        print()
        print(f"profile: wrote {out_base}.txt and {out_base}.json")
        for line in text.splitlines()[:18]:
            print(line)
