"""The engine perf recorder.

The recorder sits on the slow (instrumented) twin of the scheduler
dispatch loop: :meth:`PerfRecorder.dispatch` wraps every callback
invocation with a ``perf_counter`` pair and aggregates the wall time by
callback *type* (the function's qualified name), so a report can say
"handler passes cost 40% of the run" without per-event storage.

Scheduling and cancellation volumes come from the scheduler's always-on
counters (``scheduled_total``, ``cancelled_total``, ``compactions``);
the recorder only adds what requires per-event work: timing and heap
depth tracking.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, Optional


def perf_enabled_by_env() -> bool:
    """True when ``REPRO_PERF=1`` asks for instrumentation globally."""
    return os.environ.get("REPRO_PERF", "0") == "1"


def _callback_label(callback: Callable[..., Any]) -> str:
    """Stable per-type label: qualified name, falling back to repr."""
    name = getattr(callback, "__qualname__", None)
    if name is not None:
        return name
    # Bound methods and functools.partial objects expose the wrapped
    # function one level down.
    inner = getattr(callback, "func", None)
    if inner is not None:
        return _callback_label(inner)
    return type(callback).__name__


class PerfRecorder:
    """Aggregated engine metrics for one instrumented run."""

    __slots__ = (
        "events",
        "busy_time",
        "max_heap_depth",
        "by_callback",
        "_started_at",
        "wall_time",
    )

    def __init__(self) -> None:
        self.events = 0
        #: Wall seconds spent inside event callbacks.
        self.busy_time = 0.0
        #: Deepest raw heap (live + dead entries) seen at dispatch time.
        self.max_heap_depth = 0
        #: label -> [count, cumulative wall seconds]
        self.by_callback: Dict[str, list] = {}
        self._started_at: Optional[float] = None
        #: Wall seconds between :meth:`start` and :meth:`stop`.
        self.wall_time = 0.0

    # ------------------------------------------------------------------
    # Hot path (called once per dispatched event by the scheduler)
    # ------------------------------------------------------------------
    def dispatch(
        self, callback: Callable[..., Any], args: tuple, heap_depth: int
    ) -> None:
        """Invoke ``callback(*args)``, timing it and noting heap depth."""
        self.events += 1
        if heap_depth > self.max_heap_depth:
            self.max_heap_depth = heap_depth
        t0 = time.perf_counter()
        callback(*args)
        dt = time.perf_counter() - t0
        self.busy_time += dt
        label = _callback_label(callback)
        cell = self.by_callback.get(label)
        if cell is None:
            self.by_callback[label] = [1, dt]
        else:
            cell[0] += 1
            cell[1] += dt

    # ------------------------------------------------------------------
    # Wall-clock bracketing
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Mark the start of the measured region (idempotent resume)."""
        if self._started_at is None:
            self._started_at = time.perf_counter()

    def stop(self) -> None:
        """Close the measured region, accumulating wall time."""
        if self._started_at is not None:
            self.wall_time += time.perf_counter() - self._started_at
            self._started_at = None

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self, scheduler=None) -> Dict[str, Any]:
        """Metrics as a plain dict (JSON-friendly)."""
        wall = self.wall_time
        if self._started_at is not None:
            wall += time.perf_counter() - self._started_at
        out: Dict[str, Any] = {
            "events": self.events,
            "wall_time_s": wall,
            "busy_time_s": self.busy_time,
            "events_per_sec": self.events / wall if wall > 0 else 0.0,
            "max_heap_depth": self.max_heap_depth,
            "callbacks": {
                label: {"count": cell[0], "wall_s": cell[1]}
                for label, cell in sorted(
                    self.by_callback.items(),
                    key=lambda item: item[1][1],
                    reverse=True,
                )
            },
        }
        if scheduler is not None:
            scheduled = scheduler.scheduled_total
            cancelled = scheduler.cancelled_total
            out["scheduled"] = scheduled
            out["cancelled"] = cancelled
            out["cancel_ratio"] = cancelled / scheduled if scheduled else 0.0
            out["compactions"] = scheduler.compactions
            out["pending"] = scheduler.pending
            out["pending_raw"] = scheduler.pending_raw
        return out

    def format_report(self, scheduler=None, top: int = 12) -> str:
        """Human-readable rendering of :meth:`report`."""
        data = self.report(scheduler)
        lines = [
            "engine perf:",
            f"  events           {data['events']:>12,}",
            f"  wall time        {data['wall_time_s']:>12.3f} s",
            f"  events/sec       {data['events_per_sec']:>12,.0f}",
            f"  callback time    {data['busy_time_s']:>12.3f} s",
            f"  max heap depth   {data['max_heap_depth']:>12,}",
        ]
        if scheduler is not None:
            lines += [
                f"  scheduled        {data['scheduled']:>12,}",
                f"  cancelled        {data['cancelled']:>12,}"
                f"  (ratio {data['cancel_ratio']:.2f})",
                f"  compactions      {data['compactions']:>12,}",
                f"  pending live/raw {data['pending']:>12,}"
                f" / {data['pending_raw']:,}",
            ]
        if data["callbacks"]:
            lines.append("  per-callback wall time:")
            for label, cell in list(data["callbacks"].items())[:top]:
                lines.append(
                    f"    {label:<48} {cell['count']:>10,}  {cell['wall_s']:8.3f} s"
                )
        return "\n".join(lines)
